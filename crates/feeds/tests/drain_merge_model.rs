//! Model-based property test for the sorted-run drain merge:
//! `FeedHub::drain_batch` (per-feed lanes + k-way merge) must be
//! byte-identical to the old single global ordered queue — pops in
//! `(emitted_at, ingestion sequence)` order, detach drops exactly the
//! detached feed's pending events, requeued events survive detach —
//! across arbitrary feed counts and arbitrary interleavings of
//! push / partial-drain / requeue / detach operations.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_feeds::{FeedEvent, FeedHandle, FeedHub, FeedKind, FeedSource, RibView};
use artemis_simnet::{SimRng, SimTime};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// Script handle shared between the test body and a [`ScriptedFeed`]
/// living inside the hub: the test appends batches, the feed pops them.
type Script = Arc<Mutex<VecDeque<Vec<FeedEvent>>>>;

/// A feed that emits pre-scripted event batches: the next batch on
/// every fanned-out route change, nothing on polls. This pins emission
/// times exactly (no export-delay sampling), so the model can predict
/// the queue contents to the byte.
struct ScriptedFeed {
    name: String,
    batches: Script,
    emitted: u64,
}

impl FeedSource for ScriptedFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::RisLive
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn on_route_change_into(
        &mut self,
        _change: &artemis_bgpsim::RouteChange,
        _rng: &mut SimRng,
        out: &mut Vec<FeedEvent>,
    ) {
        if let Some(batch) = self.batches.lock().unwrap().pop_front() {
            self.emitted += batch.len() as u64;
            out.extend(batch);
        }
    }
    fn next_poll(&self, _now: SimTime) -> Option<SimTime> {
        None
    }
    fn poll(&mut self, _at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        Vec::new()
    }
    fn events_emitted(&self) -> u64 {
        self.emitted
    }
}

fn scripted_event(feed: usize, step: usize, k: usize, t_micros: u64) -> FeedEvent {
    let as_path = AsPath::from_sequence([3356u32, 65001]);
    FeedEvent {
        emitted_at: SimTime::from_micros(t_micros),
        observed_at: SimTime::from_micros(t_micros.saturating_sub(3)),
        source: FeedKind::RisLive,
        collector: format!("f{feed}-s{step}-e{k}"),
        vantage: Asn(174),
        prefix: Prefix::from_str("10.0.0.0/23").unwrap(),
        as_path: Some(as_path),
        origin_as: Some(Asn(65001)),
        raw: None,
    }
}

fn dummy_change() -> artemis_bgpsim::RouteChange {
    artemis_bgpsim::RouteChange {
        time: SimTime::ZERO,
        asn: Asn(174),
        prefix: Prefix::from_str("10.0.0.0/23").unwrap(),
        old: None,
        new: None,
    }
}

/// The reference: one global ordered queue, exactly the semantics of
/// the pre-lane `BinaryHeap<(emitted_at, seq)>` implementation. Drains
/// pop strictly in `(time, seq)` order; detach drops the feed's
/// pending entries; requeue re-enters with fresh sequence numbers
/// under the reserved attribution.
struct HeapModel {
    entries: Vec<(SimTime, u64, FeedHandle, FeedEvent)>,
    seq: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            entries: Vec::new(),
            seq: 0,
        }
    }
    fn push(&mut self, owner: FeedHandle, ev: FeedEvent) {
        self.entries.push((ev.emitted_at, self.seq, owner, ev));
        self.seq += 1;
    }
    fn drain(&mut self, upto: SimTime) -> Vec<FeedEvent> {
        let mut due: Vec<(SimTime, u64, FeedEvent)> = Vec::new();
        self.entries.retain_mut(|(t, s, _, ev)| {
            if *t <= upto {
                due.push((*t, *s, std::mem::replace(ev, scripted_event(0, 0, 0, 0))));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(t, s, _)| (*t, *s));
        due.into_iter().map(|(_, _, ev)| ev).collect()
    }
    fn detach(&mut self, owner: FeedHandle) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, _, o, _)| *o != owner);
        before - self.entries.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of pushes (possibly time-disordered
    /// across feeds), partial drains, tail requeues and feed detaches:
    /// the lane merge and the global-queue model agree byte-for-byte
    /// on every drained batch, every detach drop count, and the final
    /// flush.
    #[test]
    fn lane_merge_is_byte_identical_to_global_queue_model(
        n_feeds in 1usize..5,
        ops in prop::collection::vec(
            (0u8..8, prop::collection::vec(0u64..2_000, 0..4), any::<u64>(), any::<usize>()),
            1..40),
    ) {
        let mut hub = FeedHub::new(SimRng::new(1));
        let mut model = HeapModel::new();
        // Scripted batches are installed lazily: feeds carry a shared
        // script queue the test appends to right before each push op.
        let mut handles: Vec<(FeedHandle, Script)> = (0..n_feeds)
            .map(|i| {
                let script: Script = Arc::new(Mutex::new(VecDeque::new()));
                let h = hub.add(Box::new(ScriptedFeed {
                    name: format!("scripted-{i}"),
                    batches: Arc::clone(&script),
                    emitted: 0,
                }));
                (h, script)
            })
            .collect();
        let mut last_drain: Vec<FeedEvent> = Vec::new();
        let mut buf = Vec::new();

        for (step, (tag, times, upto_raw, pick)) in ops.iter().enumerate() {
            match tag {
                // Push: every alive feed emits one scripted batch for
                // this change, times derived from the generated list
                // with a per-feed skew so inter-feed disorder is the
                // norm. The hub fans the change feed-by-feed in
                // insertion order; the model mirrors that exact order.
                0..=3 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let mut scripted: Vec<(FeedHandle, Vec<FeedEvent>)> = Vec::new();
                    for (fi, (h, script)) in handles.iter().enumerate() {
                        let batch: Vec<FeedEvent> = times
                            .iter()
                            .enumerate()
                            .map(|(k, t)| scripted_event(
                                fi, step, k, t * 7 + (fi as u64) * 131))
                            .collect();
                        script.lock().unwrap().push_back(batch.clone());
                        scripted.push((*h, batch));
                    }
                    hub.ingest_route_change(&dummy_change());
                    for (h, batch) in scripted {
                        for ev in batch {
                            model.push(h, ev);
                        }
                    }
                }
                // Partial drain at a bounded cut.
                4 | 5 => {
                    let upto = SimTime::from_micros(upto_raw % 16_000);
                    hub.drain_batch(upto, &mut buf);
                    let expect = model.drain(upto);
                    prop_assert_eq!(&buf, &expect, "drain at step {}", step);
                    last_drain = buf.clone();
                }
                // Requeue a tail of the last drained batch.
                6 => {
                    if last_drain.is_empty() {
                        continue;
                    }
                    let k = pick % last_drain.len() + 1;
                    let tail: Vec<FeedEvent> =
                        last_drain.split_off(last_drain.len() - k);
                    hub.requeue(tail.iter().cloned());
                    for ev in tail {
                        model.push(FeedHandle::REQUEUED, ev);
                    }
                }
                // Detach a feed: drop counts must agree.
                _ => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = pick % handles.len();
                    let (h, _) = handles.remove(idx);
                    let (_, dropped) = hub.remove(h).expect("attached");
                    prop_assert_eq!(
                        dropped, model.detach(h),
                        "detach drop count at step {}", step
                    );
                }
            }
            prop_assert_eq!(hub.pending_events(), model.entries.len());
        }

        // Final flush: everything left agrees, down to the last byte.
        hub.drain_batch(SimTime::from_micros(u64::MAX), &mut buf);
        let expect = model.drain(SimTime::from_micros(u64::MAX));
        prop_assert_eq!(buf, expect, "final flush");
        prop_assert_eq!(hub.pending_events(), 0);
    }
}
