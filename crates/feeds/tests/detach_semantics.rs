//! Runtime feed-detach semantics: `FeedHub::remove(handle)` must drop
//! exactly the detached feed's queued, undelivered events — nothing
//! more, nothing less — while preserving the relative order of every
//! surviving event. Property-tested across random ingest schedules,
//! partial drains and detach points (ISSUE 4 satellite: "events for
//! detached feeds are dropped deterministically — pick one, document
//! it, proptest it").

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_feeds::vantage::group_into_collectors;
use artemis_feeds::{FeedEvent, FeedHub, FeedKind, StreamFeed};
use artemis_simnet::{LatencyModel, SimRng, SimTime};
use artemis_topology::RelKind;
use proptest::prelude::*;
use std::str::FromStr;

fn pfx(s: &str) -> Prefix {
    Prefix::from_str(s).unwrap()
}

fn change(asn: u32, t_micros: u64, origin: u32) -> RouteChange {
    let as_path = AsPath::from_sequence([3356, origin]);
    RouteChange {
        time: SimTime::from_micros(t_micros),
        asn: Asn(asn),
        prefix: pfx("10.0.0.0/23"),
        old: None,
        new: Some(BestRoute {
            origin_as: Asn(origin),
            as_path,
            neighbor: Some(Asn(3356)),
            learned_from: Some(RelKind::Provider),
            local_pref: 100,
        }),
    }
}

/// Two push feeds with skewed export pipelines so queued events from
/// different feeds interleave non-trivially in emission order.
fn two_feed_hub(
    seed: u64,
) -> (
    FeedHub,
    artemis_feeds::FeedHandle,
    artemis_feeds::FeedHandle,
) {
    let vps = vec![Asn(174), Asn(3356), Asn(2914)];
    let mut hub = FeedHub::new(SimRng::new(seed));
    let ris = hub.add(Box::new(
        StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2))
            .with_export_delay(LatencyModel::uniform_secs(2, 40)),
    ));
    let bmon = hub.add(Box::new(
        StreamFeed::bgpmon(group_into_collectors("bmon", &vps, 1))
            .with_export_delay(LatencyModel::uniform_secs(1, 90)),
    ));
    (hub, ris, bmon)
}

fn changes_from(spec: &[(u8, u64)]) -> Vec<RouteChange> {
    spec.iter()
        .map(|(vp, dt)| {
            let asn = [174u32, 3356, 2914][(*vp % 3) as usize];
            change(asn, 1_000_000 + *dt * 250_000, 666)
        })
        .collect()
}

proptest! {
    /// Detaching a feed drops exactly its queued events: the surviving
    /// drain equals the no-detach drain with the detached feed's
    /// events filtered out (same events, same relative order), and the
    /// reported drop count matches.
    #[test]
    fn detach_drops_exactly_the_detached_feeds_queue(
        seed in 0u64..500,
        spec in prop::collection::vec((0u8..3, 0u64..200), 1..40),
    ) {
        let changes = changes_from(&spec);

        // Reference: same seed, same ingests, never detached.
        let (mut reference, _, _) = two_feed_hub(seed);
        reference.ingest_route_changes(&changes);
        let mut all = Vec::new();
        reference.drain_batch(SimTime::from_secs(1_000_000), &mut all);
        let expected: Vec<FeedEvent> = all
            .iter()
            .filter(|e| e.source != FeedKind::BgpMon)
            .cloned()
            .collect();
        let expected_dropped = all.len() - expected.len();

        // Under test: identical ingests, then detach before draining.
        let (mut hub, _ris, bmon) = two_feed_hub(seed);
        hub.ingest_route_changes(&changes);
        let (_, dropped) = hub.remove(bmon).expect("attached");
        prop_assert_eq!(dropped, expected_dropped);
        let mut survived = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000_000), &mut survived);
        prop_assert_eq!(survived, expected);
    }

    /// Same property with a *partial* drain before the detach: events
    /// already delivered stay delivered regardless of their source;
    /// only the undelivered remainder of the detached feed is dropped.
    #[test]
    fn detach_after_partial_drain_only_touches_the_remainder(
        seed in 0u64..500,
        spec in prop::collection::vec((0u8..3, 0u64..200), 1..40),
        cut_secs in 1u64..120,
    ) {
        let changes = changes_from(&spec);
        let cut = SimTime::from_secs(cut_secs);

        let (mut reference, _, _) = two_feed_hub(seed);
        reference.ingest_route_changes(&changes);
        let mut early_ref = Vec::new();
        reference.drain_batch(cut, &mut early_ref);
        let mut late_ref = Vec::new();
        reference.drain_batch(SimTime::from_secs(1_000_000), &mut late_ref);
        let late_expected: Vec<FeedEvent> = late_ref
            .iter()
            .filter(|e| e.source != FeedKind::BgpMon)
            .cloned()
            .collect();

        let (mut hub, _ris, bmon) = two_feed_hub(seed);
        hub.ingest_route_changes(&changes);
        let mut early = Vec::new();
        hub.drain_batch(cut, &mut early);
        prop_assert_eq!(&early, &early_ref, "pre-detach drains agree");
        let (_, dropped) = hub.remove(bmon).expect("attached");
        prop_assert_eq!(dropped, late_ref.len() - late_expected.len());
        let mut late = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000_000), &mut late);
        prop_assert_eq!(late, late_expected);
        prop_assert_eq!(hub.pending_events(), 0);
    }
}

#[test]
fn detach_then_reingest_keeps_only_live_feeds() {
    let (mut hub, _ris, bmon) = two_feed_hub(7);
    hub.ingest_route_changes(&changes_from(&[(0, 0), (1, 5)]));
    hub.remove(bmon).expect("attached");
    // New ingests after the detach only reach the surviving feed.
    hub.ingest_route_changes(&changes_from(&[(2, 10)]));
    let mut out = Vec::new();
    hub.drain_batch(SimTime::from_secs(1_000_000), &mut out);
    assert!(!out.is_empty());
    assert!(out.iter().all(|e| e.source == FeedKind::RisLive));
}
