//! The MRT round-trip property (ISSUE 3 acceptance criterion):
//! an experiment's `ArchiveUpdatesFeed` MRT bytes, replayed through
//! `MrtReplayFeed` into a **fresh** `Pipeline`, yield the same alert
//! set and detection instants as the original run.
//!
//! simulate → write MRT → replay → detect the same hijack at the same
//! batch-delayed instant.

use artemis_bgp::{Asn, Prefix};
use artemis_bgpsim::{Engine, SimConfig};
use artemis_controller::Controller;
use artemis_core::{ArtemisConfig, OwnedPrefix, Pipeline};
use artemis_feeds::{ArchiveUpdatesFeed, FeedHub, FeedKind, MrtReplayFeed};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use artemis_topology::{generate, AsGraph, TopologyConfig};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::str::FromStr;

/// Everything about an alert that must survive the round trip
/// (`detected_by` legitimately differs: archive vs replay kind).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct AlertKey {
    hijack_type: String,
    owned: Prefix,
    observed: Prefix,
    origin: Option<Asn>,
    detected_at: SimTime,
    first_observed_at: SimTime,
    vantage_points: Vec<Asn>,
}

fn alert_keys(pipeline: &Pipeline) -> Vec<AlertKey> {
    let mut keys: Vec<AlertKey> = pipeline
        .detector()
        .alerts()
        .all()
        .iter()
        .map(|a| AlertKey {
            hijack_type: a.hijack_type.to_string(),
            owned: a.owned_prefix,
            observed: a.observed_prefix,
            origin: a.offending_origin,
            detected_at: a.detected_at,
            first_observed_at: a.first_observed_at,
            vantage_points: a.vantage_points.iter().copied().collect(),
        })
        .collect();
    keys.sort();
    keys
}

struct OriginalRun {
    keys: Vec<AlertKey>,
    mrt_bytes: Vec<u8>,
    config: ArtemisConfig,
    vantage_points: BTreeSet<Asn>,
    victim: Asn,
    events_delivered: u64,
}

/// Run a hijack scenario whose only monitoring source is the batched
/// update archive, and keep the MRT bytes it wrote.
fn original_run(seed: u64) -> OriginalRun {
    let mut rng = SimRng::new(seed);
    let topo = generate(&TopologyConfig::tiny(), &mut rng);
    let victim = topo.stubs[0];
    let attacker = *topo.stubs.last().expect("stubs exist");
    assert_ne!(victim, attacker);
    let peers: Vec<Asn> = topo.tier1.clone();
    let vantage_points: BTreeSet<Asn> = peers.iter().copied().collect();
    let prefix = Prefix::from_str("10.0.0.0/23").expect("valid");

    let config = ArtemisConfig::new(victim, vec![OwnedPrefix::new(prefix, victim)]);
    let mut hub = FeedHub::new(SimRng::new(seed ^ 0xfeed));
    hub.add(Box::new(ArchiveUpdatesFeed::route_views(peers)));
    let mut pipeline = Pipeline::new(hub, config.clone(), vantage_points.clone());
    let mut controller = Controller::new(victim, LatencyModel::const_secs(15), SimRng::new(3));

    let mut engine = Engine::new(topo.graph.clone(), SimConfig::default(), seed);
    pipeline.expect_announcement(prefix);
    engine.announce(victim, prefix);
    let changes = engine.run_to_quiescence(1_000_000);
    pipeline.ingest_route_changes(&changes);
    let converged = engine.now();
    engine.announce_at(attacker, prefix, converged + SimDuration::from_secs(30));

    let horizon = SimTime::ZERO + SimDuration::from_mins(120);
    pipeline.run(&mut engine, &mut controller, converged, horizon, |_, _| {
        ControlFlow::Continue(())
    });

    let keys = alert_keys(&pipeline);
    let mrt_bytes = pipeline
        .hub()
        .handle_at(0)
        .and_then(|h| pipeline.hub().feed_by_handle(h))
        .expect("archive feed registered")
        .archive_bytes()
        .expect("archive feeds expose their MRT bytes")
        .to_vec();
    let events_delivered = pipeline.events_delivered();
    OriginalRun {
        keys,
        mrt_bytes,
        config,
        vantage_points,
        victim,
        events_delivered,
    }
}

/// Replay `bytes` into a fresh pipeline with no engine and no live
/// feeds: the archive is the only source of truth.
fn replay_run(original: &OriginalRun) -> (Pipeline, Vec<AlertKey>) {
    let mut hub = FeedHub::new(SimRng::new(99));
    hub.add(Box::new(MrtReplayFeed::route_views(&original.mrt_bytes)));
    let mut pipeline = Pipeline::new(
        hub,
        original.config.clone(),
        original.vantage_points.clone(),
    );
    pipeline.expect_announcement(original.config.owned[0].prefix);
    let mut controller = Controller::new(
        original.victim,
        LatencyModel::const_secs(15),
        SimRng::new(3),
    );
    // A near-empty engine: the victim AS exists (so replayed
    // mitigation intents have somewhere to land) but is isolated —
    // nothing propagates, and the pipeline is driven purely by the
    // replayed archive.
    let mut graph = AsGraph::new();
    graph.add_as(original.victim);
    let mut engine = Engine::new(graph, SimConfig::default(), 1);
    let horizon = SimTime::ZERO + SimDuration::from_mins(120);
    pipeline.run(
        &mut engine,
        &mut controller,
        SimTime::ZERO,
        horizon,
        |_, _| ControlFlow::Continue(()),
    );
    let keys = alert_keys(&pipeline);
    (pipeline, keys)
}

#[test]
fn replayed_archive_reproduces_the_detection_timeline() {
    let original = original_run(5);
    assert!(
        !original.keys.is_empty(),
        "the scenario must produce at least one alert"
    );
    let (replayed, replay_keys) = replay_run(&original);

    assert_eq!(
        original.keys, replay_keys,
        "replaying the archive must reproduce the exact alert set, \
         detection instants and witness sets"
    );
    // Replay delivered the same number of events the archive feed fed
    // the original detector (the archive is complete).
    assert_eq!(replayed.events_delivered(), original.events_delivered);
    // And the winning feed on the replay side is the replay feed.
    assert!(replayed
        .detector()
        .alerts()
        .all()
        .iter()
        .all(|a| a.detected_by == FeedKind::MrtReplay));
}

#[test]
fn replay_detection_instants_sit_on_batch_boundaries() {
    // The paper's §1 claim made measurable: with a 15-min batch window
    // + 60 s publish delay, every replayed detection instant is a
    // batch boundary plus the publish delay — minutes of archive
    // latency, not the seconds of the streaming feeds.
    let original = original_run(9);
    let (_, keys) = replay_run(&original);
    assert!(!keys.is_empty());
    for key in &keys {
        let micros = key.detected_at.as_micros();
        let publish = SimDuration::from_secs(60).as_micros();
        let period = SimDuration::from_mins(15).as_micros();
        assert_eq!(
            (micros - publish) % period,
            0,
            "detection at {} is not batch-aligned",
            key.detected_at
        );
        // And detection necessarily lags the observation.
        assert!(key.detected_at > key.first_observed_at);
    }
}

#[test]
fn round_trip_holds_across_seeds() {
    for seed in [11, 23] {
        let original = original_run(seed);
        assert!(!original.keys.is_empty(), "seed {seed} must detect");
        let (_, replay_keys) = replay_run(&original);
        assert_eq!(original.keys, replay_keys, "seed {seed} diverged");
    }
}
