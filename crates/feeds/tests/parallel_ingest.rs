//! Parallel-ingest identity: `FeedHub::ingest_route_changes` with
//! `ingest_workers ≥ 2` must produce a drained event stream
//! **byte-identical** to the serial hub — same events, same order, same
//! stochastic delays — because every feed synthesizes from its own
//! forked RNG stream and the merge reassigns the exact serial
//! ingestion sequence. This mirrors the pipeline-level contract in
//! `crates/core/tests/parallel_identity.rs` one layer down, at the hub.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_feeds::vantage::group_into_collectors;
use artemis_feeds::{FeedEvent, FeedHub, StreamFeed};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use artemis_topology::RelKind;
use proptest::prelude::*;
use std::str::FromStr;

fn pfx(s: &str) -> Prefix {
    Prefix::from_str(s).unwrap()
}

/// A hub with four push feeds across the delay-model spectrum —
/// deterministic constants, bounded uniform and heavy-tailed
/// log-normal — so the identity property covers feeds that never
/// draw from their RNG and feeds that draw per event.
fn mixed_hub(seed: u64, workers: usize) -> FeedHub {
    let vps = vec![Asn(174), Asn(3356), Asn(2914), Asn(1299)];
    let mut hub = FeedHub::new(SimRng::new(seed));
    hub.add(Box::new(
        StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2))
            .with_export_delay(LatencyModel::uniform_secs(2, 11)),
    ));
    hub.add(Box::new(
        StreamFeed::bgpmon(group_into_collectors("bmon", &vps, 2)).with_export_delay(
            LatencyModel::LogNormal {
                median: SimDuration::from_secs(20),
                sigma: 0.8,
            },
        ),
    ));
    hub.add(Box::new(
        StreamFeed::ris_live(group_into_collectors("rrc2", &vps, 1))
            .with_export_delay(LatencyModel::const_secs(5)),
    ));
    hub.add(Box::new(
        StreamFeed::bgpmon(group_into_collectors("bmon2", &vps, 1))
            .with_export_delay(LatencyModel::uniform_millis(500, 90_000)),
    ));
    hub.set_ingest_workers(workers);
    hub
}

fn change(vp: u32, t_micros: u64, prefix: Prefix, origin: u32, withdraw: bool) -> RouteChange {
    RouteChange {
        time: SimTime::from_micros(t_micros),
        asn: Asn(vp),
        prefix,
        old: None,
        new: (!withdraw).then(|| BestRoute {
            origin_as: Asn(origin),
            as_path: AsPath::from_sequence([vp, 3356, origin]),
            neighbor: Some(Asn(3356)),
            learned_from: Some(RelKind::Provider),
            local_pref: 100,
        }),
    }
}

fn drain_all(hub: &mut FeedHub) -> Vec<FeedEvent> {
    let mut out = Vec::new();
    hub.drain_batch(SimTime::from_micros(u64::MAX), &mut out);
    out
}

/// Run the same change batch through a serial and a parallel hub and
/// demand byte-identical drained streams.
fn assert_ingest_identical(seed: u64, workers: usize, changes: &[RouteChange]) {
    let mut serial = mixed_hub(seed, 1);
    let mut parallel = mixed_hub(seed, workers);
    serial.ingest_route_changes(changes);
    parallel.ingest_route_changes(changes);
    let serial_events = drain_all(&mut serial);
    let parallel_events = drain_all(&mut parallel);
    assert_eq!(
        serial_events.len(),
        parallel_events.len(),
        "seed {seed}, workers {workers}: event counts"
    );
    assert_eq!(
        serial_events, parallel_events,
        "seed {seed}, workers {workers}: drained streams must be identical"
    );
    // Byte-level too: the serialized wire form is the cross-process
    // contract.
    let serial_json = serde_json::to_string(&serial_events).expect("serializes");
    let parallel_json = serde_json::to_string(&parallel_events).expect("serializes");
    assert_eq!(serial_json, parallel_json);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary change batches (mixed vantages, prefixes, announce /
    /// withdraw, clustered timestamps), every worker count: identical.
    #[test]
    fn parallel_ingest_matches_serial(
        seed in 1u64..10_000,
        workers_idx in 0usize..3,
        raw in prop::collection::vec(
            (0usize..4, 0u64..600_000_000, 0usize..3, 0u32..5, any::<bool>()),
            // Above and below the parallel gate (32): both arms and
            // the gate boundary itself get exercised.
            32..96,
        ),
    ) {
        let vps = [174u32, 3356, 2914, 1299];
        let prefixes = [
            pfx("10.0.0.0/23"),
            pfx("10.0.2.0/23"),
            pfx("172.16.0.0/20"),
        ];
        let mut changes: Vec<RouteChange> = raw
            .into_iter()
            .map(|(vp, t, p, origin, wd)| {
                change(vps[vp], t, prefixes[p], 64_500 + origin, wd)
            })
            .collect();
        // The engine hands changes over time-sorted; keep that shape.
        changes.sort_by_key(|c| c.time);
        assert_ingest_identical(seed, [2usize, 4, 8][workers_idx], &changes);
    }

    /// Small batches stay under the parallel gate but must still be
    /// identical (they take the serial arm verbatim).
    #[test]
    fn tiny_batches_are_identical_too(
        seed in 1u64..10_000,
        n in 1usize..8,
    ) {
        let changes: Vec<RouteChange> = (0..n)
            .map(|i| change(174, i as u64 * 1_000, pfx("10.0.0.0/23"), 64_500, false))
            .collect();
        assert_ingest_identical(seed, 4, &changes);
    }
}
