//! Property tests for the monitoring feeds: event fidelity, batching
//! arithmetic, JSON schema stability.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_feeds::vantage::group_into_collectors;
use artemis_feeds::{ArchiveUpdatesFeed, FeedSource, StreamFeed};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use artemis_topology::RelKind;
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 8u8..=28)
        .prop_map(|(a, l)| Prefix::v4(std::net::Ipv4Addr::from(a), l).expect("valid"))
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(1u32..100_000, 1..6).prop_map(AsPath::from_sequence)
}

fn arb_change() -> impl Strategy<Value = RouteChange> {
    (
        arb_prefix(),
        arb_path(),
        1u32..100_000,
        0u64..10_000,
        any::<bool>(),
    )
        .prop_map(|(prefix, path, vantage, t, withdraw)| RouteChange {
            time: SimTime::from_secs(t),
            asn: Asn(vantage),
            prefix,
            old: None,
            new: (!withdraw).then(|| BestRoute {
                origin_as: path.origin().expect("non-empty"),
                as_path: path,
                neighbor: Some(Asn(3356)),
                learned_from: Some(RelKind::Provider),
                local_pref: 100,
            }),
        })
}

proptest! {
    /// Stream events are faithful: correct vantage/prefix, the path is
    /// the Loc-RIB path prepended with the vantage AS, the origin is
    /// preserved, and emission never precedes observation.
    #[test]
    fn stream_events_are_faithful(change in arb_change()) {
        let vantage = change.asn;
        let mut feed = StreamFeed::ris_live(group_into_collectors(
            "rrc",
            &[vantage],
            1,
        ));
        let mut rng = SimRng::new(1);
        let events = feed.on_route_change(&change, &mut rng);
        prop_assert_eq!(events.len(), 1);
        let ev = &events[0];
        prop_assert_eq!(ev.vantage, vantage);
        prop_assert_eq!(ev.prefix, change.prefix);
        prop_assert!(ev.emitted_at >= ev.observed_at);
        prop_assert_eq!(ev.observed_at, change.time);
        match (&change.new, &ev.as_path) {
            (Some(best), Some(path)) => {
                prop_assert_eq!(path.neighbor(), Some(vantage), "vantage prepended");
                prop_assert_eq!(path.origin(), Some(best.origin_as));
                prop_assert_eq!(ev.origin_as, Some(best.origin_as));
            }
            (None, None) => prop_assert!(ev.is_withdrawal()),
            other => prop_assert!(false, "mismatch {:?}", other),
        }
    }

    /// The RIS JSON payload round-trips the typed fields exactly.
    #[test]
    fn ris_json_schema_roundtrip(change in arb_change()) {
        let vantage = change.asn;
        let mut feed = StreamFeed::ris_live(group_into_collectors("rrc", &[vantage], 1));
        let mut rng = SimRng::new(2);
        let events = feed.on_route_change(&change, &mut rng);
        let ev = &events[0];
        let raw: serde_json::Value =
            serde_json::from_str(ev.raw.as_ref().expect("ris has raw")).expect("valid JSON");
        prop_assert_eq!(raw["type"].as_str(), Some("ris_message"));
        prop_assert_eq!(
            raw["data"]["peer_asn"].as_str().expect("peer_asn"),
            vantage.value().to_string()
        );
        if ev.is_withdrawal() {
            prop_assert_eq!(
                raw["data"]["withdrawals"][0].as_str().expect("wd"),
                ev.prefix.to_string()
            );
        } else {
            prop_assert_eq!(
                raw["data"]["announcements"][0]["prefixes"][0].as_str().expect("ann"),
                ev.prefix.to_string()
            );
            let json_path: Vec<u64> = raw["data"]["path"]
                .as_array().expect("path")
                .iter()
                .map(|v| v.as_u64().expect("asn"))
                .collect();
            let typed: Vec<u64> = ev.as_path.as_ref().expect("path")
                .iter()
                .map(|a| a.value() as u64)
                .collect();
            prop_assert_eq!(json_path, typed);
        }
    }

    /// Archive batching: visibility = end of the observation's batch
    /// window plus the publish delay — never earlier, never more than
    /// one full window + delay later.
    #[test]
    fn archive_batching_bounds(change in arb_change()) {
        let vantage = change.asn;
        let mut feed = ArchiveUpdatesFeed::route_views(vec![vantage]);
        let mut rng = SimRng::new(3);
        let events = feed.on_route_change(&change, &mut rng);
        prop_assert_eq!(events.len(), 1);
        let ev = &events[0];
        let delay = ev.emitted_at.since(change.time);
        prop_assert!(delay >= feed.publish_delay);
        prop_assert!(delay <= feed.batch_period + feed.publish_delay);
        // Batch boundary alignment.
        let visible_minus_publish = ev.emitted_at.as_micros() - feed.publish_delay.as_micros();
        prop_assert_eq!(visible_minus_publish % feed.batch_period.as_micros(), 0);
    }

    /// Export delay model is respected: constant-delay feeds emit at
    /// exactly observation + delay.
    #[test]
    fn export_delay_model_applies(change in arb_change(), delay_s in 1u64..120) {
        let vantage = change.asn;
        let mut feed = StreamFeed::ris_live(group_into_collectors("rrc", &[vantage], 1))
            .with_export_delay(LatencyModel::const_secs(delay_s));
        let mut rng = SimRng::new(4);
        let events = feed.on_route_change(&change, &mut rng);
        prop_assert_eq!(
            events[0].emitted_at,
            change.time + SimDuration::from_secs(delay_s)
        );
    }

    /// Feeds never fire for non-vantage ASes, whatever the change.
    #[test]
    fn non_vantage_changes_ignored(change in arb_change()) {
        prop_assume!(change.asn != Asn(424242));
        let mut feed = StreamFeed::bgpmon(group_into_collectors("bmon", &[Asn(424242)], 1));
        let mut rng = SimRng::new(5);
        prop_assert!(feed.on_route_change(&change, &mut rng).is_empty());
        prop_assert_eq!(feed.events_emitted(), 0);
    }
}
