//! Cross-feed event-ordering integration tests: `FeedHub::drain_batch`
//! must interleave push feeds (RIS-live / BGPmon with skewed export
//! pipelines) and pull feeds (Periscope looking glasses) into one
//! stream globally sorted by `emitted_at`.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_feeds::vantage::group_into_collectors;
use artemis_feeds::{FeedHub, FeedKind, LookingGlass, PeriscopeFeed, RibView, StreamFeed};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use artemis_topology::RelKind;
use proptest::prelude::*;
use std::str::FromStr;

fn pfx(s: &str) -> Prefix {
    Prefix::from_str(s).unwrap()
}

fn change(asn: u32, t_micros: u64, origin: u32) -> RouteChange {
    let as_path = AsPath::from_sequence([3356, origin]);
    RouteChange {
        time: SimTime::from_micros(t_micros),
        asn: Asn(asn),
        prefix: pfx("10.0.0.0/23"),
        old: None,
        new: Some(BestRoute {
            origin_as: Asn(origin),
            as_path,
            neighbor: Some(Asn(3356)),
            learned_from: Some(RelKind::Provider),
            local_pref: 100,
        }),
    }
}

/// Static routing view for the pull feeds: every queried vantage
/// currently selects the hijacker's route.
struct StaticView;

impl RibView for StaticView {
    fn best_route(&self, _asn: Asn, prefix: Prefix) -> Option<BestRoute> {
        (prefix == pfx("10.0.0.0/23")).then(|| BestRoute {
            as_path: AsPath::from_sequence([174u32, 666]),
            origin_as: Asn(666),
            neighbor: Some(Asn(174)),
            learned_from: Some(RelKind::Provider),
            local_pref: 100,
        })
    }
    fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
        vec![(
            pfx("10.0.0.0/23"),
            self.best_route(asn, pfx("10.0.0.0/23")).unwrap(),
        )]
    }
}

/// A hub with two skewed push streams and a rate-limited pull feed.
fn skewed_hub(seed: u64) -> FeedHub {
    let vps = vec![Asn(174), Asn(3356), Asn(2914)];
    let mut hub = FeedHub::new(SimRng::new(seed));
    hub.add(Box::new(
        StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2)).with_export_delay(
            LatencyModel::LogNormal {
                median: SimDuration::from_secs(8),
                sigma: 0.6,
            },
        ),
    ));
    hub.add(Box::new(
        StreamFeed::bgpmon(group_into_collectors("bmon", &vps, 1)).with_export_delay(
            LatencyModel::LogNormal {
                median: SimDuration::from_secs(40),
                sigma: 0.9,
            },
        ),
    ));
    let mut lg_rng = SimRng::new(seed ^ 0xF00D);
    let lgs = vec![
        LookingGlass {
            name: "lg-00".into(),
            vantage: Asn(174),
            min_interval: SimDuration::from_secs(30),
            response_latency: LatencyModel::uniform_millis(1_000, 4_000),
        },
        LookingGlass {
            name: "lg-01".into(),
            vantage: Asn(2914),
            min_interval: SimDuration::from_secs(45),
            response_latency: LatencyModel::uniform_millis(1_000, 4_000),
        },
    ];
    hub.add(Box::new(PeriscopeFeed::new(
        lgs,
        vec![pfx("10.0.0.0/23")],
        &mut lg_rng,
    )));
    hub
}

/// Drive pushes and polls interleaved over `horizon`, then drain.
fn run_interleaved(hub: &mut FeedHub, changes: &[RouteChange], horizon: SimTime) -> Vec<SimTime> {
    let mut changes: Vec<&RouteChange> = changes.iter().collect();
    changes.sort_by_key(|c| c.time);
    let mut now = SimTime::ZERO;
    let mut pending = changes.into_iter().peekable();
    while now <= horizon {
        let t_push = pending.peek().map(|c| c.time);
        let t_poll = hub.next_poll(now);
        let next = match (t_push, t_poll) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        if next > horizon {
            break;
        }
        now = next;
        if t_push == Some(next) {
            hub.ingest_route_change(pending.next().unwrap());
        } else {
            hub.poll_and_queue(next, &StaticView);
        }
    }
    let mut buf = Vec::new();
    hub.drain_batch(SimTime::from_micros(u64::MAX), &mut buf);
    buf.iter().map(|e| e.emitted_at).collect()
}

#[test]
fn drain_batch_is_globally_sorted_across_push_and_pull_feeds() {
    let mut hub = skewed_hub(7);
    let changes: Vec<RouteChange> = (0..40)
        .map(|i| {
            change(
                [174u32, 3356, 2914][i % 3],
                (i as u64) * 7_000_000 + 1,
                if i % 4 == 0 { 666 } else { 65001 },
            )
        })
        .collect();
    let times = run_interleaved(&mut hub, &changes, SimTime::from_secs(600));
    assert!(times.len() > 40, "push and pull feeds both contribute");
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "drain_batch output must be sorted by emitted_at"
    );
}

#[test]
fn all_three_feed_kinds_appear_in_one_drained_batch() {
    let mut hub = skewed_hub(11);
    let changes: Vec<RouteChange> = (0..12)
        .map(|i| change(174, i * 40_000_000 + 5, 666))
        .collect();
    let mut now = SimTime::ZERO;
    for c in &changes {
        hub.ingest_route_change(c);
        while let Some(t) = hub.next_poll(now) {
            if t > c.time {
                break;
            }
            hub.poll_and_queue(t, &StaticView);
            now = t;
        }
    }
    let mut buf = Vec::new();
    hub.drain_batch(SimTime::from_micros(u64::MAX), &mut buf);
    let kinds: std::collections::BTreeSet<FeedKind> = buf.iter().map(|e| e.source).collect();
    assert!(kinds.contains(&FeedKind::RisLive));
    assert!(kinds.contains(&FeedKind::BgpMon));
    assert!(kinds.contains(&FeedKind::Periscope));
    assert!(
        buf.windows(2).all(|w| w[0].emitted_at <= w[1].emitted_at),
        "mixed-kind batch stays sorted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random observation times, random skew, repeated partial drains:
    /// every drained batch is internally sorted, batches never overlap
    /// backwards in time, and nothing due is left behind.
    #[test]
    fn partial_drains_preserve_global_order(
        seed in 1u64..1_000,
        obs in prop::collection::vec((0u64..500, 0usize..3), 1..30),
        cut_secs in 1u64..120,
    ) {
        let mut hub = skewed_hub(seed);
        let vps = [174u32, 3356, 2914];
        let mut changes: Vec<RouteChange> = obs
            .iter()
            .map(|(t, vp)| change(vps[*vp], t * 1_000_000, 666))
            .collect();
        changes.sort_by_key(|c| c.time);
        hub.ingest_route_changes(&changes);

        let mut buf = Vec::new();
        let mut last_batch_end = SimTime::ZERO;
        let mut drained_total = 0usize;
        let total = hub.pending_events();
        let mut upto = SimTime::from_secs(cut_secs);
        for _ in 0..20 {
            hub.drain_batch(upto, &mut buf);
            prop_assert!(buf.windows(2).all(|w| w[0].emitted_at <= w[1].emitted_at));
            if let Some(first) = buf.first() {
                prop_assert!(first.emitted_at >= last_batch_end,
                    "batches must not rewind time");
            }
            if let Some(last) = buf.last() {
                last_batch_end = last.emitted_at;
            }
            drained_total += buf.len();
            upto += SimDuration::from_secs(cut_secs);
        }
        hub.drain_batch(SimTime::from_micros(u64::MAX), &mut buf);
        drained_total += buf.len();
        prop_assert_eq!(drained_total, total, "every queued event drains exactly once");
        prop_assert_eq!(hub.pending_events(), 0);
    }
}
