//! The [`FeedHub`]: fan-out of routing changes to all configured feeds
//! and time-ordered aggregation of their events.

use crate::event::{FeedEvent, FeedKind};
use crate::filter::FeedFilter;
use crate::source::{FeedSource, RibView};
use artemis_bgpsim::RouteChange;
use artemis_simnet::{SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stable identity of a feed inside a [`FeedHub`].
///
/// Returned by [`FeedHub::add`] and never reused, so drivers can
/// attach, address and detach feeds at runtime without the positional
/// fragility of index-based access (a detach shifts every later
/// index; handles are immune).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FeedHandle(u64);

impl FeedHandle {
    /// Reserved pseudo-handle for events put back into the queue via
    /// [`FeedHub::requeue`]. Requeued events were already drained once
    /// — their feed attribution is deliberately severed, so a later
    /// [`FeedHub::remove`] never drops them (they were due for
    /// delivery before the detach).
    pub const REQUEUED: FeedHandle = FeedHandle(0);

    /// The raw numeric id (stable, serializable).
    pub fn id(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for FeedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "feed#{}", self.0)
    }
}

/// Hub-observed health of one attached feed: how many of its events
/// sit undrained in the merge queue, and the emission instant of the
/// newest event it ever queued. This is the single source of truth
/// behind both `ServiceStatus` feed health and daemon `/metrics` —
/// they must agree because they both read it from here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedLag {
    /// Events queued (not yet drained) attributed to this feed.
    pub queued_events: usize,
    /// Emission instant of the newest event this feed queued, if any.
    pub last_event_at: Option<SimTime>,
    /// Events discarded before they could reach the merge heap:
    /// pre-heap [`crate::FeedFilter`] rejections at the hub boundary
    /// plus everything the feed itself reports dropping (backpressure
    /// sheds, feed-local filters, outage windows). Monotone;
    /// `shed_events` is a subset.
    pub dropped_events: u64,
    /// The backpressure subset of `dropped_events`: events shed from a
    /// bounded ring because the consumer fell behind. Monotone.
    pub shed_events: u64,
}

/// A queued event's ordering key: `(emitted_at, ingestion sequence)` —
/// the sequence number makes simultaneous emissions deterministic —
/// plus the slab slot holding the event payload. Keeping the payload
/// out of the ordering structures makes every key move a 24-byte copy
/// instead of a full `FeedEvent` (collector name, AS path, raw JSON)
/// move.
#[derive(Clone, Copy, PartialEq, Eq)]
struct QueuedKey(SimTime, u64, u32);

impl Ord for QueuedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.cmp(&other.1))
    }
}
impl PartialOrd for QueuedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One feed's pending keys, kept as a *sorted run* with a reusable
/// buffer: appends land at the tail in ingestion order (per-feed
/// streams are near-sorted already — a constant export delay makes
/// them exactly sorted), a cheap flag records whether an append ever
/// broke `(time, seq)` order, and [`Lane::seal`] sorts the run lazily
/// at drain time only when it has to. Draining consumes from the front
/// through a cursor so the allocation is reused wave after wave.
#[derive(Default)]
struct Lane {
    /// Pending keys; `keys[head..]` is the live run.
    keys: Vec<QueuedKey>,
    /// Consumption cursor into `keys` (compacted at seal time).
    head: usize,
    /// True when an append broke `(time, seq)` order since the last
    /// seal; the run must be sorted before merging.
    unsorted: bool,
    /// Earliest emission instant among pending keys (exact even while
    /// the run is unsorted), `None` when the lane is empty.
    min_time: Option<SimTime>,
}

impl Lane {
    /// Append a key in ingestion order.
    fn push(&mut self, key: QueuedKey) {
        if let Some(last) = self.keys.last() {
            if key < *last {
                self.unsorted = true;
            }
        }
        self.min_time = Some(self.min_time.map_or(key.0, |t| t.min(key.0)));
        self.keys.push(key);
    }

    /// Make the live run contiguous-from-zero and sorted by
    /// `(time, seq)`. Cheap when nothing is out of order (the common
    /// case): a drain of the consumed prefix and no sort.
    fn seal(&mut self) {
        if self.head > 0 {
            self.keys.drain(..self.head);
            self.head = 0;
        }
        if self.unsorted {
            self.keys.sort_unstable();
            self.unsorted = false;
        }
    }

    /// The earliest pending key. Only meaningful after [`Lane::seal`].
    fn front(&self) -> Option<QueuedKey> {
        self.keys.get(self.head).copied()
    }

    /// Consume the front key (lane must be sealed).
    fn pop_front(&mut self) -> QueuedKey {
        let key = self.keys[self.head];
        self.head += 1;
        self.min_time = self.keys.get(self.head).map(|k| k.0);
        key
    }
}

/// Wall-clock timing breakdown of one [`FeedHub::drain_batch_timed`]
/// call, split into the drain's two sub-stages: sealing the per-feed
/// sorted runs (lazy sort of any lane an append disordered) and the
/// k-way merge that moves due events out in global `(time, seq)`
/// order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainBreakdown {
    /// Nanoseconds spent sealing (compacting + lazily sorting) lanes.
    pub seal_nanos: u64,
    /// Nanoseconds spent merging due events into the output buffer.
    pub merge_nanos: u64,
}

/// Aggregates any number of [`FeedSource`]s behind one interface.
///
/// The hub supports two consumption styles:
///
/// * **Batched (preferred)** — the driver calls
///   [`FeedHub::ingest_route_changes`] / [`FeedHub::poll_and_queue`];
///   the hub merge-sorts every produced event by `emitted_at` into an
///   internal queue, and [`FeedHub::drain_batch`] moves everything due
///   up to an instant into a caller-owned reusable buffer. One scratch
///   buffer is threaded through all feeds, so the hot path performs no
///   per-route-change allocation.
/// * **Per-event** — [`FeedHub::on_route_change_into`] /
///   [`FeedHub::poll_into`] append raw feed output to a caller-owned
///   buffer and leave ordering to the caller.
///
/// Feeds are identified by the stable [`FeedHandle`] returned from
/// [`FeedHub::add`]; [`FeedHub::remove`] detaches a feed at runtime and
/// **drops** its queued, undelivered events (see `remove` docs).
///
/// # Per-feed RNG streams and parallel ingest
///
/// Every feed draws its export-delay samples from its **own** RNG
/// stream, forked deterministically from the hub's master stream at
/// attach time (`fork_indexed("feed", handle)`). A feed's draw
/// sequence therefore depends only on the hub seed, its handle and its
/// own event history — never on how work is interleaved across feeds.
/// That property is what lets [`FeedHub::ingest_route_changes`] fan
/// the synthesis out across threads (see
/// [`FeedHub::set_ingest_workers`]) and still enqueue a stream
/// byte-identical to the serial path: each feed synthesizes its events
/// independently, and a deterministic change-major, feed-minor merge
/// reassigns the exact ingestion sequence numbers the serial nested
/// loop would have produced.
pub struct FeedHub {
    /// Attached feeds with their stable handle and private RNG stream.
    feeds: Vec<(FeedHandle, SimRng, Box<dyn FeedSource>)>,
    /// Master stream: only forked at attach time, never drawn from on
    /// the event path.
    rng: SimRng,
    /// Threads the batched ingest path may fan out over (1 = serial).
    ingest_workers: usize,
    /// Per-feed sorted runs of pending event keys, keyed by handle id
    /// (including [`FeedHandle::REQUEUED`]'s own lane at id 0). The
    /// global drain order is recovered by a k-way merge over the lane
    /// fronts — per-feed streams are already (near-)time-ordered, so
    /// the merge pays O(feeds) per event where a global heap paid
    /// O(log total-events) sifts.
    lanes: BTreeMap<u64, Lane>,
    /// Total pending (undrained) events across all lanes.
    pending: usize,
    /// Event payloads with their source-feed attribution, indexed by
    /// the slot in each queued key.
    slots: Vec<Option<(FeedHandle, FeedEvent)>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Monotone ingestion counter (tie-break for equal emission times).
    seq: u64,
    /// Monotone handle allocator (0 is [`FeedHandle::REQUEUED`]).
    next_handle: u64,
    /// Reusable fan-out buffer shared by the batch ingestion paths.
    scratch: Vec<FeedEvent>,
    /// Per-feed lag bookkeeping, keyed by handle id. Entries live
    /// exactly as long as the feed is attached.
    lag: BTreeMap<u64, FeedLag>,
    /// Per-feed pre-heap filters, keyed by handle id. Only non-trivial
    /// filters are stored (the wildcard costs nothing by absence).
    filters: BTreeMap<u64, FeedFilter>,
}

impl FeedHub {
    /// An empty hub with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        FeedHub {
            feeds: Vec::new(),
            rng,
            ingest_workers: 1,
            lanes: BTreeMap::new(),
            pending: 0,
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            next_handle: 1,
            scratch: Vec::new(),
            lag: BTreeMap::new(),
            filters: BTreeMap::new(),
        }
    }

    /// Add a feed, returning its stable [`FeedHandle`]. Handles are
    /// never reused, even after [`FeedHub::remove`]. The feed gets its
    /// own RNG stream, forked from the hub's master stream by handle —
    /// so its delay draws are a pure function of (hub seed, handle,
    /// its own event history), independent of other feeds.
    pub fn add(&mut self, feed: Box<dyn FeedSource>) -> FeedHandle {
        let handle = FeedHandle(self.next_handle);
        self.next_handle += 1;
        let feed_rng = self.rng.fork_indexed("feed", handle.0);
        self.feeds.push((handle, feed_rng, feed));
        self.lag.insert(handle.0, FeedLag::default());
        handle
    }

    /// Add a feed with a pre-heap [`FeedFilter`]: events failing the
    /// predicate are discarded at the enqueue boundary — before they
    /// cost a slab slot or a heap key — and counted in
    /// [`FeedLag::dropped_events`].
    pub fn add_filtered(&mut self, feed: Box<dyn FeedSource>, filter: FeedFilter) -> FeedHandle {
        let handle = self.add(feed);
        self.set_feed_filter(handle, Some(filter));
        handle
    }

    /// Install, replace, or clear (`None`) a feed's pre-heap filter at
    /// runtime. Returns `false` when the handle is not attached.
    /// Wildcard filters are normalized away so the hot path pays
    /// nothing for unfiltered feeds.
    pub fn set_feed_filter(&mut self, handle: FeedHandle, filter: Option<FeedFilter>) -> bool {
        if !self.lag.contains_key(&handle.0) {
            return false;
        }
        match filter {
            Some(f) if !f.matches_everything() => {
                self.filters.insert(handle.0, f);
            }
            _ => {
                self.filters.remove(&handle.0);
            }
        }
        true
    }

    /// The pre-heap filter currently installed for a feed, if any
    /// non-trivial one is.
    pub fn feed_filter(&self, handle: FeedHandle) -> Option<&FeedFilter> {
        self.filters.get(&handle.0)
    }

    /// Let the batched ingest path ([`FeedHub::ingest_route_changes`])
    /// fan feed-event synthesis out over up to `workers` threads.
    /// Output is byte-identical to the serial path (the default,
    /// `workers = 1`) — see the type-level docs.
    pub fn set_ingest_workers(&mut self, workers: usize) {
        self.ingest_workers = workers.max(1);
    }

    /// Threads the batched ingest path may use (1 = serial).
    pub fn ingest_workers(&self) -> usize {
        self.ingest_workers
    }

    /// Detach a feed at runtime, returning the feed and the number of
    /// its queued, undelivered events.
    ///
    /// **Detach semantics (deliberate, deterministic):** every event
    /// the detached feed emitted that is still waiting in the merge
    /// queue is *dropped* — a detached feed's telemetry is considered
    /// untrustworthy from the detach instant, and dropping (rather
    /// than delivering a dying feed's tail) keeps the delivered stream
    /// a pure function of the attach/detach schedule. Events from
    /// other feeds keep their exact relative order. Events restored
    /// via [`FeedHub::requeue`] carry [`FeedHandle::REQUEUED`] and are
    /// never dropped by a detach (they were already due for delivery).
    pub fn remove(&mut self, handle: FeedHandle) -> Option<(Box<dyn FeedSource>, usize)> {
        let pos = self.feeds.iter().position(|(h, _, _)| *h == handle)?;
        let (_, _, feed) = self.feeds.remove(pos);
        // The detached feed's pending events all live in its own lane:
        // dropping them is freeing that lane's slots — other feeds'
        // lanes (and the requeued lane) are untouched, so their exact
        // relative order is preserved by construction.
        let mut dropped = 0usize;
        if let Some(lane) = self.lanes.remove(&handle.0) {
            for QueuedKey(_, _, slot) in &lane.keys[lane.head..] {
                self.slots[*slot as usize] = None;
                self.free.push(*slot);
                dropped += 1;
            }
            self.pending -= dropped;
        }
        self.lag.remove(&handle.0);
        self.filters.remove(&handle.0);
        Some((feed, dropped))
    }

    /// Number of feeds.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// True when no feeds are configured.
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }

    /// Move everything in the scratch buffer into the merge queue,
    /// attributed to `handle`. This is the pre-heap boundary: events
    /// rejected by the feed's [`FeedFilter`] are dropped *here*,
    /// before any slab slot or heap key is allocated for them.
    fn queue_scratch(&mut self, handle: FeedHandle) {
        if self.scratch.is_empty() {
            return;
        }
        let filter = self.filters.get(&handle.0);
        let lane = self.lanes.entry(handle.0).or_default();
        for ev in self.scratch.drain(..) {
            if let Some(f) = filter {
                if !f.matches(&ev) {
                    if let Some(lag) = self.lag.get_mut(&handle.0) {
                        lag.dropped_events += 1;
                    }
                    continue;
                }
            }
            let emitted_at = ev.emitted_at;
            if let Some(lag) = self.lag.get_mut(&handle.0) {
                lag.queued_events += 1;
                lag.last_event_at =
                    Some(lag.last_event_at.map_or(emitted_at, |t| t.max(emitted_at)));
            }
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize] = Some((handle, ev));
                    s
                }
                None => {
                    let s = self.slots.len() as u32;
                    self.slots.push(Some((handle, ev)));
                    s
                }
            };
            lane.push(QueuedKey(emitted_at, self.seq, slot));
            self.pending += 1;
            self.seq += 1;
        }
    }

    /// Fan one routing change out to all push feeds and queue the
    /// resulting events for [`FeedHub::drain_batch`].
    pub fn ingest_route_change(&mut self, change: &RouteChange) {
        for i in 0..self.feeds.len() {
            let handle = {
                let (h, rng, feed) = &mut self.feeds[i];
                feed.on_route_change_into(change, rng, &mut self.scratch);
                *h
            };
            self.queue_scratch(handle);
        }
    }

    /// Fan a batch of routing changes out to all push feeds, in order,
    /// queueing every resulting event.
    ///
    /// With [`FeedHub::set_ingest_workers`] `> 1` and a batch worth the
    /// thread fan-out, each feed synthesizes its event stream on a
    /// worker thread (its private RNG stream makes the draws
    /// interleaving-independent) and a deterministic change-major,
    /// feed-minor merge assigns exactly the ingestion sequence numbers
    /// the serial nested loop would have — the queued stream is
    /// byte-identical either way.
    pub fn ingest_route_changes(&mut self, changes: &[RouteChange]) {
        if self.ingest_workers > 1
            && self.feeds.len() > 1
            && changes.len() >= PARALLEL_INGEST_MIN_CHANGES
        {
            self.ingest_route_changes_parallel(changes);
        } else {
            for change in changes {
                self.ingest_route_change(change);
            }
        }
    }

    /// The parallel arm of [`FeedHub::ingest_route_changes`].
    fn ingest_route_changes_parallel(&mut self, changes: &[RouteChange]) {
        /// One feed's synthesis over the whole change batch: its
        /// events in emission order plus how many each change produced
        /// (the merge key).
        struct FeedRun {
            events: Vec<FeedEvent>,
            per_change: Vec<u32>,
        }
        let threads = self.ingest_workers.min(self.feeds.len());
        let feeds_per_thread = self.feeds.len().div_ceil(threads);
        // Feed chunks spawn in order and feeds stay ordered within a
        // chunk, so `runs` lines up with `self.feeds` by index.
        let runs: Vec<FeedRun> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .feeds
                .chunks_mut(feeds_per_thread)
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter_mut()
                            .map(|(_, rng, feed)| {
                                let mut events = Vec::new();
                                let mut per_change = Vec::with_capacity(changes.len());
                                for change in changes {
                                    let before = events.len();
                                    feed.on_route_change_into(change, rng, &mut events);
                                    per_change.push((events.len() - before) as u32);
                                }
                                FeedRun { events, per_change }
                            })
                            .collect::<Vec<FeedRun>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("ingest worker panicked"))
                .collect()
        });
        // Deterministic merge: replay the serial loop's order (change
        // major, feed minor) while assigning sequence numbers.
        let mut cursors: Vec<(std::vec::IntoIter<FeedEvent>, Vec<u32>)> = runs
            .into_iter()
            .map(|r| (r.events.into_iter(), r.per_change))
            .collect();
        for change_idx in 0..changes.len() {
            for (feed_idx, (events, per_change)) in cursors.iter_mut().enumerate() {
                let n = per_change[change_idx] as usize;
                if n == 0 {
                    continue;
                }
                let handle = self.feeds[feed_idx].0;
                self.scratch.extend(events.take(n));
                self.queue_scratch(handle);
            }
        }
    }

    /// Run every feed whose poll is due at `at` and queue the results.
    pub fn poll_and_queue(&mut self, at: SimTime, view: &dyn RibView) {
        for i in 0..self.feeds.len() {
            let handle = {
                let (h, rng, feed) = &mut self.feeds[i];
                if feed.next_poll(at).is_some_and(|t| t <= at) {
                    self.scratch.extend(feed.poll(at, view, rng));
                }
                *h
            };
            self.queue_scratch(handle);
        }
    }

    /// Put drained-but-unprocessed events back into the merge queue
    /// (e.g. when a driver stops mid-batch and wants a later drain to
    /// resume losslessly). Relative order among requeued events is
    /// preserved: they re-enter in iteration order with fresh
    /// ingestion sequence numbers, and everything at their emission
    /// instants has already been drained. Requeued events are
    /// attributed to [`FeedHandle::REQUEUED`], so a later
    /// [`FeedHub::remove`] does not drop them.
    pub fn requeue(&mut self, events: impl IntoIterator<Item = FeedEvent>) {
        self.scratch.extend(events);
        self.queue_scratch(FeedHandle::REQUEUED);
    }

    /// Emission instant of the earliest queued event, if any.
    pub fn next_emission(&self) -> Option<SimTime> {
        self.lanes.values().filter_map(|l| l.min_time).min()
    }

    /// Number of queued (not yet drained) events.
    pub fn pending_events(&self) -> usize {
        self.pending
    }

    /// Drain every queued event with `emitted_at <= upto` into `out`
    /// (cleared first), globally merge-sorted by `(emitted_at,
    /// ingestion order)` across push and pull feeds. Returns the number
    /// of drained events. `out` is caller-owned so one buffer can be
    /// reused across the whole run.
    ///
    /// Internally this seals each feed's sorted run (a lazy sort, paid
    /// only by lanes an append actually disordered) and then k-way
    /// merges the lane fronts by `(emitted_at, ingestion sequence)` —
    /// sequence numbers are globally unique, so the merged order is
    /// byte-identical to what a single global ordered queue would
    /// produce.
    pub fn drain_batch(&mut self, upto: SimTime, out: &mut Vec<FeedEvent>) -> usize {
        out.clear();
        self.seal_lanes();
        self.merge_due(upto, out)
    }

    /// [`FeedHub::drain_batch`] with a wall-clock sub-stage breakdown
    /// (seal vs merge), for pipelines exporting drain-stage latency
    /// histograms.
    pub fn drain_batch_timed(
        &mut self,
        upto: SimTime,
        out: &mut Vec<FeedEvent>,
    ) -> (usize, DrainBreakdown) {
        out.clear();
        let t0 = std::time::Instant::now();
        self.seal_lanes();
        let t1 = std::time::Instant::now();
        let n = self.merge_due(upto, out);
        let t2 = std::time::Instant::now();
        (
            n,
            DrainBreakdown {
                seal_nanos: (t1 - t0).as_nanos() as u64,
                merge_nanos: (t2 - t1).as_nanos() as u64,
            },
        )
    }

    /// Seal every lane's sorted run ahead of a merge.
    fn seal_lanes(&mut self) {
        for lane in self.lanes.values_mut() {
            lane.seal();
        }
    }

    /// K-way merge of due events (lanes must be sealed): repeatedly
    /// take the lane whose front key is globally smallest. With a
    /// handful of feeds the linear scan over lane fronts beats both a
    /// loser tree and the old global heap's O(log pending) sifts per
    /// event.
    fn merge_due(&mut self, upto: SimTime, out: &mut Vec<FeedEvent>) -> usize {
        loop {
            let mut best: Option<(QueuedKey, u64)> = None;
            for (&id, lane) in &self.lanes {
                if let Some(key) = lane.front() {
                    if key.0 <= upto && best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, id));
                    }
                }
            }
            let Some((_, id)) = best else {
                break;
            };
            let QueuedKey(_, _, slot) = self
                .lanes
                .get_mut(&id)
                .expect("winning lane exists")
                .pop_front();
            self.pending -= 1;
            let (owner, ev) = self.slots[slot as usize]
                .take()
                .expect("queued slot filled");
            if let Some(lag) = self.lag.get_mut(&owner.0) {
                lag.queued_events = lag.queued_events.saturating_sub(1);
            }
            self.free.push(slot);
            out.push(ev);
        }
        out.len()
    }

    /// Fan a routing change out to all push feeds, appending the
    /// resulting events to `out` (not queueing them; ordering is left
    /// to the caller). The zero-extra-allocation per-event surface.
    pub fn on_route_change_into(&mut self, change: &RouteChange, out: &mut Vec<FeedEvent>) {
        for (_, rng, feed) in &mut self.feeds {
            feed.on_route_change_into(change, rng, out);
        }
    }

    /// Earliest pending poll across all pull feeds.
    pub fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        self.feeds
            .iter()
            .filter_map(|(_, _, f)| f.next_poll(now))
            .min()
    }

    /// Run every feed whose poll is due at `at`, appending the events
    /// to `out` (not queueing them).
    pub fn poll_into(&mut self, at: SimTime, view: &dyn RibView, out: &mut Vec<FeedEvent>) {
        for (_, rng, feed) in &mut self.feeds {
            if feed.next_poll(at).is_some_and(|t| t <= at) {
                out.extend(feed.poll(at, view, rng));
            }
        }
    }

    /// Per-feed event counters (monitoring overhead of E3).
    pub fn emission_stats(&self) -> BTreeMap<(FeedKind, String), u64> {
        self.feeds
            .iter()
            .map(|(_, _, f)| ((f.kind(), f.name().to_string()), f.events_emitted()))
            .collect()
    }

    /// Every attached feed with its stable handle, in insertion order.
    pub fn handles(&self) -> impl Iterator<Item = (FeedHandle, &dyn FeedSource)> {
        self.feeds.iter().map(|(h, _, f)| (*h, f.as_ref()))
    }

    /// Drain the peers whose BGP sessions went down (BMP `peer_down`)
    /// across every attached wire feed since the last call, deduped in
    /// first-seen order. The pipeline purges each returned vantage
    /// point from its monitors' per-VP views.
    pub fn take_peer_downs(&mut self) -> Vec<artemis_bgp::Asn> {
        let mut downs: Vec<artemis_bgp::Asn> = Vec::new();
        for (_, _, feed) in &mut self.feeds {
            for asn in feed.take_peer_downs() {
                if !downs.contains(&asn) {
                    downs.push(asn);
                }
            }
        }
        downs
    }

    /// Access a feed by its stable handle (for feed-specific accessors
    /// like MRT archive bytes).
    pub fn feed_by_handle(&self, handle: FeedHandle) -> Option<&dyn FeedSource> {
        self.feeds
            .iter()
            .find(|(h, _, _)| *h == handle)
            .map(|(_, _, f)| f.as_ref())
    }

    /// The handle of the feed at `index` (current insertion order).
    pub fn handle_at(&self, index: usize) -> Option<FeedHandle> {
        self.feeds.get(index).map(|(h, _, _)| *h)
    }

    /// Hub-observed lag of an attached feed (see [`FeedLag`]).
    /// `None` once the feed is detached.
    ///
    /// Drop accounting is composed at read time: the hub's own
    /// pre-heap filter rejections (tracked here) plus whatever the
    /// feed reports discarding on its side of the boundary
    /// ([`FeedSource::dropped_events`] / [`FeedSource::shed_events`] —
    /// backpressure sheds, outage windows). Both inputs are monotone,
    /// so the composed counters are too.
    pub fn feed_lag(&self, handle: FeedHandle) -> Option<FeedLag> {
        let mut lag = *self.lag.get(&handle.0)?;
        if let Some(feed) = self.feed_by_handle(handle) {
            lag.dropped_events += feed.dropped_events();
            lag.shed_events += feed.shed_events();
        }
        Some(lag)
    }

    /// Total pull queries issued across feeds (LG overhead).
    pub fn polls_executed(&self) -> u64 {
        self.feeds.iter().map(|(_, _, f)| f.polls_executed()).sum()
    }
}

/// Below this many route changes the batched ingest path stays serial
/// even when workers are configured: scoped-thread spawn overhead
/// would dominate tiny batches. Purely a performance gate — both arms
/// produce byte-identical queues.
const PARALLEL_INGEST_MIN_CHANGES: usize = 32;

/// Split a drained batch of `len` events into at most `chunks`
/// near-equal contiguous index ranges, preserving `(emitted_at,
/// ingestion order)` within and across ranges.
///
/// This is the partitioning contract parallel consumers of
/// [`FeedHub::drain_batch`] rely on: concatenating the ranges in
/// iteration order reproduces the batch exactly, so per-chunk results
/// indexed by position merge back deterministically regardless of
/// which worker handled which chunk. Trailing ranges are never empty
/// (fewer ranges are yielded when `len < chunks`).
pub fn batch_chunks(len: usize, chunks: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let chunks = chunks.max(1);
    let size = len.div_ceil(chunks).max(1);
    (0..len)
        .step_by(size)
        .map(move |start| start..(start + size).min(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamFeed;
    use crate::vantage::group_into_collectors;
    use artemis_bgp::{AsPath, Asn};
    use artemis_bgpsim::BestRoute;
    use std::str::FromStr;

    fn change(asn: u32, t: u64) -> RouteChange {
        RouteChange {
            time: SimTime::from_secs(t),
            asn: Asn(asn),
            prefix: artemis_bgp::Prefix::from_str("10.0.0.0/23").unwrap(),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, 65001]),
                origin_as: Asn(65001),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    #[test]
    fn hub_fans_out_to_all_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        hub.add(Box::new(StreamFeed::bgpmon(group_into_collectors(
            "bmp", &vps, 1,
        ))));
        assert_eq!(hub.len(), 2);
        let mut evs = Vec::new();
        hub.on_route_change_into(&change(174, 10), &mut evs);
        assert_eq!(evs.len(), 2);
        let kinds: std::collections::BTreeSet<FeedKind> = evs.iter().map(|e| e.source).collect();
        assert!(kinds.contains(&FeedKind::RisLive));
        assert!(kinds.contains(&FeedKind::BgpMon));
    }

    #[test]
    fn empty_hub_is_silent() {
        let mut hub = FeedHub::new(SimRng::new(1));
        assert!(hub.is_empty());
        let mut evs = Vec::new();
        hub.on_route_change_into(&change(1, 1), &mut evs);
        assert!(evs.is_empty());
        assert_eq!(hub.next_poll(SimTime::ZERO), None);
        hub.ingest_route_change(&change(1, 1));
        assert_eq!(hub.pending_events(), 0);
        assert_eq!(hub.next_emission(), None);
    }

    #[test]
    fn handles_are_stable_and_unique() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        let h1 = hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        let h2 = hub.add(Box::new(StreamFeed::bgpmon(group_into_collectors(
            "bmp", &vps, 1,
        ))));
        assert_ne!(h1, h2);
        assert_ne!(h1, FeedHandle::REQUEUED);
        assert_eq!(hub.handle_at(0), Some(h1));
        assert_eq!(hub.handle_at(1), Some(h2));
        assert_eq!(hub.feed_by_handle(h1).unwrap().kind(), FeedKind::RisLive);
        assert_eq!(hub.feed_by_handle(h2).unwrap().kind(), FeedKind::BgpMon);

        // Detach the first feed: the second keeps its handle even
        // though its position shifted, and the handle is never reused.
        let (removed, dropped) = hub.remove(h1).expect("attached");
        assert_eq!(removed.kind(), FeedKind::RisLive);
        assert_eq!(dropped, 0);
        assert_eq!(hub.len(), 1);
        assert_eq!(hub.handle_at(0), Some(h2));
        assert!(hub.feed_by_handle(h1).is_none());
        let h3 = hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        assert!(h3 != h1 && h3 != h2, "handles are never recycled");
        assert!(hub.remove(h1).is_none(), "double-detach is a no-op");
    }

    #[test]
    fn feed_lag_tracks_queue_depth_and_last_emission() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        let h = hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        assert_eq!(hub.feed_lag(h), Some(FeedLag::default()));

        hub.ingest_route_changes(&[change(174, 10), change(174, 20)]);
        let lag = hub.feed_lag(h).unwrap();
        assert_eq!(lag.queued_events, 2);
        assert_eq!(lag.last_event_at, Some(SimTime::from_secs(25)));

        // Partial drain decrements the queue depth but keeps the
        // high-water emission instant.
        let mut buf = Vec::new();
        hub.drain_batch(SimTime::from_secs(15), &mut buf);
        let lag = hub.feed_lag(h).unwrap();
        assert_eq!(lag.queued_events, 1);
        assert_eq!(lag.last_event_at, Some(SimTime::from_secs(25)));

        // Requeued events are attributed to REQUEUED, not the feed.
        hub.requeue(buf.drain(..));
        assert_eq!(hub.feed_lag(h).unwrap().queued_events, 1);

        // Detach removes the bookkeeping entirely.
        hub.remove(h).expect("attached");
        assert_eq!(hub.feed_lag(h), None);
    }

    #[test]
    fn remove_drops_only_the_detached_feeds_queued_events() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        let _ris = hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(60)),
        ));
        let bmon = hub.add(Box::new(
            StreamFeed::bgpmon(group_into_collectors("bmp", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10), change(174, 20)]);
        assert_eq!(hub.pending_events(), 4);

        let (_, dropped) = hub.remove(bmon).expect("attached");
        assert_eq!(dropped, 2, "both queued bgpmon events dropped");
        assert_eq!(hub.pending_events(), 2);
        assert_eq!(
            hub.next_emission(),
            Some(SimTime::from_secs(70)),
            "next emission reflects the surviving feed"
        );
        let mut buf = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(buf.len(), 2);
        assert!(buf.iter().all(|e| e.source == FeedKind::RisLive));
    }

    #[test]
    fn requeued_events_survive_detach() {
        let mut hub = FeedHub::new(SimRng::new(4));
        let vps = vec![Asn(174)];
        let h = hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10)]);
        let mut buf = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(buf.len(), 1);
        // The driver could not process the event; it goes back — and a
        // subsequent detach must NOT drop it (it was already due).
        hub.requeue(buf.drain(..));
        let (_, dropped) = hub.remove(h).expect("attached");
        assert_eq!(dropped, 0);
        assert_eq!(hub.pending_events(), 1);
    }

    #[test]
    fn drain_batch_is_sorted_and_respects_upto() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        // Skewed constant delays: the later observation (t=20, 5 s
        // delay) is emitted *before* the earlier one (t=10, 60 s).
        hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(60)),
        ));
        hub.add(Box::new(
            StreamFeed::bgpmon(group_into_collectors("bmp", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10), change(174, 20)]);
        assert_eq!(hub.pending_events(), 4);
        assert_eq!(hub.next_emission(), Some(SimTime::from_secs(15)));

        let mut buf = Vec::new();
        // Partial drain: only events emitted by t=30 (the two bgpmon).
        let n = hub.drain_batch(SimTime::from_secs(30), &mut buf);
        assert_eq!(n, 2);
        assert!(buf.iter().all(|e| e.source == FeedKind::BgpMon));
        assert_eq!(hub.pending_events(), 2);

        // The rest drains in emission order despite reversed ingestion.
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        let times: Vec<SimTime> = buf.iter().map(|e| e.emitted_at).collect();
        assert_eq!(times, vec![SimTime::from_secs(70), SimTime::from_secs(80)]);
        assert_eq!(hub.pending_events(), 0);
    }

    #[test]
    fn requeue_restores_undelivered_events() {
        let mut hub = FeedHub::new(SimRng::new(4));
        let vps = vec![Asn(174)];
        hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10), change(174, 10), change(174, 20)]);
        let mut buf = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(hub.pending_events(), 0);

        // A driver consumed only the first event; the rest goes back.
        let undelivered: Vec<FeedEvent> = buf.drain(1..).collect();
        hub.requeue(undelivered.clone());
        assert_eq!(hub.pending_events(), 2);
        assert_eq!(hub.next_emission(), Some(SimTime::from_secs(15)));
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(
            buf, undelivered,
            "resumed drain sees the same events in order"
        );
    }

    #[test]
    fn batch_and_per_event_paths_emit_the_same_events() {
        let vps = vec![Asn(174), Asn(3356)];
        let changes: Vec<RouteChange> = (0..20u64)
            .map(|i| change(if i % 2 == 0 { 174 } else { 3356 }, i))
            .collect();
        let build = || {
            let mut hub = FeedHub::new(SimRng::new(9));
            hub.add(Box::new(
                StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2))
                    .with_export_delay(artemis_simnet::LatencyModel::const_secs(3)),
            ));
            hub
        };

        let mut per_event = Vec::new();
        let mut hub = build();
        for c in &changes {
            hub.on_route_change_into(c, &mut per_event);
        }

        let mut batch = Vec::new();
        let mut hub = build();
        hub.ingest_route_changes(&changes);
        hub.drain_batch(SimTime::from_secs(10_000), &mut batch);

        let mut per_event_sorted = per_event.clone();
        per_event_sorted.sort_by_key(|e| e.emitted_at);
        assert_eq!(batch, per_event_sorted);
    }

    #[test]
    fn batch_chunks_cover_exactly_once_in_order() {
        for (len, chunks) in [(0, 4), (1, 4), (7, 3), (8, 4), (100, 7), (5, 1), (3, 8)] {
            let ranges: Vec<_> = batch_chunks(len, chunks).collect();
            assert!(ranges.len() <= chunks.max(1), "len={len} chunks={chunks}");
            let mut covered = Vec::new();
            for r in &ranges {
                assert!(!r.is_empty(), "no empty ranges: len={len} chunks={chunks}");
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>());
            // Near-equal: sizes differ by at most the rounding step.
            if let (Some(max), Some(min)) = (
                ranges.iter().map(|r| r.len()).max(),
                ranges.iter().map(|r| r.len()).min(),
            ) {
                assert!(max - min <= len.div_ceil(chunks));
            }
        }
    }

    #[test]
    fn emission_stats_track_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        let mut sink = Vec::new();
        hub.on_route_change_into(&change(174, 10), &mut sink);
        hub.on_route_change_into(&change(174, 20), &mut sink);
        let stats = hub.emission_stats();
        assert_eq!(stats[&(FeedKind::RisLive, "ris-live".to_string())], 2);
    }

    #[test]
    fn pre_heap_filter_rejects_before_the_slab() {
        use crate::filter::FeedFilter;
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        // Watch a disjoint prefix: every ingested change must be
        // rejected at the enqueue boundary.
        let h = hub.add_filtered(
            Box::new(StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))),
            FeedFilter::any().prefix(artemis_bgp::Prefix::from_str("192.0.2.0/24").unwrap()),
        );
        hub.ingest_route_change(&change(174, 10));
        hub.ingest_route_change(&change(174, 20));
        assert_eq!(hub.pending_events(), 0, "rejected events cost no slab slot");
        let lag = hub.feed_lag(h).unwrap();
        assert_eq!(lag.dropped_events, 2);
        assert_eq!(lag.queued_events, 0);
        // Feed-side emission counting still ran (the feed *did* emit).
        assert_eq!(hub.feed_by_handle(h).unwrap().events_emitted(), 2);
    }

    #[test]
    fn matching_filter_passes_events_through() {
        use crate::filter::FeedFilter;
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        let h = hub.add_filtered(
            Box::new(StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))),
            FeedFilter::any()
                .prefix(artemis_bgp::Prefix::from_str("10.0.0.0/24").unwrap())
                .origin(Asn(65001)),
        );
        // 10.0.0.0/23 overlaps the watched /24 and origin matches.
        hub.ingest_route_change(&change(174, 10));
        assert_eq!(hub.pending_events(), 1);
        assert_eq!(hub.feed_lag(h).unwrap().dropped_events, 0);
    }

    #[test]
    fn set_feed_filter_swaps_at_runtime() {
        use crate::filter::FeedFilter;
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        let h = hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        assert_eq!(hub.feed_filter(h), None, "plain add has no filter");
        hub.ingest_route_change(&change(174, 10));
        assert_eq!(hub.pending_events(), 1);

        let deny = FeedFilter::any().vantage(Asn(9999));
        assert!(hub.set_feed_filter(h, Some(deny.clone())));
        assert_eq!(hub.feed_filter(h), Some(&deny));
        hub.ingest_route_change(&change(174, 20));
        assert_eq!(hub.pending_events(), 1, "new filter rejects");
        assert_eq!(hub.feed_lag(h).unwrap().dropped_events, 1);

        // Clearing (or installing a wildcard) restores pass-through.
        assert!(hub.set_feed_filter(h, Some(FeedFilter::any())));
        assert_eq!(hub.feed_filter(h), None, "wildcard is normalized away");
        hub.ingest_route_change(&change(174, 30));
        assert_eq!(hub.pending_events(), 2);

        // Detached handles refuse the swap.
        hub.remove(h);
        assert!(!hub.set_feed_filter(h, Some(FeedFilter::any())));
    }
}
