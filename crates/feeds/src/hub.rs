//! The [`FeedHub`]: fan-out of routing changes to all configured feeds
//! and aggregation of their events.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgpsim::RouteChange;
use artemis_simnet::{SimRng, SimTime};
use std::collections::BTreeMap;

/// Aggregates any number of [`FeedSource`]s behind one interface.
///
/// The experiment driver owns a hub and:
/// 1. forwards every [`RouteChange`] (push feeds),
/// 2. interleaves [`FeedHub::next_poll`] / [`FeedHub::poll`] with the
///    BGP engine's event loop (pull feeds),
/// 3. orders the returned [`FeedEvent`]s by `emitted_at` before handing
///    them to the detector.
pub struct FeedHub {
    feeds: Vec<Box<dyn FeedSource>>,
    rng: SimRng,
}

impl FeedHub {
    /// An empty hub with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        FeedHub {
            feeds: Vec::new(),
            rng,
        }
    }

    /// Add a feed.
    pub fn add(&mut self, feed: Box<dyn FeedSource>) {
        self.feeds.push(feed);
    }

    /// Number of feeds.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// True when no feeds are configured.
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }

    /// Fan a routing change out to all push feeds.
    pub fn on_route_change(&mut self, change: &RouteChange) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        for feed in &mut self.feeds {
            out.extend(feed.on_route_change(change, &mut self.rng));
        }
        out
    }

    /// Earliest pending poll across all pull feeds.
    pub fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        self.feeds.iter().filter_map(|f| f.next_poll(now)).min()
    }

    /// Run every feed whose poll is due at `at`.
    pub fn poll(&mut self, at: SimTime, view: &dyn RibView) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        for feed in &mut self.feeds {
            if feed.next_poll(at).is_some_and(|t| t <= at) {
                out.extend(feed.poll(at, view, &mut self.rng));
            }
        }
        out
    }

    /// Per-feed event counters (monitoring overhead of E3).
    pub fn emission_stats(&self) -> BTreeMap<(FeedKind, String), u64> {
        self.feeds
            .iter()
            .map(|f| ((f.kind(), f.name().to_string()), f.events_emitted()))
            .collect()
    }

    /// Access a feed by index (for feed-specific accessors like MRT
    /// bytes; order = insertion order).
    pub fn feed(&self, index: usize) -> Option<&dyn FeedSource> {
        self.feeds.get(index).map(|b| b.as_ref())
    }

    /// Total pull queries issued across feeds (LG overhead).
    pub fn polls_executed(&self) -> u64 {
        self.feeds.iter().map(|f| f.polls_executed()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamFeed;
    use crate::vantage::group_into_collectors;
    use artemis_bgp::{AsPath, Asn};
    use artemis_bgpsim::BestRoute;
    use std::str::FromStr;

    fn change(asn: u32, t: u64) -> RouteChange {
        RouteChange {
            time: SimTime::from_secs(t),
            asn: Asn(asn),
            prefix: artemis_bgp::Prefix::from_str("10.0.0.0/23").unwrap(),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, 65001]),
                origin_as: Asn(65001),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    #[test]
    fn hub_fans_out_to_all_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        hub.add(Box::new(StreamFeed::bgpmon(group_into_collectors(
            "bmp", &vps, 1,
        ))));
        assert_eq!(hub.len(), 2);
        let evs = hub.on_route_change(&change(174, 10));
        assert_eq!(evs.len(), 2);
        let kinds: std::collections::BTreeSet<FeedKind> = evs.iter().map(|e| e.source).collect();
        assert!(kinds.contains(&FeedKind::RisLive));
        assert!(kinds.contains(&FeedKind::BgpMon));
    }

    #[test]
    fn empty_hub_is_silent() {
        let mut hub = FeedHub::new(SimRng::new(1));
        assert!(hub.is_empty());
        assert!(hub.on_route_change(&change(1, 1)).is_empty());
        assert_eq!(hub.next_poll(SimTime::ZERO), None);
    }

    #[test]
    fn emission_stats_track_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        hub.on_route_change(&change(174, 10));
        hub.on_route_change(&change(174, 20));
        let stats = hub.emission_stats();
        assert_eq!(stats[&(FeedKind::RisLive, "ris-live".to_string())], 2);
    }
}
