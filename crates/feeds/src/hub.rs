//! The [`FeedHub`]: fan-out of routing changes to all configured feeds
//! and time-ordered aggregation of their events.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgpsim::RouteChange;
use artemis_simnet::{SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A queued event's ordering key: `(emitted_at, ingestion sequence)` —
/// the sequence number makes simultaneous emissions deterministic —
/// plus the slab slot holding the event payload. Keeping the payload
/// out of the heap makes every sift a 24-byte move instead of a full
/// `FeedEvent` (collector name, AS path, raw JSON) move.
#[derive(PartialEq, Eq)]
struct QueuedKey(SimTime, u64, u32);

impl Ord for QueuedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.cmp(&other.1))
    }
}
impl PartialOrd for QueuedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Aggregates any number of [`FeedSource`]s behind one interface.
///
/// The hub supports two consumption styles:
///
/// * **Batched (preferred)** — the driver calls
///   [`FeedHub::ingest_route_changes`] / [`FeedHub::poll_and_queue`];
///   the hub merge-sorts every produced event by `emitted_at` into an
///   internal queue, and [`FeedHub::drain_batch`] moves everything due
///   up to an instant into a caller-owned reusable buffer. One scratch
///   buffer is threaded through all feeds, so the hot path performs no
///   per-route-change allocation.
/// * **Per-event (legacy)** — [`FeedHub::on_route_change`] /
///   [`FeedHub::poll`] return a fresh `Vec` per call and leave ordering
///   to the caller. These are thin wrappers kept for callers that want
///   to observe raw feed output directly.
pub struct FeedHub {
    feeds: Vec<Box<dyn FeedSource>>,
    rng: SimRng,
    /// Merge queue of pending event keys across all feeds.
    queue: BinaryHeap<Reverse<QueuedKey>>,
    /// Event payloads, indexed by the slot in each queued key.
    slots: Vec<Option<FeedEvent>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Monotone ingestion counter (tie-break for equal emission times).
    seq: u64,
    /// Reusable fan-out buffer shared by the batch ingestion paths.
    scratch: Vec<FeedEvent>,
}

impl FeedHub {
    /// An empty hub with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        FeedHub {
            feeds: Vec::new(),
            rng,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Add a feed.
    pub fn add(&mut self, feed: Box<dyn FeedSource>) {
        self.feeds.push(feed);
    }

    /// Number of feeds.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// True when no feeds are configured.
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }

    /// Move everything in the scratch buffer into the merge queue.
    fn queue_scratch(&mut self) {
        for ev in self.scratch.drain(..) {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize] = Some(ev);
                    s
                }
                None => {
                    let s = self.slots.len() as u32;
                    self.slots.push(Some(ev));
                    s
                }
            };
            let emitted_at = self.slots[slot as usize]
                .as_ref()
                .expect("just stored")
                .emitted_at;
            self.queue
                .push(Reverse(QueuedKey(emitted_at, self.seq, slot)));
            self.seq += 1;
        }
    }

    /// Fan one routing change out to all push feeds and queue the
    /// resulting events for [`FeedHub::drain_batch`].
    pub fn ingest_route_change(&mut self, change: &RouteChange) {
        for feed in &mut self.feeds {
            feed.on_route_change_into(change, &mut self.rng, &mut self.scratch);
        }
        self.queue_scratch();
    }

    /// Fan a batch of routing changes out to all push feeds, in order,
    /// queueing every resulting event.
    pub fn ingest_route_changes(&mut self, changes: &[RouteChange]) {
        for change in changes {
            self.ingest_route_change(change);
        }
    }

    /// Run every feed whose poll is due at `at` and queue the results.
    pub fn poll_and_queue(&mut self, at: SimTime, view: &dyn RibView) {
        for feed in &mut self.feeds {
            if feed.next_poll(at).is_some_and(|t| t <= at) {
                self.scratch.extend(feed.poll(at, view, &mut self.rng));
            }
        }
        self.queue_scratch();
    }

    /// Put drained-but-unprocessed events back into the merge queue
    /// (e.g. when a driver stops mid-batch and wants a later drain to
    /// resume losslessly). Relative order among requeued events is
    /// preserved: they re-enter in iteration order with fresh
    /// ingestion sequence numbers, and everything at their emission
    /// instants has already been drained.
    pub fn requeue(&mut self, events: impl IntoIterator<Item = FeedEvent>) {
        self.scratch.extend(events);
        self.queue_scratch();
    }

    /// Emission instant of the earliest queued event, if any.
    pub fn next_emission(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(q)| q.0)
    }

    /// Number of queued (not yet drained) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Drain every queued event with `emitted_at <= upto` into `out`
    /// (cleared first), globally merge-sorted by `(emitted_at,
    /// ingestion order)` across push and pull feeds. Returns the number
    /// of drained events. `out` is caller-owned so one buffer can be
    /// reused across the whole run.
    pub fn drain_batch(&mut self, upto: SimTime, out: &mut Vec<FeedEvent>) -> usize {
        out.clear();
        while self.queue.peek().is_some_and(|Reverse(q)| q.0 <= upto) {
            let Some(Reverse(QueuedKey(_, _, slot))) = self.queue.pop() else {
                break;
            };
            let ev = self.slots[slot as usize]
                .take()
                .expect("queued slot filled");
            self.free.push(slot);
            out.push(ev);
        }
        out.len()
    }

    /// Fan a routing change out to all push feeds, returning (not
    /// queueing) the events. Thin allocating wrapper over the batch
    /// path; ordering is left to the caller.
    pub fn on_route_change(&mut self, change: &RouteChange) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        for feed in &mut self.feeds {
            feed.on_route_change_into(change, &mut self.rng, &mut out);
        }
        out
    }

    /// Earliest pending poll across all pull feeds.
    pub fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        self.feeds.iter().filter_map(|f| f.next_poll(now)).min()
    }

    /// Run every feed whose poll is due at `at`, returning (not
    /// queueing) the events. Thin wrapper over the pull path.
    pub fn poll(&mut self, at: SimTime, view: &dyn RibView) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        for feed in &mut self.feeds {
            if feed.next_poll(at).is_some_and(|t| t <= at) {
                out.extend(feed.poll(at, view, &mut self.rng));
            }
        }
        out
    }

    /// Per-feed event counters (monitoring overhead of E3).
    pub fn emission_stats(&self) -> BTreeMap<(FeedKind, String), u64> {
        self.feeds
            .iter()
            .map(|f| ((f.kind(), f.name().to_string()), f.events_emitted()))
            .collect()
    }

    /// Access a feed by index (for feed-specific accessors like MRT
    /// bytes; order = insertion order).
    pub fn feed(&self, index: usize) -> Option<&dyn FeedSource> {
        self.feeds.get(index).map(|b| b.as_ref())
    }

    /// Total pull queries issued across feeds (LG overhead).
    pub fn polls_executed(&self) -> u64 {
        self.feeds.iter().map(|f| f.polls_executed()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamFeed;
    use crate::vantage::group_into_collectors;
    use artemis_bgp::{AsPath, Asn};
    use artemis_bgpsim::BestRoute;
    use std::str::FromStr;

    fn change(asn: u32, t: u64) -> RouteChange {
        RouteChange {
            time: SimTime::from_secs(t),
            asn: Asn(asn),
            prefix: artemis_bgp::Prefix::from_str("10.0.0.0/23").unwrap(),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, 65001]),
                origin_as: Asn(65001),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    #[test]
    fn hub_fans_out_to_all_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        hub.add(Box::new(StreamFeed::bgpmon(group_into_collectors(
            "bmp", &vps, 1,
        ))));
        assert_eq!(hub.len(), 2);
        let evs = hub.on_route_change(&change(174, 10));
        assert_eq!(evs.len(), 2);
        let kinds: std::collections::BTreeSet<FeedKind> = evs.iter().map(|e| e.source).collect();
        assert!(kinds.contains(&FeedKind::RisLive));
        assert!(kinds.contains(&FeedKind::BgpMon));
    }

    #[test]
    fn empty_hub_is_silent() {
        let mut hub = FeedHub::new(SimRng::new(1));
        assert!(hub.is_empty());
        assert!(hub.on_route_change(&change(1, 1)).is_empty());
        assert_eq!(hub.next_poll(SimTime::ZERO), None);
        hub.ingest_route_change(&change(1, 1));
        assert_eq!(hub.pending_events(), 0);
        assert_eq!(hub.next_emission(), None);
    }

    #[test]
    fn drain_batch_is_sorted_and_respects_upto() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        // Skewed constant delays: the later observation (t=20, 5 s
        // delay) is emitted *before* the earlier one (t=10, 60 s).
        hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(60)),
        ));
        hub.add(Box::new(
            StreamFeed::bgpmon(group_into_collectors("bmp", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10), change(174, 20)]);
        assert_eq!(hub.pending_events(), 4);
        assert_eq!(hub.next_emission(), Some(SimTime::from_secs(15)));

        let mut buf = Vec::new();
        // Partial drain: only events emitted by t=30 (the two bgpmon).
        let n = hub.drain_batch(SimTime::from_secs(30), &mut buf);
        assert_eq!(n, 2);
        assert!(buf.iter().all(|e| e.source == FeedKind::BgpMon));
        assert_eq!(hub.pending_events(), 2);

        // The rest drains in emission order despite reversed ingestion.
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        let times: Vec<SimTime> = buf.iter().map(|e| e.emitted_at).collect();
        assert_eq!(times, vec![SimTime::from_secs(70), SimTime::from_secs(80)]);
        assert_eq!(hub.pending_events(), 0);
    }

    #[test]
    fn requeue_restores_undelivered_events() {
        let mut hub = FeedHub::new(SimRng::new(4));
        let vps = vec![Asn(174)];
        hub.add(Box::new(
            StreamFeed::ris_live(group_into_collectors("rrc", &vps, 1))
                .with_export_delay(artemis_simnet::LatencyModel::const_secs(5)),
        ));
        hub.ingest_route_changes(&[change(174, 10), change(174, 10), change(174, 20)]);
        let mut buf = Vec::new();
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(hub.pending_events(), 0);

        // A driver consumed only the first event; the rest goes back.
        let undelivered: Vec<FeedEvent> = buf.drain(1..).collect();
        hub.requeue(undelivered.clone());
        assert_eq!(hub.pending_events(), 2);
        assert_eq!(hub.next_emission(), Some(SimTime::from_secs(15)));
        hub.drain_batch(SimTime::from_secs(1_000), &mut buf);
        assert_eq!(
            buf, undelivered,
            "resumed drain sees the same events in order"
        );
    }

    #[test]
    fn batch_and_per_event_paths_emit_the_same_events() {
        let vps = vec![Asn(174), Asn(3356)];
        let changes: Vec<RouteChange> = (0..20u64)
            .map(|i| change(if i % 2 == 0 { 174 } else { 3356 }, i))
            .collect();
        let build = || {
            let mut hub = FeedHub::new(SimRng::new(9));
            hub.add(Box::new(
                StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2))
                    .with_export_delay(artemis_simnet::LatencyModel::const_secs(3)),
            ));
            hub
        };

        let mut per_event = Vec::new();
        let mut hub = build();
        for c in &changes {
            per_event.extend(hub.on_route_change(c));
        }

        let mut batch = Vec::new();
        let mut hub = build();
        hub.ingest_route_changes(&changes);
        hub.drain_batch(SimTime::from_secs(10_000), &mut batch);

        let mut per_event_sorted = per_event.clone();
        per_event_sorted.sort_by_key(|e| e.emitted_at);
        assert_eq!(batch, per_event_sorted);
    }

    #[test]
    fn emission_stats_track_feeds() {
        let mut hub = FeedHub::new(SimRng::new(1));
        let vps = vec![Asn(174)];
        hub.add(Box::new(StreamFeed::ris_live(group_into_collectors(
            "rrc", &vps, 1,
        ))));
        hub.on_route_change(&change(174, 10));
        hub.on_route_change(&change(174, 20));
        let stats = hub.emission_stats();
        assert_eq!(stats[&(FeedKind::RisLive, "ris-live".to_string())], 2);
    }
}
