//! The common event type all feeds emit.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which monitoring system produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeedKind {
    /// RIPE RIS streaming service ("RIS Live").
    RisLive,
    /// BGPmon live stream.
    BgpMon,
    /// Periscope looking-glass query.
    Periscope,
    /// Archived update batches (RouteViews/RIS style, baseline only).
    ArchiveUpdates,
    /// Periodic full-RIB dumps (baseline only).
    ArchiveRib,
    /// Replay of raw MRT archive bytes (forensics / baseline replay).
    MrtReplay,
    /// Live BMP (RFC 7854) session off a real TCP socket.
    BmpLive,
}

impl fmt::Display for FeedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedKind::RisLive => write!(f, "ris-live"),
            FeedKind::BgpMon => write!(f, "bgpmon"),
            FeedKind::Periscope => write!(f, "periscope"),
            FeedKind::ArchiveUpdates => write!(f, "archive-updates"),
            FeedKind::ArchiveRib => write!(f, "archive-rib"),
            FeedKind::MrtReplay => write!(f, "mrt-replay"),
            FeedKind::BmpLive => write!(f, "bmp-live"),
        }
    }
}

/// One observation delivered by a monitoring feed.
///
/// `as_path` is the path *as seen from the vantage point's collector
/// session* — i.e. it starts with the vantage AS itself (a collector
/// receives the peer's Adj-RIB-Out, which prepends the peer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedEvent {
    /// When the monitoring service delivered the event to subscribers
    /// (this is when ARTEMIS can possibly react).
    pub emitted_at: SimTime,
    /// When the vantage point's routing actually changed.
    pub observed_at: SimTime,
    /// Producing system.
    pub source: FeedKind,
    /// Collector / LG identifier (e.g. `rrc00`, `lg-03`).
    pub collector: String,
    /// The vantage-point AS.
    pub vantage: Asn,
    /// Affected prefix.
    pub prefix: Prefix,
    /// Path including the vantage AS; `None` for withdrawals.
    pub as_path: Option<AsPath>,
    /// Origin AS of the observed path, if defined.
    pub origin_as: Option<Asn>,
    /// Raw wire payload where the real service has one (RIS-live JSON).
    pub raw: Option<String>,
}

impl FeedEvent {
    /// Feed pipeline latency for this event (emission − observation).
    pub fn feed_delay(&self) -> artemis_simnet::SimDuration {
        self.emitted_at.saturating_since(self.observed_at)
    }

    /// True for withdrawal observations.
    pub fn is_withdrawal(&self) -> bool {
        self.as_path.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn feed_delay_computation() {
        let e = FeedEvent {
            emitted_at: SimTime::from_secs(50),
            observed_at: SimTime::from_secs(45),
            source: FeedKind::RisLive,
            collector: "rrc00".into(),
            vantage: Asn(174),
            prefix: Prefix::from_str("10.0.0.0/23").unwrap(),
            as_path: None,
            origin_as: None,
            raw: None,
        };
        assert_eq!(e.feed_delay(), artemis_simnet::SimDuration::from_secs(5));
        assert!(e.is_withdrawal());
    }

    #[test]
    fn kind_display() {
        assert_eq!(FeedKind::RisLive.to_string(), "ris-live");
        assert_eq!(FeedKind::ArchiveRib.to_string(), "archive-rib");
    }
}
