//! # artemis-feeds — BGP monitoring infrastructure
//!
//! ARTEMIS detects hijacks by combining *multiple live control-plane
//! feeds* (paper §2): the streaming service of RIPE RIS, BGPmon, and
//! Periscope-style Looking Glass queries. This crate simulates all of
//! them — plus the slow archive pipelines (2-hour RIBs / 15-minute
//! update batches) that the paper's baselines rely on — against the
//! routing state of an [`artemis_bgpsim::Engine`].
//!
//! Taxonomy:
//!
//! | feed | mode | latency character |
//! |------|------|-------------------|
//! | [`StreamFeed`] (RIS-live flavour) | push | seconds (lognormal export pipeline) |
//! | [`StreamFeed`] (BGPmon flavour)   | push | seconds–tens of seconds |
//! | [`BmpLiveFeed`] (RFC 7854 wire)   | pull off a real TCP socket | sub-second (bounded by pump cadence) |
//! | [`PeriscopeFeed`] | pull (rate-limited polls) | poll phase + response latency |
//! | [`ArchiveUpdatesFeed`] | batch | visible at the next batch boundary |
//! | [`ArchiveRibFeed`] | snapshot | visible at the next dump |
//! | [`MrtReplayFeed`] | replay of raw MRT bytes | recorded instants + batch window |
//!
//! Every source implements [`FeedSource`]; a [`FeedHub`] fans a
//! [`RouteChange`](artemis_bgpsim::RouteChange) out to all of them and
//! merge-sorts the timestamped [`FeedEvent`]s it collects into batches
//! (see [`FeedHub::drain_batch`]). Detection delay is therefore *the
//! min over sources* — exactly the property the paper exploits (claim
//! C7 in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod event;
pub mod filter;
pub mod hub;
pub mod live;
pub mod periscope;
pub mod replay;
pub mod source;
pub mod spec;
pub mod stream;
pub mod vantage;

pub use archive::{ArchiveRibFeed, ArchiveUpdatesFeed};
pub use event::{FeedEvent, FeedKind};
pub use filter::FeedFilter;
pub use hub::{batch_chunks, DrainBreakdown, FeedHandle, FeedHub, FeedLag};
pub use live::{BmpLiveFeed, LiveFeedConfig, LiveFeedStats, PeerHealth, WireHealth};
pub use periscope::{LookingGlass, PeriscopeFeed};
pub use replay::{MrtReplayFeed, MrtRibSnapshot};
pub use source::{EmptyRibView, EngineView, FeedSource, RibView};
pub use spec::FeedSpec;
pub use stream::StreamFeed;
pub use vantage::VantageStrategy;
