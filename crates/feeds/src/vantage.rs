//! Vantage-point selection strategies.
//!
//! The paper notes ARTEMIS "can be parametrized (e.g., selecting LGs
//! based on location or connectivity) to achieve trade-offs between
//! monitoring overhead and detection efficiency/speed" — experiment E3
//! sweeps these strategies.

use artemis_bgp::Asn;
use artemis_simnet::SimRng;
use artemis_topology::AsGraph;
use serde::{Deserialize, Serialize};

/// How to choose vantage-point ASes from a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VantageStrategy {
    /// Uniformly random ASes.
    Random,
    /// The best-connected ASes (highest degree first) — these hear
    /// about routing changes soonest, like real collectors peering at
    /// large IXPs.
    TopDegree,
    /// Half top-degree, half random — a realistic collector mix.
    Mixed,
}

impl VantageStrategy {
    /// Select `k` distinct vantage ASes (fewer if the graph is small).
    /// `exclude` lists ASes that must not be chosen (e.g. the victim
    /// and attacker themselves, which would make detection trivial).
    pub fn select(self, graph: &AsGraph, k: usize, exclude: &[Asn], rng: &mut SimRng) -> Vec<Asn> {
        let candidates: Vec<Asn> = graph.ases().filter(|a| !exclude.contains(a)).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let k = k.min(candidates.len());
        match self {
            VantageStrategy::Random => {
                let idx = rng.sample_indices(candidates.len(), k);
                let mut out: Vec<Asn> = idx.into_iter().map(|i| candidates[i]).collect();
                out.sort_unstable();
                out
            }
            VantageStrategy::TopDegree => {
                let mut by_degree: Vec<(usize, Asn)> =
                    candidates.iter().map(|a| (graph.degree(*a), *a)).collect();
                // Highest degree first; ASN ascending as tie-break for
                // determinism.
                by_degree.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut out: Vec<Asn> = by_degree.into_iter().take(k).map(|(_, a)| a).collect();
                out.sort_unstable();
                out
            }
            VantageStrategy::Mixed => {
                let half = k / 2;
                let top = VantageStrategy::TopDegree.select(graph, half, exclude, rng);
                let mut exclude2 = exclude.to_vec();
                exclude2.extend(&top);
                let rest = VantageStrategy::Random.select(graph, k - top.len(), &exclude2, rng);
                let mut out = top;
                out.extend(rest);
                out.sort_unstable();
                out
            }
        }
    }
}

/// Partition `vps` into `n` collector groups (round-robin), producing
/// the collector map shape [`crate::StreamFeed`] expects.
pub fn group_into_collectors(
    prefix: &str,
    vps: &[Asn],
    n: usize,
) -> std::collections::BTreeMap<String, Vec<Asn>> {
    let n = n.max(1);
    let mut map: std::collections::BTreeMap<String, Vec<Asn>> = Default::default();
    for (i, vp) in vps.iter().enumerate() {
        map.entry(format!("{prefix}{:02}", i % n))
            .or_default()
            .push(*vp);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_topology::{generate, TopologyConfig};

    fn topo() -> AsGraph {
        let mut rng = SimRng::new(77);
        generate(&TopologyConfig::tiny(), &mut rng).graph
    }

    #[test]
    fn random_selection_respects_k_and_exclude() {
        let g = topo();
        let mut rng = SimRng::new(1);
        let excluded = Asn(1);
        let vps = VantageStrategy::Random.select(&g, 10, &[excluded], &mut rng);
        assert_eq!(vps.len(), 10);
        assert!(!vps.contains(&excluded));
        let dedup: std::collections::BTreeSet<_> = vps.iter().collect();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn top_degree_picks_highest_degrees() {
        let g = topo();
        let mut rng = SimRng::new(1);
        let vps = VantageStrategy::TopDegree.select(&g, 3, &[], &mut rng);
        let min_chosen = vps.iter().map(|a| g.degree(*a)).min().unwrap();
        let max_unchosen = g
            .ases()
            .filter(|a| !vps.contains(a))
            .map(|a| g.degree(a))
            .max()
            .unwrap();
        assert!(min_chosen >= max_unchosen.min(min_chosen));
        // The single best-connected AS must be in the set.
        let best = g
            .ases()
            .max_by_key(|a| (g.degree(*a), u32::MAX - a.value()))
            .unwrap();
        let top1 = g.ases().map(|a| g.degree(a)).max().unwrap();
        assert!(
            vps.iter().any(|v| g.degree(*v) == top1),
            "top-degree AS missing (best={best})"
        );
    }

    #[test]
    fn mixed_combines_both() {
        let g = topo();
        let mut rng = SimRng::new(2);
        let vps = VantageStrategy::Mixed.select(&g, 8, &[], &mut rng);
        assert_eq!(vps.len(), 8);
        let dedup: std::collections::BTreeSet<_> = vps.iter().collect();
        assert_eq!(dedup.len(), 8, "no duplicates between halves");
    }

    #[test]
    fn k_larger_than_population_clamps() {
        let g = topo();
        let mut rng = SimRng::new(3);
        let vps = VantageStrategy::Random.select(&g, 10_000, &[], &mut rng);
        assert_eq!(vps.len(), g.as_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = topo();
        let a = VantageStrategy::Random.select(&g, 5, &[], &mut SimRng::new(9));
        let b = VantageStrategy::Random.select(&g, 5, &[], &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn collector_grouping_round_robins() {
        let vps: Vec<Asn> = (1..=5).map(Asn).collect();
        let map = group_into_collectors("rrc", &vps, 2);
        assert_eq!(map.len(), 2);
        assert_eq!(map["rrc00"], vec![Asn(1), Asn(3), Asn(5)]);
        assert_eq!(map["rrc01"], vec![Asn(2), Asn(4)]);
    }
}
