//! Push-based live streams: the RIS-live and BGPmon flavours.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgp::Asn;
use artemis_bgpsim::RouteChange;
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// A streaming collector network (RIS-live or BGPmon flavour).
///
/// Each named collector peers with a set of vantage ASes. When a
/// vantage AS's best route changes, the collector receives the update
/// on its session and the streaming pipeline delivers it to
/// subscribers after `export_delay`.
pub struct StreamFeed {
    kind: FeedKind,
    name: String,
    /// collector name -> peers
    collectors: BTreeMap<String, Vec<Asn>>,
    export_delay: LatencyModel,
    /// Events dropped by an (optional) outage window.
    outage: Option<(SimTime, SimTime)>,
    emitted: u64,
    /// Observations swallowed by the outage window (one per vantage
    /// session that would have produced an event).
    dropped: u64,
}

impl StreamFeed {
    /// A RIS-live flavoured stream. `export_delay` defaults to a
    /// lognormal with median 8 s (σ = 0.6) — a live pipeline that is
    /// usually seconds but occasionally tens of seconds, matching the
    /// 2016-era RIS streaming service the paper used.
    pub fn ris_live(collectors: BTreeMap<String, Vec<Asn>>) -> Self {
        StreamFeed {
            kind: FeedKind::RisLive,
            name: "ris-live".into(),
            collectors,
            export_delay: LatencyModel::LogNormal {
                median: SimDuration::from_secs(8),
                sigma: 0.6,
            },
            outage: None,
            emitted: 0,
            dropped: 0,
        }
    }

    /// A BGPmon flavoured stream (independent peer set, slightly slower
    /// pipeline: lognormal median 15 s).
    pub fn bgpmon(collectors: BTreeMap<String, Vec<Asn>>) -> Self {
        StreamFeed {
            kind: FeedKind::BgpMon,
            name: "bgpmon".into(),
            collectors,
            export_delay: LatencyModel::LogNormal {
                median: SimDuration::from_secs(15),
                sigma: 0.5,
            },
            outage: None,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Override the export-delay model.
    pub fn with_export_delay(mut self, model: LatencyModel) -> Self {
        self.export_delay = model;
        self
    }

    /// Simulate a feed outage: events observed within `[from, to)` are
    /// lost (never delivered). Used by fault-injection tests.
    pub fn with_outage(mut self, from: SimTime, to: SimTime) -> Self {
        self.outage = Some((from, to));
        self
    }

    /// Vantage ASes across all collectors (deduplicated).
    pub fn vantage_points(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.collectors.values().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Render the RIS-live JSON payload for an event (schema mirrors
    /// the real `ris_message` envelope).
    fn render_raw(&self, ev: &FeedEvent) -> Option<String> {
        if self.kind != FeedKind::RisLive {
            return None;
        }
        let path: Vec<u32> = ev
            .as_path
            .as_ref()
            .map(|p| p.iter().map(|a| a.value()).collect())
            .unwrap_or_default();
        let msg = serde_json::json!({
            "type": "ris_message",
            "data": {
                "timestamp": ev.emitted_at.as_secs_f64(),
                "host": ev.collector,
                "peer_asn": ev.vantage.value().to_string(),
                "type": "UPDATE",
                "path": path,
                "announcements": if ev.as_path.is_some() {
                    serde_json::json!([{ "prefixes": [ev.prefix.to_string()] }])
                } else {
                    serde_json::json!([])
                },
                "withdrawals": if ev.as_path.is_none() {
                    serde_json::json!([ev.prefix.to_string()])
                } else {
                    serde_json::json!([])
                },
            }
        });
        Some(msg.to_string())
    }
}

impl FeedSource for StreamFeed {
    fn kind(&self) -> FeedKind {
        self.kind
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        change: &RouteChange,
        rng: &mut SimRng,
        out: &mut Vec<FeedEvent>,
    ) {
        if let Some((from, to)) = self.outage {
            if change.time >= from && change.time < to {
                // Count what the outage swallowed: one observation per
                // vantage session that would have produced an event.
                self.dropped += self
                    .collectors
                    .values()
                    .filter(|peers| peers.contains(&change.asn))
                    .count() as u64;
                return;
            }
        }
        for (collector, peers) in &self.collectors {
            if !peers.contains(&change.asn) {
                continue;
            }
            let delay = self.export_delay.sample(rng);
            let (as_path, origin_as) = match &change.new {
                Some(best) => (Some(best.as_path.prepend(change.asn)), Some(best.origin_as)),
                None => (None, None),
            };
            let mut ev = FeedEvent {
                emitted_at: change.time + delay,
                observed_at: change.time,
                source: self.kind,
                collector: collector.clone(),
                vantage: change.asn,
                prefix: change.prefix,
                as_path,
                origin_as,
                raw: None,
            };
            ev.raw = self.render_raw(&ev);
            out.push(ev);
            self.emitted += 1;
        }
    }

    fn next_poll(&self, _now: SimTime) -> Option<SimTime> {
        None // purely push-based
    }

    fn poll(&mut self, _at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        Vec::new()
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn dropped_events(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::AsPath;
    use artemis_bgpsim::BestRoute;
    use std::str::FromStr;

    fn change(asn: u32, t: u64) -> RouteChange {
        RouteChange {
            time: SimTime::from_secs(t),
            asn: Asn(asn),
            prefix: artemis_bgp::Prefix::from_str("10.0.0.0/23").unwrap(),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, 65001]),
                origin_as: Asn(65001),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    fn collectors() -> BTreeMap<String, Vec<Asn>> {
        let mut m = BTreeMap::new();
        m.insert("rrc00".to_string(), vec![Asn(174), Asn(3356)]);
        m.insert("rrc01".to_string(), vec![Asn(174), Asn(2914)]);
        m
    }

    #[test]
    fn only_vantage_changes_produce_events() {
        let mut feed = StreamFeed::ris_live(collectors());
        let mut rng = SimRng::new(1);
        assert!(feed.on_route_change(&change(9999, 10), &mut rng).is_empty());
        let evs = feed.on_route_change(&change(174, 10), &mut rng);
        assert_eq!(evs.len(), 2, "AS174 peers with both collectors");
        assert_eq!(feed.events_emitted(), 2);
    }

    #[test]
    fn events_carry_prepended_path_and_delay() {
        let mut feed =
            StreamFeed::ris_live(collectors()).with_export_delay(LatencyModel::const_secs(5));
        let mut rng = SimRng::new(1);
        let evs = feed.on_route_change(&change(3356, 100), &mut rng);
        assert_eq!(evs.len(), 1);
        let ev = &evs[0];
        assert_eq!(ev.emitted_at, SimTime::from_secs(105));
        assert_eq!(ev.observed_at, SimTime::from_secs(100));
        assert_eq!(
            ev.as_path.as_ref().unwrap().to_string(),
            "3356 3356 65001",
            "vantage AS must be prepended"
        );
        assert_eq!(ev.origin_as, Some(Asn(65001)));
    }

    #[test]
    fn ris_raw_payload_is_valid_json() {
        let mut feed = StreamFeed::ris_live(collectors());
        let mut rng = SimRng::new(1);
        let evs = feed.on_route_change(&change(174, 1), &mut rng);
        let raw = evs[0].raw.as_ref().expect("ris-live has raw payload");
        let v: serde_json::Value = serde_json::from_str(raw).unwrap();
        assert_eq!(v["type"], "ris_message");
        assert_eq!(v["data"]["peer_asn"], "174");
        assert_eq!(v["data"]["announcements"][0]["prefixes"][0], "10.0.0.0/23");
    }

    #[test]
    fn bgpmon_has_no_raw_payload() {
        let mut feed = StreamFeed::bgpmon(collectors());
        let mut rng = SimRng::new(1);
        let evs = feed.on_route_change(&change(174, 1), &mut rng);
        assert!(evs[0].raw.is_none());
        assert_eq!(evs[0].source, FeedKind::BgpMon);
    }

    #[test]
    fn withdrawals_map_to_pathless_events() {
        let mut feed = StreamFeed::ris_live(collectors());
        let mut rng = SimRng::new(1);
        let mut c = change(174, 1);
        c.new = None;
        let evs = feed.on_route_change(&c, &mut rng);
        assert!(evs[0].is_withdrawal());
        let raw: serde_json::Value = serde_json::from_str(evs[0].raw.as_ref().unwrap()).unwrap();
        assert_eq!(raw["data"]["withdrawals"][0], "10.0.0.0/23");
    }

    #[test]
    fn outage_swallows_events() {
        let mut feed = StreamFeed::ris_live(collectors())
            .with_outage(SimTime::from_secs(5), SimTime::from_secs(15));
        let mut rng = SimRng::new(1);
        assert!(feed.on_route_change(&change(174, 10), &mut rng).is_empty());
        assert!(!feed.on_route_change(&change(174, 20), &mut rng).is_empty());
    }

    #[test]
    fn outage_boundaries_are_exact() {
        // Window is [from, to): the first instant is dark, the end
        // instant is already live again.
        let from = SimTime::from_secs(5);
        let to = SimTime::from_secs(15);
        let mut feed = StreamFeed::ris_live(collectors()).with_outage(from, to);
        let mut rng = SimRng::new(1);
        assert!(
            !feed.on_route_change(&change(174, 4), &mut rng).is_empty(),
            "instant before the window is delivered"
        );
        assert!(
            feed.on_route_change(&change(174, 5), &mut rng).is_empty(),
            "window start is inclusive: dropped"
        );
        assert!(
            feed.on_route_change(&change(174, 14), &mut rng).is_empty(),
            "interior instant is dropped"
        );
        assert!(
            !feed.on_route_change(&change(174, 15), &mut rng).is_empty(),
            "window end is exclusive: delivered"
        );
    }

    #[test]
    fn outage_accounting_matches_delivered_events() {
        let mut feed = StreamFeed::ris_live(collectors())
            .with_outage(SimTime::from_secs(10), SimTime::from_secs(20));
        let mut rng = SimRng::new(1);
        // AS174 peers with both collectors (2 events per change), AS3356
        // with one. Outside: t=5 (2) and t=25 (1). Inside: t=12 (2) and
        // t=15 (1).
        let mut delivered = 0;
        for (asn, t) in [(174, 5), (174, 12), (3356, 15), (3356, 25)] {
            delivered += feed.on_route_change(&change(asn, t), &mut rng).len();
        }
        assert_eq!(delivered, 3);
        assert_eq!(
            feed.events_emitted(),
            3,
            "emitted counts only delivered events"
        );
        assert_eq!(
            feed.dropped_events(),
            3,
            "dropped counts per swallowed vantage session"
        );
        // A non-vantage change during the outage is not an outage drop —
        // no session would have produced an event.
        assert!(feed.on_route_change(&change(9999, 12), &mut rng).is_empty());
        assert_eq!(feed.dropped_events(), 3);
    }

    #[test]
    fn vantage_points_deduplicated() {
        let feed = StreamFeed::ris_live(collectors());
        assert_eq!(feed.vantage_points(), vec![Asn(174), Asn(2914), Asn(3356)]);
    }
}
