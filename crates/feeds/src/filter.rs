//! Pre-heap feed filtering: decide whether an event is interesting
//! *before* it costs a [`crate::FeedHub`] slab slot.
//!
//! A [`FeedFilter`] is a serializable conjunction of predicate
//! dimensions (prefix, origin, vantage/peer, time window). Within a
//! dimension the listed values are alternatives (OR); across
//! dimensions all constraints must hold (AND); an empty dimension is a
//! wildcard. The hub evaluates an attached feed's filter at the
//! enqueue boundary ([`crate::FeedHub::set_feed_filter`]) and a
//! [`crate::BmpLiveFeed`] additionally evaluates it on the socket
//! reader thread, so rejected updates never even enter the
//! backpressure ring. Rejections are counted as `dropped_events` in
//! [`crate::FeedLag`] — filtered load is shed load, and operators
//! should see it.

#![deny(missing_docs)]

use crate::event::FeedEvent;
use artemis_bgp::{Asn, Prefix};
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// A serializable event predicate, evaluated pre-heap.
///
/// The default value ([`FeedFilter::any`]) matches everything.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedFilter {
    /// Keep events whose prefix overlaps one of these (either
    /// direction: a sub-prefix hijack announces a *more specific* of a
    /// watched prefix, so covering and covered prefixes both match).
    /// Empty = any prefix.
    pub prefixes: Vec<Prefix>,
    /// Keep events whose origin AS is one of these. Withdrawals have
    /// no origin and pass this dimension. Empty = any origin.
    pub origins: Vec<Asn>,
    /// Keep events observed by one of these vantage/peer ASes.
    /// Empty = any vantage.
    pub vantages: Vec<Asn>,
    /// Keep events whose `observed_at` lies in `[start, end)`.
    /// `None` = any time.
    pub window: Option<(SimTime, SimTime)>,
}

impl FeedFilter {
    /// The match-everything filter.
    pub fn any() -> Self {
        FeedFilter::default()
    }

    /// Add a prefix alternative (overlap match, see [`FeedFilter::prefixes`]).
    pub fn prefix(mut self, p: Prefix) -> Self {
        self.prefixes.push(p);
        self
    }

    /// Add an origin-AS alternative.
    pub fn origin(mut self, asn: Asn) -> Self {
        self.origins.push(asn);
        self
    }

    /// Add a vantage-AS alternative.
    pub fn vantage(mut self, asn: Asn) -> Self {
        self.vantages.push(asn);
        self
    }

    /// Restrict to events observed within `[start, end)`.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.window = Some((start, end));
        self
    }

    /// True when every configured dimension is a wildcard.
    pub fn matches_everything(&self) -> bool {
        self.prefixes.is_empty()
            && self.origins.is_empty()
            && self.vantages.is_empty()
            && self.window.is_none()
    }

    /// Evaluate the predicate against one event.
    pub fn matches(&self, ev: &FeedEvent) -> bool {
        if !self.prefixes.is_empty() && !self.prefixes.iter().any(|p| p.overlaps(ev.prefix)) {
            return false;
        }
        if !self.origins.is_empty() {
            // Withdrawals carry no origin: they pass, because a
            // withdrawal of a watched route is always interesting.
            if let Some(origin) = ev.origin_as {
                if !self.origins.contains(&origin) {
                    return false;
                }
            }
        }
        if !self.vantages.is_empty() && !self.vantages.contains(&ev.vantage) {
            return false;
        }
        if let Some((start, end)) = self.window {
            if ev.observed_at < start || ev.observed_at >= end {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FeedKind;
    use artemis_bgp::AsPath;
    use std::str::FromStr;

    fn event(prefix: &str, origin: Option<u32>, vantage: u32, observed_secs: u64) -> FeedEvent {
        FeedEvent {
            emitted_at: SimTime::from_secs(observed_secs + 1),
            observed_at: SimTime::from_secs(observed_secs),
            source: FeedKind::BmpLive,
            collector: "bmp0".into(),
            vantage: Asn(vantage),
            prefix: Prefix::from_str(prefix).unwrap(),
            as_path: origin.map(|o| AsPath::from_sequence([vantage, o])),
            origin_as: origin.map(Asn),
            raw: None,
        }
    }

    #[test]
    fn default_matches_everything() {
        let f = FeedFilter::any();
        assert!(f.matches_everything());
        assert!(f.matches(&event("10.0.0.0/24", Some(666), 174, 5)));
        assert!(f.matches(&event("203.0.113.0/24", None, 1, 0)));
    }

    #[test]
    fn prefix_dimension_matches_overlap_both_directions() {
        let f = FeedFilter::any().prefix(Prefix::from_str("10.0.0.0/23").unwrap());
        // Exact, more-specific (the hijack case), and covering all match.
        assert!(f.matches(&event("10.0.0.0/23", Some(1), 174, 0)));
        assert!(f.matches(&event("10.0.0.0/24", Some(1), 174, 0)));
        assert!(f.matches(&event("10.0.0.0/8", Some(1), 174, 0)));
        // Disjoint does not.
        assert!(!f.matches(&event("10.0.2.0/24", Some(1), 174, 0)));
        assert!(!f.matches(&event("192.0.2.0/24", Some(1), 174, 0)));
    }

    #[test]
    fn dimensions_are_anded_alternatives_are_ored() {
        let f = FeedFilter::any()
            .prefix(Prefix::from_str("10.0.0.0/23").unwrap())
            .origin(Asn(65001))
            .origin(Asn(666))
            .vantage(Asn(174));
        assert!(f.matches(&event("10.0.0.0/24", Some(666), 174, 0)));
        assert!(f.matches(&event("10.0.0.0/24", Some(65001), 174, 0)));
        assert!(
            !f.matches(&event("10.0.0.0/24", Some(65001), 3356, 0)),
            "wrong vantage"
        );
        assert!(
            !f.matches(&event("10.0.0.0/24", Some(7), 174, 0)),
            "wrong origin"
        );
        assert!(
            !f.matches(&event("172.16.0.0/24", Some(666), 174, 0)),
            "wrong prefix"
        );
    }

    #[test]
    fn withdrawals_pass_the_origin_dimension() {
        let f = FeedFilter::any().origin(Asn(65001));
        assert!(f.matches(&event("10.0.0.0/24", None, 174, 0)));
    }

    #[test]
    fn window_is_half_open_on_observed_at() {
        let f = FeedFilter::any().window(SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!f.matches(&event("10.0.0.0/24", Some(1), 174, 9)));
        assert!(
            f.matches(&event("10.0.0.0/24", Some(1), 174, 10)),
            "start inclusive"
        );
        assert!(f.matches(&event("10.0.0.0/24", Some(1), 174, 19)));
        assert!(
            !f.matches(&event("10.0.0.0/24", Some(1), 174, 20)),
            "end exclusive"
        );
    }

    #[test]
    fn filters_round_trip_through_json() {
        let f = FeedFilter::any()
            .prefix(Prefix::from_str("10.0.0.0/23").unwrap())
            .origin(Asn(65001))
            .window(SimTime::from_secs(1), SimTime::from_secs(2));
        let json = serde_json::to_string(&f).unwrap();
        let back: FeedFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        let wild: FeedFilter =
            serde_json::from_str(&serde_json::to_string(&FeedFilter::any()).unwrap()).unwrap();
        assert!(wild.matches_everything());
    }
}
