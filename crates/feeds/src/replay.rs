//! Replay of real MRT archive bytes into the detection pipeline.
//!
//! The write side ([`crate::ArchiveUpdatesFeed`], [`crate::ArchiveRibFeed`])
//! produces genuine RFC 6396 bytes; this module closes the loop by
//! parsing archives *back* into timestamped [`FeedEvent`]s, so the
//! full pipeline — detection, monitoring, mitigation — runs unchanged
//! on replayed RouteViews/RIS-style data.
//!
//! ARTEMIS's core latency argument (paper §1) is that these archives
//! are **slow**: an update only becomes visible when its 15-minute
//! batch is published, a RIB snapshot only every ~2 hours. The replay
//! feed makes that claim measurable end-to-end: every replayed event
//! carries the batch-delayed `emitted_at` the archive pipeline would
//! have produced, so detection instants on a replayed archive are the
//! paper's baseline numbers — minutes, not the seconds of the
//! streaming feeds.
//!
//! Parsing uses the zero-copy [`MrtScanner`] fast path and surfaces
//! per-record failures as [`MrtDiagnostic`]s instead of aborting: one
//! corrupt record in a multi-gigabyte archive costs one diagnostic,
//! not the whole replay.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgp::{Asn, BgpMessage, Prefix};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_mrt::{MrtDiagnostic, MrtError, MrtRecord, MrtScanner, PeerEntry, PeerIndexTable};
use artemis_simnet::{SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Convert an MRT `(seconds, microseconds)` pair back into simulation
/// time (the writers store observation instants at full precision).
fn mrt_instant(timestamp: u32, microseconds: Option<u32>) -> SimTime {
    SimTime::from_micros(timestamp as u64 * 1_000_000 + microseconds.unwrap_or(0) as u64)
}

/// A `TABLE_DUMP_V2` snapshot loaded back from MRT bytes: the
/// bootstrap routing state a replay starts from, usable anywhere a
/// [`RibView`] is expected (pull feeds, forensics queries).
///
/// The snapshot resolves each RIB entry's vantage through the
/// `PEER_INDEX_TABLE`, and undoes the collector-session prepend (the
/// writers record the path *as exported to the collector*, i.e. with
/// the peer AS in front) to recover each peer's own Loc-RIB path.
pub struct MrtRibSnapshot {
    timestamp: SimTime,
    peers: Vec<PeerEntry>,
    ribs: BTreeMap<Asn, Vec<(Prefix, BestRoute)>>,
    diagnostics: Vec<MrtDiagnostic>,
    routes: usize,
}

impl MrtRibSnapshot {
    /// Load a snapshot from raw `TABLE_DUMP_V2` bytes. Records that
    /// fail to decode (or RIB entries referencing unknown peer
    /// indices) become [`MrtDiagnostic`]s; everything else loads.
    pub fn load(bytes: &[u8]) -> Self {
        let mut snap = MrtRibSnapshot {
            timestamp: SimTime::ZERO,
            peers: Vec::new(),
            ribs: BTreeMap::new(),
            diagnostics: Vec::new(),
            routes: 0,
        };
        let mut table: Option<PeerIndexTable> = None;
        let mut scanner = MrtScanner::new(bytes);
        loop {
            let raw = match scanner.next_raw() {
                Ok(Some(raw)) => raw,
                Ok(None) => break,
                Err(error) => {
                    // Header-level corruption: no boundary to resync to.
                    snap.diagnostics.push(MrtDiagnostic {
                        offset: scanner.offset(),
                        timestamp: 0,
                        mrt_type: 0,
                        subtype: 0,
                        error,
                    });
                    break;
                }
            };
            if !raw.is_table_dump() {
                continue; // interleaved update records: not snapshot state
            }
            match raw.decode() {
                Ok(MrtRecord::PeerIndex {
                    timestamp,
                    table: t,
                }) => {
                    snap.timestamp = mrt_instant(timestamp, None);
                    snap.peers = t.peers.clone();
                    table = Some(t);
                }
                Ok(MrtRecord::Rib { timestamp, rib }) => {
                    snap.timestamp = snap.timestamp.max(mrt_instant(timestamp, None));
                    let Some(table) = &table else {
                        snap.diagnostics.push(
                            raw.diagnostic(MrtError::Malformed(
                                "RIB record before PEER_INDEX_TABLE",
                            )),
                        );
                        continue;
                    };
                    for entry in &rib.entries {
                        let Some(peer) = table.peers.get(entry.peer_index as usize) else {
                            snap.diagnostics.push(raw.diagnostic(MrtError::Malformed(
                                "RIB entry peer index out of range",
                            )));
                            continue;
                        };
                        let vantage = peer.asn;
                        // Undo the collector-session prepend.
                        let exported = &entry.attrs.as_path;
                        let asns: Vec<Asn> = exported.iter().collect();
                        let loc_rib_path: Vec<Asn> = match asns.split_first() {
                            Some((first, rest)) if *first == vantage => rest.to_vec(),
                            _ => asns,
                        };
                        let Some(origin_as) = exported.origin() else {
                            snap.diagnostics.push(
                                raw.diagnostic(MrtError::Malformed("RIB entry with empty AS path")),
                            );
                            continue;
                        };
                        let best = BestRoute {
                            neighbor: loc_rib_path.first().copied(),
                            as_path: artemis_bgp::AsPath::from_sequence(
                                loc_rib_path.iter().map(|a| a.value()),
                            ),
                            origin_as,
                            learned_from: None, // relationships are not archived
                            local_pref: entry.attrs.effective_local_pref(),
                        };
                        snap.ribs
                            .entry(vantage)
                            .or_default()
                            .push((rib.prefix, best));
                        snap.routes += 1;
                    }
                }
                Ok(MrtRecord::Bgp4mp { .. }) => {}
                Err(error) => snap.diagnostics.push(raw.diagnostic(error)),
            }
        }
        snap
    }

    /// The snapshot instant (latest record timestamp).
    pub fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    /// Peers from the `PEER_INDEX_TABLE`.
    pub fn peers(&self) -> &[PeerEntry] {
        &self.peers
    }

    /// Routes loaded across all peers.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Per-record load failures.
    pub fn diagnostics(&self) -> &[MrtDiagnostic] {
        &self.diagnostics
    }
}

impl RibView for MrtRibSnapshot {
    fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<BestRoute> {
        self.ribs
            .get(&asn)?
            .iter()
            .find(|(p, _)| *p == prefix)
            .map(|(_, b)| b.clone())
    }

    fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
        self.ribs.get(&asn).cloned().unwrap_or_default()
    }
}

/// Replays `BGP4MP` update records out of raw MRT bytes as a
/// [`FeedSource`].
///
/// Each record's observation instant is reconstructed from the MRT
/// timestamp (seconds + extended microseconds), its vantage from the
/// record's peer metadata, and its `emitted_at` from the configured
/// **batch window**: with [`MrtReplayFeed::route_views`] parameters a
/// route observed at *t* only reaches the detector at the end of its
/// 15-minute batch plus the publish delay — exactly the archive
/// latency the paper's §1 measurement shows dominating pre-ARTEMIS
/// detection. Replaying the same archive through a [`crate::FeedHub`]
/// therefore reproduces the original [`crate::ArchiveUpdatesFeed`]
/// detection timeline instant-for-instant (round-trip property,
/// verified in `crates/feeds/tests/mrt_replay.rs`).
///
/// With a zero batch window ([`MrtReplayFeed::from_mrt_bytes`]) the
/// feed replays at observation instants instead — the forensics mode:
/// "what would ARTEMIS have seen live?".
pub struct MrtReplayFeed {
    name: String,
    batch_period: SimDuration,
    publish_delay: SimDuration,
    /// Events in emission order, ready to be polled out.
    queue: VecDeque<FeedEvent>,
    diagnostics: Vec<MrtDiagnostic>,
    records_replayed: u64,
    records_skipped: u64,
    emitted: u64,
    polls: u64,
}

impl MrtReplayFeed {
    /// Replay `bytes` with **no** added archive latency: events are
    /// emitted at their recorded observation instants.
    pub fn from_mrt_bytes(bytes: &[u8]) -> Self {
        let mut feed = MrtReplayFeed {
            name: "mrt-replay".into(),
            batch_period: SimDuration::ZERO,
            publish_delay: SimDuration::ZERO,
            queue: VecDeque::new(),
            diagnostics: Vec::new(),
            records_replayed: 0,
            records_skipped: 0,
            emitted: 0,
            polls: 0,
        };
        feed.ingest_archive(bytes);
        feed.reschedule();
        feed
    }

    /// Replay with RouteViews-style latency: 15-minute batches plus a
    /// 60 s publish delay (the [`crate::ArchiveUpdatesFeed`] defaults,
    /// so a written archive round-trips onto its original timeline).
    pub fn route_views(bytes: &[u8]) -> Self {
        Self::from_mrt_bytes(bytes)
            .with_batch_window(SimDuration::from_mins(15), SimDuration::from_secs(60))
    }

    /// Override the batch window; every queued event's emission instant
    /// is recomputed from its observation instant.
    pub fn with_batch_window(mut self, period: SimDuration, publish_delay: SimDuration) -> Self {
        self.batch_period = period;
        self.publish_delay = publish_delay;
        self.reschedule();
        self
    }

    /// Prepend bootstrap state from a `TABLE_DUMP_V2` snapshot: every
    /// route in the snapshot becomes one event emitted at the snapshot
    /// instant, seeding detector and monitors with the pre-replay
    /// routing table before the first update record plays.
    pub fn with_rib_bootstrap(mut self, snapshot: &MrtRibSnapshot) -> Self {
        let at = snapshot.timestamp();
        // Iterate the per-ASN route map, not the peer rows: a real
        // PEER_INDEX_TABLE lists the same AS once per session (v4 and
        // v6), and per-row iteration would queue those routes twice.
        for (&vantage, routes) in &snapshot.ribs {
            for (prefix, best) in routes {
                let path = best.as_path.prepend(vantage);
                self.queue.push_back(FeedEvent {
                    emitted_at: at,
                    observed_at: at,
                    source: FeedKind::MrtReplay,
                    collector: self.name.clone(),
                    vantage,
                    prefix: *prefix,
                    origin_as: Some(best.origin_as),
                    as_path: Some(path),
                    raw: None,
                });
                self.records_replayed += 1;
            }
        }
        self.diagnostics.extend_from_slice(snapshot.diagnostics());
        self.sort_queue();
        self
    }

    /// Rename the feed instance (collector field of replayed events).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        for ev in &mut self.queue {
            ev.collector = self.name.clone();
        }
        self
    }

    /// Events parsed and still awaiting emission.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Records successfully replayed.
    pub fn records_replayed(&self) -> u64 {
        self.records_replayed
    }

    /// Records skipped over (see [`MrtReplayFeed::diagnostics`]).
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// Per-record parse failures encountered while ingesting.
    pub fn diagnostics(&self) -> &[MrtDiagnostic] {
        &self.diagnostics
    }

    /// The archive-pipeline publication instant for a route observed
    /// at `observed` (mirrors `ArchiveUpdatesFeed::batch_end`).
    fn batch_end(&self, observed: SimTime) -> SimTime {
        if self.batch_period == SimDuration::ZERO {
            return observed + self.publish_delay;
        }
        let period = self.batch_period.as_micros().max(1);
        let idx = observed.as_micros() / period;
        SimTime::from_micros((idx + 1) * period) + self.publish_delay
    }

    /// Recompute every queued event's emission instant from its
    /// observation instant under the current batch window, then
    /// restore emission order.
    fn reschedule(&mut self) {
        let mut events = std::mem::take(&mut self.queue);
        for ev in &mut events {
            ev.emitted_at = self.batch_end(ev.observed_at);
        }
        self.queue = events;
        self.sort_queue();
    }

    /// Stable-sort the queue by emission instant (ties keep archive
    /// order, matching the hub's ingestion-sequence tie-break).
    fn sort_queue(&mut self) {
        self.queue.make_contiguous().sort_by_key(|ev| ev.emitted_at);
    }

    /// Stream the archive through the zero-copy scanner, converting
    /// `BGP4MP` update records into feed events and collecting
    /// diagnostics for anything that fails to decode.
    fn ingest_archive(&mut self, bytes: &[u8]) {
        let mut scanner = MrtScanner::new(bytes);
        loop {
            let raw = match scanner.next_raw() {
                Ok(Some(raw)) => raw,
                Ok(None) => break,
                Err(error) => {
                    // Corrupt common header: no next boundary exists.
                    self.diagnostics.push(MrtDiagnostic {
                        offset: scanner.offset(),
                        timestamp: 0,
                        mrt_type: 0,
                        subtype: 0,
                        error,
                    });
                    self.records_skipped += 1;
                    break;
                }
            };
            if !raw.is_bgp4mp() {
                continue; // snapshot records: MrtRibSnapshot territory
            }
            let decoded = match raw.decode() {
                Ok(rec) => rec,
                Err(error) => {
                    self.diagnostics.push(raw.diagnostic(error));
                    self.records_skipped += 1;
                    continue;
                }
            };
            let MrtRecord::Bgp4mp {
                timestamp,
                microseconds,
                message,
            } = decoded
            else {
                continue;
            };
            let BgpMessage::Update(update) = &message.message else {
                self.records_replayed += 1; // OPEN/KEEPALIVE: no routes
                continue;
            };
            let observed = mrt_instant(timestamp, microseconds);
            for prefix in &update.withdrawn {
                self.queue.push_back(FeedEvent {
                    emitted_at: observed, // scheduled later
                    observed_at: observed,
                    source: FeedKind::MrtReplay,
                    collector: self.name.clone(),
                    vantage: message.peer_as,
                    prefix: *prefix,
                    as_path: None,
                    origin_as: None,
                    raw: None,
                });
            }
            if let Some(attrs) = &update.attrs {
                for prefix in &update.nlri {
                    self.queue.push_back(FeedEvent {
                        emitted_at: observed,
                        observed_at: observed,
                        source: FeedKind::MrtReplay,
                        collector: self.name.clone(),
                        vantage: message.peer_as,
                        prefix: *prefix,
                        as_path: Some(attrs.as_path.clone()),
                        origin_as: attrs.as_path.origin(),
                        raw: None,
                    });
                }
            }
            self.records_replayed += 1;
        }
    }
}

impl FeedSource for MrtReplayFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::MrtReplay
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        _change: &RouteChange,
        _rng: &mut SimRng,
        _out: &mut Vec<FeedEvent>,
    ) {
        // Replay is archive-driven: live routing changes are ignored.
    }

    fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        self.queue.front().map(|ev| ev.emitted_at.max(now))
    }

    fn poll(&mut self, at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        while self.queue.front().is_some_and(|ev| ev.emitted_at <= at) {
            out.push(self.queue.pop_front().expect("checked non-empty"));
        }
        if !out.is_empty() {
            self.polls += 1;
        }
        self.emitted += out.len() as u64;
        out
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn polls_executed(&self) -> u64 {
        self.polls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{ArchiveRibFeed, ArchiveUpdatesFeed};
    use artemis_bgp::AsPath;
    use artemis_bgpsim::BestRoute;
    use artemis_topology::RelKind;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn change(asn: u32, t_micros: u64, origin: u32) -> RouteChange {
        RouteChange {
            time: SimTime::from_micros(t_micros),
            asn: Asn(asn),
            prefix: pfx("10.0.0.0/23"),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, origin]),
                origin_as: Asn(origin),
                neighbor: Some(Asn(3356)),
                learned_from: Some(RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    fn archive_bytes(changes: &[RouteChange]) -> Vec<u8> {
        let mut feed = ArchiveUpdatesFeed::route_views(vec![Asn(174), Asn(2914)]);
        let mut rng = SimRng::new(1);
        for c in changes {
            feed.on_route_change(c, &mut rng);
        }
        feed.mrt_bytes().to_vec()
    }

    #[test]
    fn replay_reconstructs_observations_exactly() {
        let changes = [
            change(174, 100_000_123, 65001),
            change(2914, 250_500_000, 65001),
        ];
        let bytes = archive_bytes(&changes);
        let feed = MrtReplayFeed::from_mrt_bytes(&bytes);
        assert_eq!(feed.records_replayed(), 2);
        assert_eq!(feed.records_skipped(), 0);
        assert!(feed.diagnostics().is_empty());
        assert_eq!(feed.pending_events(), 2);

        let mut feed = feed;
        let mut rng = SimRng::new(9);
        let view = MrtRibSnapshot::load(&[]);
        let events = feed.poll(SimTime::from_secs(10_000), &view, &mut rng);
        assert_eq!(events.len(), 2);
        // Microsecond-precise observation instants survive the bytes.
        assert_eq!(events[0].observed_at, SimTime::from_micros(100_000_123));
        assert_eq!(events[0].vantage, Asn(174));
        assert_eq!(events[0].prefix, pfx("10.0.0.0/23"));
        assert_eq!(events[0].origin_as, Some(Asn(65001)));
        // Path as exported to the collector: vantage prepended.
        assert_eq!(
            events[0].as_path,
            Some(AsPath::from_sequence([174u32, 3356, 65001]))
        );
        // Zero batch window: emission == observation.
        assert_eq!(events[0].emitted_at, events[0].observed_at);
    }

    #[test]
    fn route_views_window_matches_archive_feed_timeline() {
        // Same arithmetic as ArchiveUpdatesFeed::route_views: a route
        // observed at t=100 s lands at the 15-min batch end + 60 s.
        let changes = [change(174, 100_000_000, 65001)];
        let bytes = archive_bytes(&changes);
        let mut replay = MrtReplayFeed::route_views(&bytes);
        assert_eq!(
            replay.next_poll(SimTime::ZERO),
            Some(SimTime::from_secs(960))
        );
        let mut rng = SimRng::new(9);
        let view = MrtRibSnapshot::load(&[]);
        let events = replay.poll(SimTime::from_secs(960), &view, &mut rng);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].emitted_at, SimTime::from_secs(960));
        assert_eq!(events[0].observed_at, SimTime::from_secs(100));
    }

    #[test]
    fn withdrawals_replay_as_withdrawals() {
        let mut c = change(174, 50_000_000, 65001);
        c.new = None;
        let bytes = archive_bytes(&[c]);
        let mut replay = MrtReplayFeed::from_mrt_bytes(&bytes);
        let mut rng = SimRng::new(9);
        let view = MrtRibSnapshot::load(&[]);
        let events = replay.poll(SimTime::from_secs(10_000), &view, &mut rng);
        assert_eq!(events.len(), 1);
        assert!(events[0].is_withdrawal());
        assert_eq!(events[0].origin_as, None);
    }

    #[test]
    fn corrupt_record_becomes_diagnostic_not_abort() {
        let changes = [
            change(174, 10_000_000, 65001),
            change(174, 20_000_000, 65001),
            change(174, 30_000_000, 65001),
        ];
        let mut bytes = archive_bytes(&changes);
        let record_len = bytes.len() / 3;
        // Clobber the middle record's AFI field (12-byte header + 4 µs
        // field + 10 bytes into the BGP4MP body).
        bytes[record_len + 12 + 4 + 10] = 0xff;
        bytes[record_len + 12 + 4 + 11] = 0xff;
        let replay = MrtReplayFeed::from_mrt_bytes(&bytes);
        assert_eq!(replay.records_replayed(), 2);
        assert_eq!(replay.records_skipped(), 1);
        assert_eq!(replay.diagnostics().len(), 1);
        assert_eq!(replay.diagnostics()[0].offset, record_len);
        assert_eq!(replay.pending_events(), 2);
    }

    #[test]
    fn polls_drain_in_emission_order() {
        let changes = [
            change(174, 1_000_000_000, 65001), // second batch
            change(2914, 100_000_000, 65001),  // first batch
        ];
        let bytes = archive_bytes(&changes);
        let mut replay = MrtReplayFeed::route_views(&bytes);
        let mut rng = SimRng::new(9);
        let view = MrtRibSnapshot::load(&[]);
        let first_due = replay.next_poll(SimTime::ZERO).unwrap();
        let batch1 = replay.poll(first_due, &view, &mut rng);
        assert_eq!(batch1.len(), 1);
        assert_eq!(batch1[0].vantage, Asn(2914));
        let second_due = replay.next_poll(first_due).unwrap();
        assert!(second_due > first_due);
        let batch2 = replay.poll(second_due, &view, &mut rng);
        assert_eq!(batch2[0].vantage, Asn(174));
        assert_eq!(replay.events_emitted(), 2);
        assert_eq!(replay.polls_executed(), 2);
    }

    fn fake_view() -> impl RibView {
        struct V;
        impl RibView for V {
            fn best_route(&self, _asn: Asn, _prefix: Prefix) -> Option<BestRoute> {
                None
            }
            fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
                if asn == Asn(174) {
                    vec![(
                        pfx("10.0.0.0/23"),
                        BestRoute {
                            as_path: AsPath::from_sequence([3356u32, 65001]),
                            origin_as: Asn(65001),
                            neighbor: Some(Asn(3356)),
                            learned_from: Some(RelKind::Provider),
                            local_pref: 100,
                        },
                    )]
                } else {
                    Vec::new()
                }
            }
        }
        V
    }

    #[test]
    fn rib_snapshot_roundtrips_through_dump_bytes() {
        // Write a TABLE_DUMP_V2 via ArchiveRibFeed, load it back.
        let mut feed = ArchiveRibFeed::route_views(vec![Asn(174)], vec![pfx("10.0.0.0/23")]);
        let mut rng = SimRng::new(1);
        let at = feed.next_poll(SimTime::ZERO).unwrap();
        feed.poll(at, &fake_view(), &mut rng);
        let snap = MrtRibSnapshot::load(feed.last_dump_mrt());
        assert!(snap.diagnostics().is_empty());
        assert_eq!(snap.peers().len(), 1);
        assert_eq!(snap.route_count(), 1);
        assert_eq!(snap.timestamp(), at);
        // The collector prepend is undone: peer 174's Loc-RIB path is
        // the original [3356, 65001].
        let rib = snap.loc_rib(Asn(174));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib[0].0, pfx("10.0.0.0/23"));
        assert_eq!(rib[0].1.as_path, AsPath::from_sequence([3356u32, 65001]));
        assert_eq!(rib[0].1.origin_as, Asn(65001));
        assert_eq!(rib[0].1.neighbor, Some(Asn(3356)));
        assert_eq!(
            snap.best_route(Asn(174), pfx("10.0.0.0/23"))
                .map(|b| b.origin_as),
            Some(Asn(65001))
        );
        assert!(snap.best_route(Asn(999), pfx("10.0.0.0/23")).is_none());
    }

    #[test]
    fn rib_bootstrap_dedupes_multi_session_peers() {
        // Regression: a real PEER_INDEX_TABLE lists the same AS once
        // per collector session (v4 + v6). The bootstrap must queue
        // each stored route once, not once per peer row.
        use artemis_mrt::{MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRecord};
        let mut w = MrtWriter::new();
        w.write(&MrtRecord::PeerIndex {
            timestamp: 50,
            table: PeerIndexTable {
                collector_id: "198.51.100.1".parse().unwrap(),
                view_name: "dual-stack".into(),
                peers: vec![
                    PeerEntry {
                        bgp_id: "10.0.0.1".parse().unwrap(),
                        addr: "192.0.2.10".parse().unwrap(),
                        asn: Asn(174),
                    },
                    PeerEntry {
                        bgp_id: "10.0.0.1".parse().unwrap(),
                        addr: "2001:db8::a".parse().unwrap(),
                        asn: Asn(174), // same AS, second session
                    },
                ],
            },
        })
        .unwrap();
        let attrs = artemis_bgp::PathAttributes::with_path(
            AsPath::from_sequence([174u32, 3356, 65001]),
            "192.0.2.1".parse().unwrap(),
        );
        w.write(&MrtRecord::Rib {
            timestamp: 50,
            rib: RibRecord {
                sequence: 0,
                prefix: pfx("10.0.0.0/23"),
                entries: vec![RibEntry {
                    peer_index: 0,
                    originated_time: 40,
                    attrs,
                }],
            },
        })
        .unwrap();
        let bytes = w.into_bytes();

        let snap = MrtRibSnapshot::load(&bytes);
        assert_eq!(snap.peers().len(), 2);
        assert_eq!(snap.route_count(), 1);
        let replay = MrtReplayFeed::from_mrt_bytes(&[]).with_rib_bootstrap(&snap);
        assert_eq!(
            replay.pending_events(),
            1,
            "one stored route must bootstrap exactly one event"
        );
        assert_eq!(replay.records_replayed(), 1);
    }

    #[test]
    fn rib_bootstrap_seeds_replay_queue() {
        let mut feed = ArchiveRibFeed::route_views(vec![Asn(174)], vec![pfx("10.0.0.0/23")]);
        let mut rng = SimRng::new(1);
        let at = feed.next_poll(SimTime::ZERO).unwrap();
        feed.poll(at, &fake_view(), &mut rng);
        let snap = MrtRibSnapshot::load(feed.last_dump_mrt());

        let mut replay = MrtReplayFeed::from_mrt_bytes(&[]).with_rib_bootstrap(&snap);
        assert_eq!(replay.pending_events(), 1);
        assert_eq!(replay.next_poll(SimTime::ZERO), Some(at));
        let view = MrtRibSnapshot::load(&[]);
        let events = replay.poll(at, &view, &mut rng);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].vantage, Asn(174));
        // Bootstrap events carry the collector-session path (vantage
        // prepended), like every other feed event.
        assert_eq!(
            events[0].as_path,
            Some(AsPath::from_sequence([174u32, 3356, 65001]))
        );
    }
}
