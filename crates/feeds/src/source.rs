//! The [`FeedSource`] trait and routing-state views.

use crate::event::{FeedEvent, FeedKind};
use artemis_bgp::{Asn, Prefix};
use artemis_bgpsim::{BestRoute, Engine, RouteChange};
use artemis_simnet::{SimRng, SimTime};

/// Read-only view of current routing state, used by pull-based feeds
/// (looking glasses, RIB snapshots).
pub trait RibView {
    /// Best route of `asn` for exactly `prefix`.
    fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<BestRoute>;
    /// Complete Loc-RIB of `asn`.
    fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)>;
}

/// A [`RibView`] with no routing state at all.
///
/// Live wire feeds ([`crate::BmpLiveFeed`]) do not inspect simulated
/// routing state — their poll path drains a socket-fed ring. Drivers
/// that pump only such feeds (the operator daemon) pass this view so
/// they need no engine.
pub struct EmptyRibView;

impl RibView for EmptyRibView {
    fn best_route(&self, _asn: Asn, _prefix: Prefix) -> Option<BestRoute> {
        None
    }
    fn loc_rib(&self, _asn: Asn) -> Vec<(Prefix, BestRoute)> {
        Vec::new()
    }
}

/// The live engine as a [`RibView`].
pub struct EngineView<'a>(pub &'a Engine);

impl RibView for EngineView<'_> {
    fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<BestRoute> {
        self.0.best_route(asn, prefix)
    }
    fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
        self.0.loc_rib(asn)
    }
}

/// A monitoring data source.
///
/// Feeds are driven two ways:
/// * **push**: the experiment driver forwards every [`RouteChange`] via
///   [`FeedSource::on_route_change`]; the feed decides whether one of
///   its vantage points saw it and when subscribers learn about it.
/// * **pull**: the driver asks [`FeedSource::next_poll`] when the feed
///   next wants to inspect routing state and calls
///   [`FeedSource::poll`] at that instant with a [`RibView`].
///
/// Either path returns [`FeedEvent`]s whose `emitted_at` may lie in the
/// future (pipeline delay); the driver is responsible for ordering.
///
/// Feeds are `Send`: the operator daemon keeps the hub (and thus every
/// attached feed) behind a mutex shared across connection threads.
pub trait FeedSource: Send {
    /// The feed family.
    fn kind(&self) -> FeedKind;
    /// Human-readable instance name.
    fn name(&self) -> &str;
    /// Push-path: react to a Loc-RIB change somewhere in the Internet,
    /// appending any resulting events to `out`. This is the primary
    /// implementation surface: the [`crate::FeedHub`] batch path
    /// threads one reusable buffer through every feed instead of
    /// collecting a fresh `Vec` per `(change, feed)` pair.
    fn on_route_change_into(
        &mut self,
        change: &RouteChange,
        rng: &mut SimRng,
        out: &mut Vec<FeedEvent>,
    );
    /// Push-path, allocating convenience wrapper around
    /// [`FeedSource::on_route_change_into`].
    fn on_route_change(&mut self, change: &RouteChange, rng: &mut SimRng) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        self.on_route_change_into(change, rng, &mut out);
        out
    }
    /// Pull-path: when does this feed next want to run (`None` = never)?
    fn next_poll(&self, now: SimTime) -> Option<SimTime>;
    /// Pull-path: execute the poll scheduled at `at`.
    fn poll(&mut self, at: SimTime, view: &dyn RibView, rng: &mut SimRng) -> Vec<FeedEvent>;
    /// Events emitted so far (monitoring-overhead accounting).
    fn events_emitted(&self) -> u64;
    /// Pull queries actually issued (0 for push feeds) — the
    /// monitoring-overhead axis of the LG trade-off.
    fn polls_executed(&self) -> u64 {
        0
    }
    /// Events this feed discarded *before* they could reach the hub's
    /// merge queue: backpressure sheds plus feed-local filtering and
    /// outage windows. Monotone. The hub adds its own pre-heap filter
    /// rejections on top when reporting [`crate::FeedLag`].
    fn dropped_events(&self) -> u64 {
        0
    }
    /// The backpressure-shed subset of [`FeedSource::dropped_events`]:
    /// events discarded because the consumer fell behind a bounded
    /// ring (0 for feeds without one). Monotone.
    fn shed_events(&self) -> u64 {
        0
    }
    /// Raw MRT bytes this feed has accumulated, for feeds that write
    /// archives ([`crate::ArchiveUpdatesFeed`], [`crate::ArchiveRibFeed`]);
    /// `None` for everything else. Lets drivers pull archive bytes back
    /// out of a [`crate::FeedHub`]-boxed feed for replay.
    fn archive_bytes(&self) -> Option<&[u8]> {
        None
    }
    /// Wire-session health for socket-backed feeds
    /// ([`crate::BmpLiveFeed`]): transport reconnects plus per-peer
    /// `stats_report` health. `None` for simulated feeds.
    fn wire_health(&self) -> Option<crate::live::WireHealth> {
        None
    }
    /// Drain the peers whose BGP sessions this feed observed going
    /// down (BMP `peer_down`) since the last call. The pipeline purges
    /// each returned vantage point from its monitors' per-VP views.
    /// Empty for feeds without session semantics.
    fn take_peer_downs(&mut self) -> Vec<Asn> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgpsim::SimConfig;
    use artemis_topology::AsGraph;
    use std::str::FromStr;

    #[test]
    fn engine_view_delegates() {
        let mut g = AsGraph::new();
        g.add_provider_customer(Asn(1), Asn(2)).unwrap();
        let mut e = Engine::new(g, SimConfig::instantaneous(), 1);
        let p = Prefix::from_str("10.0.0.0/24").unwrap();
        e.announce(Asn(2), p);
        e.run_to_quiescence(10_000);
        let view = EngineView(&e);
        assert!(view.best_route(Asn(1), p).is_some());
        assert_eq!(view.loc_rib(Asn(1)).len(), 1);
        assert!(view.best_route(Asn(99), p).is_none());
    }
}
