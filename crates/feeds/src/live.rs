//! The live BMP wire feed: a real TCP session into the pipeline.
//!
//! [`BmpLiveFeed`] owns a reader thread that speaks RFC 7854 framing
//! off a [`std::net::TcpStream`], decodes `route_monitoring` messages
//! into [`FeedEvent`]s, applies an optional pre-ring [`FeedFilter`],
//! and parks the survivors in a fixed-capacity
//! [`artemis_bmp::BackpressureRing`]. The pipeline side is an ordinary
//! pull-based [`FeedSource`]: `next_poll` reports "now" whenever the
//! ring holds events, and `poll` drains them. When the detector falls
//! behind, the ring sheds oldest-first and counts every shed — memory
//! stays bounded by construction, and the loss is visible in
//! [`crate::FeedLag`] instead of silent.

#![deny(missing_docs)]

use crate::event::{FeedEvent, FeedKind};
use crate::filter::FeedFilter;
use crate::source::{FeedSource, RibView};
use artemis_bgp::BgpMessage;
use artemis_bgpsim::RouteChange;
use artemis_bmp::{BackpressureRing, BmpMessage, FrameAssembler, PeerHeader};
use artemis_simnet::{SimRng, SimTime};
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`BmpLiveFeed`].
#[derive(Debug, Clone)]
pub struct LiveFeedConfig {
    /// Backpressure ring capacity in events (clamped to ≥ 1).
    pub ring_capacity: usize,
    /// Pre-ring filter: events failing it are counted and discarded on
    /// the reader thread, before they cost a ring slot.
    pub filter: Option<FeedFilter>,
    /// Socket read-buffer size in bytes.
    pub read_chunk: usize,
}

impl Default for LiveFeedConfig {
    fn default() -> Self {
        LiveFeedConfig {
            ring_capacity: 8192,
            filter: None,
            read_chunk: 64 * 1024,
        }
    }
}

/// Shared reader-thread counters, readable lock-free from the feed.
#[derive(Default)]
struct LiveCounters {
    /// Route-monitoring events decoded off the wire.
    decoded: AtomicU64,
    /// Events rejected by the pre-ring filter.
    filtered: AtomicU64,
    /// Messages skipped on per-message decode defects.
    diagnostics: AtomicU64,
    /// Session reached an established TCP connection.
    connected: AtomicBool,
    /// Reader thread has exited (EOF, error, or corrupt framing).
    disconnected: AtomicBool,
}

/// A point-in-time snapshot of a live feed's wire-side health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveFeedStats {
    /// Route-monitoring events decoded off the wire so far.
    pub decoded: u64,
    /// Events discarded by the pre-ring filter.
    pub filtered: u64,
    /// Events shed from the full ring (detector fell behind).
    pub shed: u64,
    /// Events currently parked in the ring.
    pub pending: usize,
    /// Messages skipped because their body failed to decode.
    pub diagnostics: u64,
    /// The TCP session was established at some point.
    pub connected: bool,
    /// The reader thread has exited.
    pub disconnected: bool,
}

/// A live RFC 7854 BMP session as a [`FeedSource`]. See the module
/// docs for the architecture.
pub struct BmpLiveFeed {
    name: String,
    ring: Arc<BackpressureRing<FeedEvent>>,
    counters: Arc<LiveCounters>,
    shutdown: Arc<AtomicBool>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Events handed to the hub via `poll`.
    emitted: u64,
    /// Poll invocations that drained at least one event.
    polls: u64,
}

impl BmpLiveFeed {
    /// Wrap an already-connected stream (loopback tests, benches).
    pub fn from_stream(name: impl Into<String>, stream: TcpStream, config: LiveFeedConfig) -> Self {
        Self::start(name.into(), ConnectMode::Stream(stream), config)
    }

    /// Connect to `addr` from a background thread, retrying until the
    /// collector accepts or the feed is dropped. Never blocks and
    /// never fails: connection state is observable via
    /// [`BmpLiveFeed::stats`] rather than a constructor error, which
    /// is what lets a serializable [`crate::FeedSpec`] build this feed
    /// infallibly.
    pub fn connect(
        name: impl Into<String>,
        addr: impl Into<String>,
        config: LiveFeedConfig,
    ) -> Self {
        Self::start(name.into(), ConnectMode::Addr(addr.into()), config)
    }

    fn start(name: String, mode: ConnectMode, config: LiveFeedConfig) -> Self {
        let ring = Arc::new(BackpressureRing::new(config.ring_capacity));
        let counters = Arc::new(LiveCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader = {
            let ring = Arc::clone(&ring);
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            let collector = name.clone();
            std::thread::Builder::new()
                .name(format!("bmp-live-{name}"))
                .spawn(move || reader_main(mode, config, collector, ring, counters, shutdown))
                .expect("spawn bmp reader thread")
        };
        BmpLiveFeed {
            name,
            ring,
            counters,
            shutdown,
            reader: Some(reader),
            emitted: 0,
            polls: 0,
        }
    }

    /// Wire-side health counters (see [`LiveFeedStats`]).
    pub fn stats(&self) -> LiveFeedStats {
        LiveFeedStats {
            decoded: self.counters.decoded.load(Ordering::Relaxed),
            filtered: self.counters.filtered.load(Ordering::Relaxed),
            shed: self.ring.shed_total(),
            pending: self.ring.len(),
            diagnostics: self.counters.diagnostics.load(Ordering::Relaxed),
            connected: self.counters.connected.load(Ordering::Relaxed),
            disconnected: self.counters.disconnected.load(Ordering::Relaxed),
        }
    }

    /// True while the reader thread is alive (connecting or streaming).
    pub fn is_live(&self) -> bool {
        !self.counters.disconnected.load(Ordering::Relaxed)
    }
}

impl Drop for BmpLiveFeed {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.reader.take() {
            // The reader polls the flag between (timeout-bounded)
            // reads, so this join is bounded too.
            let _ = handle.join();
        }
    }
}

impl FeedSource for BmpLiveFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::BmpLive
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        _change: &RouteChange,
        _rng: &mut SimRng,
        _out: &mut Vec<FeedEvent>,
    ) {
        // A wire feed observes a real socket, not the simulator.
    }

    fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        // Ready exactly when the ring holds events: the driver polls
        // immediately, and an empty ring schedules nothing (the next
        // pump tick re-asks).
        if self.ring.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn poll(&mut self, at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        let n = self.ring.drain_into(&mut out, usize::MAX);
        for ev in &mut out {
            // Emission is the instant the pipeline could first react;
            // observation keeps the collector's wire timestamp (capped
            // so a fast collector clock cannot place it after
            // emission).
            ev.emitted_at = at;
            ev.observed_at = ev.observed_at.min(at);
        }
        if n > 0 {
            self.emitted += n as u64;
            self.polls += 1;
        }
        out
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn polls_executed(&self) -> u64 {
        self.polls
    }

    fn dropped_events(&self) -> u64 {
        self.counters.filtered.load(Ordering::Relaxed) + self.ring.shed_total()
    }

    fn shed_events(&self) -> u64 {
        self.ring.shed_total()
    }
}

enum ConnectMode {
    Stream(TcpStream),
    Addr(String),
}

/// How often a blocked reader re-checks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(25);
/// Backoff between connection attempts in [`ConnectMode::Addr`].
const CONNECT_RETRY: Duration = Duration::from_millis(50);

fn reader_main(
    mode: ConnectMode,
    config: LiveFeedConfig,
    collector: String,
    ring: Arc<BackpressureRing<FeedEvent>>,
    counters: Arc<LiveCounters>,
    shutdown: Arc<AtomicBool>,
) {
    let stream = match mode {
        ConnectMode::Stream(s) => Some(s),
        ConnectMode::Addr(addr) => loop {
            if shutdown.load(Ordering::Relaxed) {
                break None;
            }
            match TcpStream::connect(&addr) {
                Ok(s) => break Some(s),
                Err(_) => std::thread::sleep(CONNECT_RETRY),
            }
        },
    };
    if let Some(stream) = stream {
        counters.connected.store(true, Ordering::Relaxed);
        stream_session(stream, &config, &collector, &ring, &counters, &shutdown);
    }
    counters.disconnected.store(true, Ordering::Relaxed);
}

fn stream_session(
    mut stream: TcpStream,
    config: &LiveFeedConfig,
    collector: &str,
    ring: &BackpressureRing<FeedEvent>,
    counters: &LiveCounters,
    shutdown: &AtomicBool,
) {
    // A bounded read timeout keeps the thread responsive to shutdown
    // without a second control channel.
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut asm = FrameAssembler::new();
    let mut buf = vec![0u8; config.read_chunk.max(512)];
    let mut batch: Vec<FeedEvent> = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return, // collector closed the session
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return,
        };
        asm.push(&buf[..n]);
        loop {
            match asm.next_message() {
                Ok(Some(raw)) => match raw.decode() {
                    Ok(BmpMessage::RouteMonitoring { peer, update }) => {
                        events_from_update(collector, &peer, &update, config, counters, &mut batch);
                    }
                    // Session bookkeeping (peer up/down, stats,
                    // initiation/termination) carries no reachability.
                    Ok(_) => {}
                    Err(_) => {
                        counters.diagnostics.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Ok(None) => break,
                // Fused framing: the stream boundary is lost for good.
                Err(_) => {
                    counters.diagnostics.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        if !batch.is_empty() {
            ring.push_batch(batch.drain(..));
        }
    }
}

/// Expand one route-monitoring UPDATE into per-prefix feed events,
/// filter them, and append survivors to `batch`.
fn events_from_update(
    collector: &str,
    peer: &PeerHeader,
    update: &BgpMessage,
    config: &LiveFeedConfig,
    counters: &LiveCounters,
    batch: &mut Vec<FeedEvent>,
) {
    let BgpMessage::Update(u) = update else {
        return; // decode() already guarantees this
    };
    let observed = SimTime::from_micros(peer.timestamp_micros());
    let path = u.attrs.as_ref().map(|a| a.as_path.clone());
    let origin = u.attrs.as_ref().and_then(|a| a.origin_as());
    let mut push = |prefix, as_path, origin_as| {
        counters.decoded.fetch_add(1, Ordering::Relaxed);
        let ev = FeedEvent {
            // Placeholder until `poll` stamps the true emission
            // instant; observation is the collector's wire timestamp.
            emitted_at: observed,
            observed_at: observed,
            source: FeedKind::BmpLive,
            collector: collector.to_string(),
            vantage: peer.peer_as,
            prefix,
            as_path,
            origin_as,
            raw: None,
        };
        match &config.filter {
            Some(f) if !f.matches(&ev) => {
                counters.filtered.fetch_add(1, Ordering::Relaxed);
            }
            _ => batch.push(ev),
        }
    };
    for prefix in &u.withdrawn {
        push(*prefix, None, None);
    }
    for prefix in &u.nlri {
        push(*prefix, path.clone(), origin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::EmptyRibView;
    use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
    use artemis_bmp::BmpWriter;
    use std::io::Write;
    use std::net::{Ipv4Addr, TcpListener};
    use std::str::FromStr;

    fn route_monitoring(prefix: &str, path: &[u32], ts_micros: u64) -> artemis_bmp::BmpMessage {
        let peer = PeerHeader::global(
            std::net::IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            Asn(path[0]),
            Ipv4Addr::new(10, 0, 0, 1),
            ts_micros,
        );
        artemis_bmp::BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(UpdateMessage::announce(
                PathAttributes::with_path(
                    AsPath::from_sequence(path.iter().copied()),
                    "192.0.2.10".parse().unwrap(),
                ),
                vec![Prefix::from_str(prefix).unwrap()],
            )),
        }
    }

    fn wait_until(pred: impl Fn() -> bool) {
        for _ in 0..400 {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached within 2s");
    }

    #[test]
    fn streams_route_monitoring_into_poll_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.0.0/24", &[174, 666], 5_000_000))
                .unwrap();
            w.write(&route_monitoring(
                "203.0.113.0/24",
                &[174, 65001],
                6_000_000,
            ))
            .unwrap();
            sock.write_all(w.as_bytes()).unwrap();
        });
        let mut feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        writer.join().unwrap();
        wait_until(|| feed.stats().pending == 2);

        let now = SimTime::from_secs(100);
        assert_eq!(feed.next_poll(now), Some(now));
        let evs = feed.poll(now, &EmptyRibView, &mut SimRng::new(1));
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].prefix, Prefix::from_str("10.0.0.0/24").unwrap());
        assert_eq!(evs[0].vantage, Asn(174));
        assert_eq!(evs[0].origin_as, Some(Asn(666)));
        assert_eq!(evs[0].emitted_at, now);
        assert_eq!(evs[0].observed_at, SimTime::from_secs(5));
        assert_eq!(evs[0].source, FeedKind::BmpLive);
        assert_eq!(feed.next_poll(now), None, "drained ring schedules nothing");
        assert_eq!(feed.events_emitted(), 2);
        assert_eq!(feed.polls_executed(), 1);
    }

    #[test]
    fn pre_ring_filter_counts_rejections_as_drops() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            for i in 0..10u32 {
                // Half inside the watched prefix, half elsewhere.
                let p = if i % 2 == 0 {
                    "10.0.0.0/24"
                } else {
                    "198.51.100.0/24"
                };
                w.write(&route_monitoring(p, &[174, 666], i as u64))
                    .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
        });
        let config = LiveFeedConfig {
            filter: Some(FeedFilter::any().prefix(Prefix::from_str("10.0.0.0/23").unwrap())),
            ..LiveFeedConfig::default()
        };
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), config);
        writer.join().unwrap();
        wait_until(|| feed.stats().decoded == 10);
        let stats = feed.stats();
        assert_eq!(stats.filtered, 5);
        assert_eq!(stats.pending, 5, "rejected events never reach the ring");
        assert_eq!(feed.dropped_events(), 5);
        assert_eq!(feed.shed_events(), 0);
    }

    #[test]
    fn stalled_consumer_sheds_oldest_bounded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            for i in 0..200u64 {
                w.write(&route_monitoring("10.0.0.0/24", &[174, 666], i))
                    .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
        });
        let config = LiveFeedConfig {
            ring_capacity: 16,
            ..LiveFeedConfig::default()
        };
        let mut feed = BmpLiveFeed::connect("bmp0", addr.to_string(), config);
        writer.join().unwrap();
        wait_until(|| feed.stats().decoded == 200);
        let stats = feed.stats();
        assert_eq!(stats.pending, 16, "ring memory is bounded at capacity");
        assert_eq!(stats.shed, 184, "everything beyond capacity was shed");
        assert_eq!(feed.dropped_events(), 184);
        // The newest observation survived the stall.
        let evs = feed.poll(SimTime::from_secs(1), &EmptyRibView, &mut SimRng::new(1));
        assert_eq!(evs.last().unwrap().observed_at, SimTime::from_micros(199));
    }

    #[test]
    fn corrupt_framing_disconnects_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.0.0/24", &[174, 666], 1))
                .unwrap();
            let mut bytes = w.into_bytes();
            bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0]);
            sock.write_all(&bytes).unwrap();
            // Keep the socket open: the feed must bail on the corrupt
            // framing itself, not on EOF.
            std::thread::sleep(Duration::from_millis(300));
        });
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        wait_until(|| feed.stats().disconnected);
        let stats = feed.stats();
        assert_eq!(stats.decoded, 1, "events before the corruption were kept");
        assert!(stats.diagnostics >= 1);
        assert!(!feed.is_live());
        writer.join().unwrap();
    }

    #[test]
    fn drop_while_connecting_does_not_hang() {
        // No listener: the feed sits in the connect-retry loop. Drop
        // must terminate the thread promptly.
        let feed = BmpLiveFeed::connect("bmp0", "127.0.0.1:1", LiveFeedConfig::default());
        std::thread::sleep(Duration::from_millis(30));
        drop(feed); // must not hang
    }
}
