//! The live BMP wire feed: a real TCP session into the pipeline.
//!
//! [`BmpLiveFeed`] owns a reader thread that speaks RFC 7854 framing
//! off a [`std::net::TcpStream`], decodes `route_monitoring` messages
//! into [`FeedEvent`]s, applies an optional pre-ring [`FeedFilter`],
//! and parks the survivors in a fixed-capacity
//! [`artemis_bmp::BackpressureRing`]. The pipeline side is an ordinary
//! pull-based [`FeedSource`]: `next_poll` reports "now" whenever the
//! ring holds events, and `poll` drains them. When the detector falls
//! behind, the ring sheds oldest-first and counts every shed — memory
//! stays bounded by construction, and the loss is visible in
//! [`crate::FeedLag`] instead of silent.

#![deny(missing_docs)]

use crate::event::{FeedEvent, FeedKind};
use crate::filter::FeedFilter;
use crate::source::{FeedSource, RibView};
use artemis_bgp::{Asn, BgpMessage};
use artemis_bgpsim::RouteChange;
use artemis_bmp::{BackpressureRing, BmpMessage, FrameAssembler, PeerHeader};
use artemis_simnet::{SimRng, SimTime};
use std::collections::BTreeMap;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for a [`BmpLiveFeed`].
#[derive(Debug, Clone)]
pub struct LiveFeedConfig {
    /// Backpressure ring capacity in events (clamped to ≥ 1).
    pub ring_capacity: usize,
    /// Pre-ring filter: events failing it are counted and discarded on
    /// the reader thread, before they cost a ring slot.
    pub filter: Option<FeedFilter>,
    /// Socket read-buffer size in bytes.
    pub read_chunk: usize,
}

impl Default for LiveFeedConfig {
    fn default() -> Self {
        LiveFeedConfig {
            ring_capacity: 8192,
            filter: None,
            read_chunk: 64 * 1024,
        }
    }
}

/// Shared reader-thread counters, readable lock-free from the feed
/// (the two maps behind mutexes are touched only on rare session
/// events — stats reports and peer downs — never per route).
#[derive(Default)]
struct LiveCounters {
    /// Route-monitoring events decoded off the wire.
    decoded: AtomicU64,
    /// Events rejected by the pre-ring filter.
    filtered: AtomicU64,
    /// Messages skipped on per-message decode defects.
    diagnostics: AtomicU64,
    /// Completed re-dials after an established session was lost.
    reconnects: AtomicU64,
    /// Session reached an established TCP connection.
    connected: AtomicBool,
    /// Reader thread has exited (shutdown, fatal framing, or a lost
    /// transport with no address to re-dial).
    disconnected: AtomicBool,
    /// Per-peer health accumulated from `stats_report` messages.
    peer_health: Mutex<BTreeMap<Asn, PeerHealth>>,
    /// Peers whose sessions went down since the pipeline last asked.
    peer_downs: Mutex<Vec<Asn>>,
}

/// Per-peer session health accumulated from BMP `stats_report` and
/// `peer_down` messages (RFC 7854 §4.8/§4.9). Counter-typed stats
/// (types 0–2) are cumulative on the monitored router, so each report
/// replaces the stored value; the RIB sizes (types 7–8) are gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerHealth {
    /// `stats_report` messages seen for this peer.
    pub reports: u64,
    /// Stat type 0: prefixes rejected by inbound policy.
    pub prefixes_rejected: u64,
    /// Stat type 1: duplicate prefix advertisements.
    pub duplicate_updates: u64,
    /// Stat type 2: duplicate withdraws.
    pub duplicate_withdraws: u64,
    /// Stat type 7: routes in Adj-RIB-In (gauge).
    pub adj_rib_in: u64,
    /// Stat type 8: routes in Loc-RIB (gauge).
    pub loc_rib: u64,
    /// `peer_down` messages seen for this peer.
    pub peer_downs: u64,
}

/// Wire-session health of a live feed: how often the transport had to
/// be re-established, and what the collector's peers report about
/// their own sessions. Returned by [`FeedSource::wire_health`] for
/// wire-backed feeds (`None` for simulated ones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireHealth {
    /// Completed re-dials after an established session was lost.
    pub reconnects: u64,
    /// Per-peer health, ascending by peer ASN.
    pub peers: Vec<(Asn, PeerHealth)>,
}

/// A point-in-time snapshot of a live feed's wire-side health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveFeedStats {
    /// Route-monitoring events decoded off the wire so far.
    pub decoded: u64,
    /// Events discarded by the pre-ring filter.
    pub filtered: u64,
    /// Events shed from the full ring (detector fell behind).
    pub shed: u64,
    /// Events currently parked in the ring.
    pub pending: usize,
    /// Messages skipped because their body failed to decode.
    pub diagnostics: u64,
    /// Completed re-dials after an established session was lost.
    pub reconnects: u64,
    /// Peers with recorded health (see [`BmpLiveFeed::peer_health`]).
    pub peers: usize,
    /// The TCP session was established at some point.
    pub connected: bool,
    /// The reader thread has exited.
    pub disconnected: bool,
}

/// A live RFC 7854 BMP session as a [`FeedSource`]. See the module
/// docs for the architecture.
pub struct BmpLiveFeed {
    name: String,
    ring: Arc<BackpressureRing<FeedEvent>>,
    counters: Arc<LiveCounters>,
    shutdown: Arc<AtomicBool>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Events handed to the hub via `poll`.
    emitted: u64,
    /// Poll invocations that drained at least one event.
    polls: u64,
}

impl BmpLiveFeed {
    /// Wrap an already-connected stream (loopback tests, benches).
    pub fn from_stream(name: impl Into<String>, stream: TcpStream, config: LiveFeedConfig) -> Self {
        Self::start(name.into(), ConnectMode::Stream(stream), config)
    }

    /// Connect to `addr` from a background thread, retrying until the
    /// collector accepts or the feed is dropped. Never blocks and
    /// never fails: connection state is observable via
    /// [`BmpLiveFeed::stats`] rather than a constructor error, which
    /// is what lets a serializable [`crate::FeedSpec`] build this feed
    /// infallibly.
    pub fn connect(
        name: impl Into<String>,
        addr: impl Into<String>,
        config: LiveFeedConfig,
    ) -> Self {
        Self::start(name.into(), ConnectMode::Addr(addr.into()), config)
    }

    fn start(name: String, mode: ConnectMode, config: LiveFeedConfig) -> Self {
        let ring = Arc::new(BackpressureRing::new(config.ring_capacity));
        let counters = Arc::new(LiveCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader = {
            let ring = Arc::clone(&ring);
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            let collector = name.clone();
            std::thread::Builder::new()
                .name(format!("bmp-live-{name}"))
                .spawn(move || reader_main(mode, config, collector, ring, counters, shutdown))
                .expect("spawn bmp reader thread")
        };
        BmpLiveFeed {
            name,
            ring,
            counters,
            shutdown,
            reader: Some(reader),
            emitted: 0,
            polls: 0,
        }
    }

    /// Wire-side health counters (see [`LiveFeedStats`]).
    pub fn stats(&self) -> LiveFeedStats {
        LiveFeedStats {
            decoded: self.counters.decoded.load(Ordering::Relaxed),
            filtered: self.counters.filtered.load(Ordering::Relaxed),
            shed: self.ring.shed_total(),
            pending: self.ring.len(),
            diagnostics: self.counters.diagnostics.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            peers: self.counters.peer_health.lock().expect("peer health").len(),
            connected: self.counters.connected.load(Ordering::Relaxed),
            disconnected: self.counters.disconnected.load(Ordering::Relaxed),
        }
    }

    /// Per-peer session health accumulated from `stats_report` and
    /// `peer_down` messages, ascending by peer ASN.
    pub fn peer_health(&self) -> Vec<(Asn, PeerHealth)> {
        self.counters
            .peer_health
            .lock()
            .expect("peer health")
            .iter()
            .map(|(asn, h)| (*asn, *h))
            .collect()
    }

    /// True while the reader thread is alive (connecting or streaming).
    pub fn is_live(&self) -> bool {
        !self.counters.disconnected.load(Ordering::Relaxed)
    }
}

impl Drop for BmpLiveFeed {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.reader.take() {
            // The reader polls the flag between (timeout-bounded)
            // reads, so this join is bounded too.
            let _ = handle.join();
        }
    }
}

impl FeedSource for BmpLiveFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::BmpLive
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        _change: &RouteChange,
        _rng: &mut SimRng,
        _out: &mut Vec<FeedEvent>,
    ) {
        // A wire feed observes a real socket, not the simulator.
    }

    fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        // Ready exactly when the ring holds events: the driver polls
        // immediately, and an empty ring schedules nothing (the next
        // pump tick re-asks).
        if self.ring.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn poll(&mut self, at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        let n = self.ring.drain_into(&mut out, usize::MAX);
        for ev in &mut out {
            // Emission is the instant the pipeline could first react;
            // observation keeps the collector's wire timestamp (capped
            // so a fast collector clock cannot place it after
            // emission).
            ev.emitted_at = at;
            ev.observed_at = ev.observed_at.min(at);
        }
        if n > 0 {
            self.emitted += n as u64;
            self.polls += 1;
        }
        out
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn polls_executed(&self) -> u64 {
        self.polls
    }

    fn dropped_events(&self) -> u64 {
        self.counters.filtered.load(Ordering::Relaxed) + self.ring.shed_total()
    }

    fn shed_events(&self) -> u64 {
        self.ring.shed_total()
    }

    fn wire_health(&self) -> Option<WireHealth> {
        Some(WireHealth {
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            peers: self.peer_health(),
        })
    }

    fn take_peer_downs(&mut self) -> Vec<Asn> {
        std::mem::take(&mut *self.counters.peer_downs.lock().expect("peer downs"))
    }
}

enum ConnectMode {
    Stream(TcpStream),
    Addr(String),
}

/// Why one TCP session ended, deciding what the reader does next.
enum SessionEnd {
    /// The feed was dropped; stop for good.
    Shutdown,
    /// Corrupt framing fused the stream: the message boundary is lost
    /// and re-dialing would replay the same defect. Stop for good.
    Fatal,
    /// EOF or a transport error — the collector may come back.
    TransportLost,
}

/// How often a blocked reader re-checks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(25);
/// Base backoff between connection attempts in [`ConnectMode::Addr`];
/// doubles per consecutive failure up to [`CONNECT_RETRY_CAP`], with
/// jitter so a fleet of feeds does not re-dial in lockstep.
const CONNECT_RETRY: Duration = Duration::from_millis(50);
/// Upper bound on the exponential connect backoff.
const CONNECT_RETRY_CAP: Duration = Duration::from_secs(5);

/// Jittered exponential backoff for re-dial `attempt` (1-based): a
/// uniform draw from `[half, full]` of `CONNECT_RETRY × 2^(attempt-1)`,
/// capped at [`CONNECT_RETRY_CAP`].
fn backoff_delay(attempt: u32, jitter: &mut u64) -> Duration {
    // xorshift64* — deterministic per seed, no external RNG on the
    // reader thread.
    *jitter ^= *jitter << 13;
    *jitter ^= *jitter >> 7;
    *jitter ^= *jitter << 17;
    let full = CONNECT_RETRY
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(CONNECT_RETRY_CAP);
    let half = full / 2;
    half + Duration::from_nanos(*jitter % (full - half).as_nanos().max(1) as u64)
}

/// Sleep `total`, polling the shutdown flag every [`READ_TIMEOUT`] so
/// dropping the feed mid-backoff never blocks the join.
fn sleep_with_shutdown(total: Duration, shutdown: &AtomicBool) {
    let mut left = total;
    while !left.is_zero() {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let step = left.min(READ_TIMEOUT);
        std::thread::sleep(step);
        left -= step;
    }
}

fn reader_main(
    mode: ConnectMode,
    config: LiveFeedConfig,
    collector: String,
    ring: Arc<BackpressureRing<FeedEvent>>,
    counters: Arc<LiveCounters>,
    shutdown: Arc<AtomicBool>,
) {
    match mode {
        // A pre-connected stream has no address to re-dial: one
        // session, then done (loopback tests, benches).
        ConnectMode::Stream(stream) => {
            counters.connected.store(true, Ordering::Relaxed);
            let _ = stream_session(stream, &config, &collector, &ring, &counters, &shutdown);
        }
        // Dial-by-address keeps the feed alive across collector
        // restarts: a lost transport re-enters the dial loop with
        // jittered exponential backoff, and only shutdown or fused
        // framing ends the thread.
        ConnectMode::Addr(addr) => {
            let mut jitter = 0x9E37_79B9_7F4A_7C15u64
                ^ collector
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
            let mut attempt = 0u32;
            let mut established_once = false;
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = TcpStream::connect(&addr) {
                    counters.connected.store(true, Ordering::Relaxed);
                    if established_once {
                        counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    established_once = true;
                    attempt = 0;
                    match stream_session(stream, &config, &collector, &ring, &counters, &shutdown) {
                        SessionEnd::Shutdown | SessionEnd::Fatal => break,
                        SessionEnd::TransportLost => {}
                    }
                }
                attempt += 1;
                sleep_with_shutdown(backoff_delay(attempt, &mut jitter), &shutdown);
            }
        }
    }
    counters.disconnected.store(true, Ordering::Relaxed);
}

fn stream_session(
    mut stream: TcpStream,
    config: &LiveFeedConfig,
    collector: &str,
    ring: &BackpressureRing<FeedEvent>,
    counters: &LiveCounters,
    shutdown: &AtomicBool,
) -> SessionEnd {
    // A bounded read timeout keeps the thread responsive to shutdown
    // without a second control channel.
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut asm = FrameAssembler::new();
    let mut buf = vec![0u8; config.read_chunk.max(512)];
    let mut batch: Vec<FeedEvent> = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return SessionEnd::Shutdown;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return SessionEnd::TransportLost, // collector closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return SessionEnd::TransportLost,
        };
        asm.push(&buf[..n]);
        loop {
            match asm.next_message() {
                Ok(Some(raw)) => match raw.decode() {
                    Ok(BmpMessage::RouteMonitoring { peer, update }) => {
                        events_from_update(collector, &peer, &update, config, counters, &mut batch);
                    }
                    Ok(BmpMessage::StatsReport { peer, stats }) => {
                        let mut health = counters.peer_health.lock().expect("peer health");
                        let h = health.entry(peer.peer_as).or_default();
                        h.reports += 1;
                        for s in stats {
                            // RFC 7854 §4.8 stat types the health view
                            // tracks; unknown types pass through
                            // silently (the spec requires tolerance).
                            match s.stat_type {
                                0 => h.prefixes_rejected = s.value,
                                1 => h.duplicate_updates = s.value,
                                2 => h.duplicate_withdraws = s.value,
                                7 => h.adj_rib_in = s.value,
                                8 => h.loc_rib = s.value,
                                _ => {}
                            }
                        }
                    }
                    Ok(BmpMessage::PeerDown { peer, .. }) => {
                        counters
                            .peer_health
                            .lock()
                            .expect("peer health")
                            .entry(peer.peer_as)
                            .or_default()
                            .peer_downs += 1;
                        let mut downs = counters.peer_downs.lock().expect("peer downs");
                        if !downs.contains(&peer.peer_as) {
                            downs.push(peer.peer_as);
                        }
                    }
                    // Remaining session bookkeeping (peer up,
                    // initiation/termination) carries no reachability.
                    Ok(_) => {}
                    Err(_) => {
                        counters.diagnostics.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Ok(None) => break,
                // Fused framing: the stream boundary is lost for good.
                Err(_) => {
                    counters.diagnostics.fetch_add(1, Ordering::Relaxed);
                    return SessionEnd::Fatal;
                }
            }
        }
        if !batch.is_empty() {
            ring.push_batch(batch.drain(..));
        }
    }
}

/// Expand one route-monitoring UPDATE into per-prefix feed events,
/// filter them, and append survivors to `batch`.
fn events_from_update(
    collector: &str,
    peer: &PeerHeader,
    update: &BgpMessage,
    config: &LiveFeedConfig,
    counters: &LiveCounters,
    batch: &mut Vec<FeedEvent>,
) {
    let BgpMessage::Update(u) = update else {
        return; // decode() already guarantees this
    };
    let observed = SimTime::from_micros(peer.timestamp_micros());
    let path = u.attrs.as_ref().map(|a| a.as_path.clone());
    let origin = u.attrs.as_ref().and_then(|a| a.origin_as());
    let mut push = |prefix, as_path, origin_as| {
        counters.decoded.fetch_add(1, Ordering::Relaxed);
        let ev = FeedEvent {
            // Placeholder until `poll` stamps the true emission
            // instant; observation is the collector's wire timestamp.
            emitted_at: observed,
            observed_at: observed,
            source: FeedKind::BmpLive,
            collector: collector.to_string(),
            vantage: peer.peer_as,
            prefix,
            as_path,
            origin_as,
            raw: None,
        };
        match &config.filter {
            Some(f) if !f.matches(&ev) => {
                counters.filtered.fetch_add(1, Ordering::Relaxed);
            }
            _ => batch.push(ev),
        }
    };
    for prefix in &u.withdrawn {
        push(*prefix, None, None);
    }
    for prefix in &u.nlri {
        push(*prefix, path.clone(), origin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::EmptyRibView;
    use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
    use artemis_bmp::BmpWriter;
    use std::io::Write;
    use std::net::{Ipv4Addr, TcpListener};
    use std::str::FromStr;

    fn route_monitoring(prefix: &str, path: &[u32], ts_micros: u64) -> artemis_bmp::BmpMessage {
        let peer = PeerHeader::global(
            std::net::IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            Asn(path[0]),
            Ipv4Addr::new(10, 0, 0, 1),
            ts_micros,
        );
        artemis_bmp::BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(UpdateMessage::announce(
                PathAttributes::with_path(
                    AsPath::from_sequence(path.iter().copied()),
                    "192.0.2.10".parse().unwrap(),
                ),
                vec![Prefix::from_str(prefix).unwrap()],
            )),
        }
    }

    fn wait_until(pred: impl Fn() -> bool) {
        for _ in 0..400 {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached within 2s");
    }

    #[test]
    fn streams_route_monitoring_into_poll_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.0.0/24", &[174, 666], 5_000_000))
                .unwrap();
            w.write(&route_monitoring(
                "203.0.113.0/24",
                &[174, 65001],
                6_000_000,
            ))
            .unwrap();
            sock.write_all(w.as_bytes()).unwrap();
        });
        let mut feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        writer.join().unwrap();
        wait_until(|| feed.stats().pending == 2);

        let now = SimTime::from_secs(100);
        assert_eq!(feed.next_poll(now), Some(now));
        let evs = feed.poll(now, &EmptyRibView, &mut SimRng::new(1));
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].prefix, Prefix::from_str("10.0.0.0/24").unwrap());
        assert_eq!(evs[0].vantage, Asn(174));
        assert_eq!(evs[0].origin_as, Some(Asn(666)));
        assert_eq!(evs[0].emitted_at, now);
        assert_eq!(evs[0].observed_at, SimTime::from_secs(5));
        assert_eq!(evs[0].source, FeedKind::BmpLive);
        assert_eq!(feed.next_poll(now), None, "drained ring schedules nothing");
        assert_eq!(feed.events_emitted(), 2);
        assert_eq!(feed.polls_executed(), 1);
    }

    #[test]
    fn pre_ring_filter_counts_rejections_as_drops() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            for i in 0..10u32 {
                // Half inside the watched prefix, half elsewhere.
                let p = if i % 2 == 0 {
                    "10.0.0.0/24"
                } else {
                    "198.51.100.0/24"
                };
                w.write(&route_monitoring(p, &[174, 666], i as u64))
                    .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
        });
        let config = LiveFeedConfig {
            filter: Some(FeedFilter::any().prefix(Prefix::from_str("10.0.0.0/23").unwrap())),
            ..LiveFeedConfig::default()
        };
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), config);
        writer.join().unwrap();
        wait_until(|| feed.stats().decoded == 10);
        let stats = feed.stats();
        assert_eq!(stats.filtered, 5);
        assert_eq!(stats.pending, 5, "rejected events never reach the ring");
        assert_eq!(feed.dropped_events(), 5);
        assert_eq!(feed.shed_events(), 0);
    }

    #[test]
    fn stalled_consumer_sheds_oldest_bounded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            for i in 0..200u64 {
                w.write(&route_monitoring("10.0.0.0/24", &[174, 666], i))
                    .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
        });
        let config = LiveFeedConfig {
            ring_capacity: 16,
            ..LiveFeedConfig::default()
        };
        let mut feed = BmpLiveFeed::connect("bmp0", addr.to_string(), config);
        writer.join().unwrap();
        wait_until(|| feed.stats().decoded == 200);
        let stats = feed.stats();
        assert_eq!(stats.pending, 16, "ring memory is bounded at capacity");
        assert_eq!(stats.shed, 184, "everything beyond capacity was shed");
        assert_eq!(feed.dropped_events(), 184);
        // The newest observation survived the stall.
        let evs = feed.poll(SimTime::from_secs(1), &EmptyRibView, &mut SimRng::new(1));
        assert_eq!(evs.last().unwrap().observed_at, SimTime::from_micros(199));
    }

    #[test]
    fn corrupt_framing_disconnects_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.0.0/24", &[174, 666], 1))
                .unwrap();
            let mut bytes = w.into_bytes();
            bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0]);
            sock.write_all(&bytes).unwrap();
            // Keep the socket open: the feed must bail on the corrupt
            // framing itself, not on EOF.
            std::thread::sleep(Duration::from_millis(300));
        });
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        wait_until(|| feed.stats().disconnected);
        let stats = feed.stats();
        assert_eq!(stats.decoded, 1, "events before the corruption were kept");
        assert!(stats.diagnostics >= 1);
        assert!(!feed.is_live());
        writer.join().unwrap();
    }

    #[test]
    fn drop_while_connecting_does_not_hang() {
        // No listener: the feed sits in the connect-retry loop. Drop
        // must terminate the thread promptly.
        let feed = BmpLiveFeed::connect("bmp0", "127.0.0.1:1", LiveFeedConfig::default());
        std::thread::sleep(Duration::from_millis(30));
        drop(feed); // must not hang
    }

    #[test]
    fn transport_loss_reconnects_with_backoff() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            // First session: one event, then EOF (collector restart).
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.0.0/24", &[174, 666], 1))
                .unwrap();
            sock.write_all(w.as_bytes()).unwrap();
            drop(sock);
            // Second session once the feed re-dials.
            let (mut sock, _) = listener.accept().unwrap();
            let mut w = BmpWriter::new();
            w.write(&route_monitoring("10.0.1.0/24", &[174, 667], 2))
                .unwrap();
            sock.write_all(w.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(150));
        });
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        wait_until(|| feed.stats().decoded == 2);
        let stats = feed.stats();
        assert_eq!(stats.reconnects, 1, "one re-established session");
        assert!(
            feed.is_live(),
            "a lost transport keeps the feed alive (it re-dials)"
        );
        assert!(stats.connected);
        writer.join().unwrap();
    }

    #[test]
    fn stats_report_populates_peer_health() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let peer = PeerHeader::global(
                std::net::IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
                Asn(174),
                Ipv4Addr::new(10, 0, 0, 1),
                5_000_000,
            );
            let mut w = BmpWriter::new();
            // Two reports: counters replace, the second wins.
            for (rejected, adj_in) in [(3u64, 800_000u64), (5, 900_000)] {
                w.write(&artemis_bmp::BmpMessage::StatsReport {
                    peer,
                    stats: vec![
                        artemis_bmp::StatCounter {
                            stat_type: 0,
                            value: rejected,
                        },
                        artemis_bmp::StatCounter {
                            stat_type: 1,
                            value: 2,
                        },
                        artemis_bmp::StatCounter {
                            stat_type: 7,
                            value: adj_in,
                        },
                        artemis_bmp::StatCounter {
                            stat_type: 8,
                            value: adj_in - 1_000,
                        },
                        // An exotic stat type must pass through silently.
                        artemis_bmp::StatCounter {
                            stat_type: 13,
                            value: 77,
                        },
                    ],
                })
                .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(150));
        });
        let feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        wait_until(|| feed.stats().peers == 1);
        wait_until(|| feed.peer_health()[0].1.reports == 2);
        let (peer, health) = feed.peer_health()[0];
        assert_eq!(peer, Asn(174));
        assert_eq!(health.prefixes_rejected, 5, "second report replaces");
        assert_eq!(health.duplicate_updates, 2);
        assert_eq!(health.adj_rib_in, 900_000);
        assert_eq!(health.loc_rib, 899_000);
        assert_eq!(health.peer_downs, 0);
        let wire = feed.wire_health().expect("wire feed reports health");
        assert_eq!(wire.peers.len(), 1);
        writer.join().unwrap();
    }

    #[test]
    fn peer_down_queues_purge_signal_once() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let peer = PeerHeader::global(
                std::net::IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
                Asn(174),
                Ipv4Addr::new(10, 0, 0, 1),
                5_000_000,
            );
            let mut w = BmpWriter::new();
            // The same peer flaps twice before the pipeline drains the
            // signals: one purge is enough (health still counts both).
            for _ in 0..2 {
                w.write(&artemis_bmp::BmpMessage::PeerDown {
                    peer,
                    reason: 1,
                    data: Vec::new(),
                })
                .unwrap();
            }
            sock.write_all(w.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(150));
        });
        let mut feed = BmpLiveFeed::connect("bmp0", addr.to_string(), LiveFeedConfig::default());
        wait_until(|| {
            feed.peer_health()
                .first()
                .is_some_and(|(_, h)| h.peer_downs == 2)
        });
        assert_eq!(feed.take_peer_downs(), vec![Asn(174)], "deduped signal");
        assert!(
            feed.take_peer_downs().is_empty(),
            "draining is destructive — the purge applies once"
        );
        writer.join().unwrap();
    }
}
