//! The slow baseline pipelines: batched update archives and periodic
//! full-RIB dumps (RouteViews / RIPE RIS style).
//!
//! These are what made pre-ARTEMIS detection slow (paper §1, claim C5):
//! an update only becomes visible when its 15-minute batch is
//! published; a RIB-based detector sees state only every ~2 hours.
//! Both feeds also write genuine MRT bytes ([`artemis_mrt`]) so the
//! ingestion path of the baseline detectors is format-faithful.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
use artemis_bgpsim::RouteChange;
use artemis_mrt::{
    Bgp4mpMessage, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRecord,
};
use artemis_simnet::{SimDuration, SimRng, SimTime};
use std::net::Ipv4Addr;

/// Batched update archive: updates observed at vantage points become
/// visible at the end of their batch window plus a publish delay.
pub struct ArchiveUpdatesFeed {
    name: String,
    peers: Vec<Asn>,
    /// Batch window (paper: 15 minutes).
    pub batch_period: SimDuration,
    /// Additional processing/publishing delay after the window closes.
    pub publish_delay: SimDuration,
    emitted: u64,
    mrt: MrtWriter,
    mrt_records: u64,
}

impl ArchiveUpdatesFeed {
    /// RouteViews-style: 15-minute batches, 60 s publish delay.
    pub fn route_views(peers: Vec<Asn>) -> Self {
        ArchiveUpdatesFeed {
            name: "archive-updates".into(),
            peers,
            batch_period: SimDuration::from_mins(15),
            publish_delay: SimDuration::from_secs(60),
            emitted: 0,
            mrt: MrtWriter::new(),
            mrt_records: 0,
        }
    }

    /// The MRT bytes accumulated so far (BGP4MP records).
    pub fn mrt_bytes(&self) -> &[u8] {
        self.mrt.as_bytes()
    }

    /// Number of MRT records written.
    pub fn mrt_records(&self) -> u64 {
        self.mrt_records
    }

    fn batch_end(&self, t: SimTime) -> SimTime {
        let period = self.batch_period.as_micros().max(1);
        let idx = t.as_micros() / period;
        SimTime::from_micros((idx + 1) * period) + self.publish_delay
    }
}

impl FeedSource for ArchiveUpdatesFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::ArchiveUpdates
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        change: &RouteChange,
        _rng: &mut SimRng,
        out: &mut Vec<FeedEvent>,
    ) {
        if !self.peers.contains(&change.asn) {
            return;
        }
        let visible = self.batch_end(change.time);
        let (as_path, origin_as) = match &change.new {
            Some(best) => (Some(best.as_path.prepend(change.asn)), Some(best.origin_as)),
            None => (None, None),
        };
        // Write the genuine MRT record for this observation.
        let message = match (&as_path, &change.new) {
            (Some(path), Some(_)) => {
                let attrs = PathAttributes::with_path(
                    path.clone(),
                    std::net::IpAddr::V4(Ipv4Addr::from(change.asn.value())),
                );
                artemis_bgp::BgpMessage::Update(UpdateMessage::announce(attrs, vec![change.prefix]))
            }
            _ => artemis_bgp::BgpMessage::Update(UpdateMessage::withdraw(vec![change.prefix])),
        };
        let rec = MrtRecord::Bgp4mp {
            timestamp: change.time.as_micros().checked_div(1_000_000).unwrap_or(0) as u32,
            microseconds: Some((change.time.as_micros() % 1_000_000) as u32),
            message: Bgp4mpMessage {
                peer_as: change.asn,
                local_as: Asn(64_999),
                peer_ip: std::net::IpAddr::V4(Ipv4Addr::from(change.asn.value())),
                local_ip: std::net::IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                message,
            },
        };
        if self.mrt.write(&rec).is_ok() {
            self.mrt_records += 1;
        }
        self.emitted += 1;
        out.push(FeedEvent {
            emitted_at: visible,
            observed_at: change.time,
            source: FeedKind::ArchiveUpdates,
            collector: self.name.clone(),
            vantage: change.asn,
            prefix: change.prefix,
            as_path,
            origin_as,
            raw: None,
        });
    }

    fn next_poll(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    fn poll(&mut self, _at: SimTime, _view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        Vec::new()
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn archive_bytes(&self) -> Option<&[u8]> {
        Some(self.mrt_bytes())
    }
}

/// Periodic full-RIB snapshots: the slowest baseline (paper: ~2 h).
pub struct ArchiveRibFeed {
    name: String,
    peers: Vec<Asn>,
    /// Snapshot period (paper: 2 hours).
    pub rib_period: SimDuration,
    /// Publish delay after the snapshot instant.
    pub publish_delay: SimDuration,
    next_dump: SimTime,
    monitored: Vec<Prefix>,
    emitted: u64,
    dumps_taken: u64,
    last_dump_mrt: Vec<u8>,
}

impl ArchiveRibFeed {
    /// RouteViews-style: 2-hour RIBs, 5-minute publish delay. The
    /// first dump happens one period in (a fresh hijack always waits).
    pub fn route_views(peers: Vec<Asn>, monitored: Vec<Prefix>) -> Self {
        let period = SimDuration::from_mins(120);
        ArchiveRibFeed {
            name: "archive-rib".into(),
            peers,
            rib_period: period,
            publish_delay: SimDuration::from_mins(5),
            next_dump: SimTime::ZERO + period,
            monitored,
            emitted: 0,
            dumps_taken: 0,
            last_dump_mrt: Vec::new(),
        }
    }

    /// Override the snapshot period (first dump moves accordingly).
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.rib_period = period;
        self.next_dump = SimTime::ZERO + period;
        self
    }

    /// MRT bytes of the most recent dump (TABLE_DUMP_V2).
    pub fn last_dump_mrt(&self) -> &[u8] {
        &self.last_dump_mrt
    }

    /// Number of snapshots taken.
    pub fn dumps_taken(&self) -> u64 {
        self.dumps_taken
    }
}

impl FeedSource for ArchiveRibFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::ArchiveRib
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        _change: &RouteChange,
        _rng: &mut SimRng,
        _out: &mut Vec<FeedEvent>,
    ) {
        // snapshot-based
    }

    fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        Some(self.next_dump.max(now))
    }

    fn poll(&mut self, at: SimTime, view: &dyn RibView, _rng: &mut SimRng) -> Vec<FeedEvent> {
        if at < self.next_dump {
            return Vec::new();
        }
        self.next_dump = at + self.rib_period;
        self.dumps_taken += 1;
        let visible = at + self.publish_delay;
        let mut out = Vec::new();

        // Build the MRT dump alongside the events.
        let mut writer = MrtWriter::new();
        let table = PeerIndexTable {
            collector_id: Ipv4Addr::new(198, 51, 100, 1),
            view_name: "artemis-sim".into(),
            peers: self
                .peers
                .iter()
                .map(|a| PeerEntry {
                    bgp_id: Ipv4Addr::from(a.value()),
                    addr: std::net::IpAddr::V4(Ipv4Addr::from(a.value())),
                    asn: *a,
                })
                .collect(),
        };
        let ts = (at.as_micros() / 1_000_000) as u32;
        let _ = writer.write(&MrtRecord::PeerIndex {
            timestamp: ts,
            table,
        });

        let mut seq = 0u32;
        for (peer_idx, peer) in self.peers.iter().enumerate() {
            for (prefix, best) in view.loc_rib(*peer) {
                let relevant = self
                    .monitored
                    .iter()
                    .any(|m| m.contains(prefix) || prefix.contains(*m));
                if !relevant {
                    continue;
                }
                let path: AsPath = best.as_path.prepend(*peer);
                let attrs = PathAttributes::with_path(
                    path.clone(),
                    std::net::IpAddr::V4(Ipv4Addr::from(peer.value())),
                );
                let _ = writer.write(&MrtRecord::Rib {
                    timestamp: ts,
                    rib: RibRecord {
                        sequence: seq,
                        prefix,
                        entries: vec![RibEntry {
                            peer_index: peer_idx as u16,
                            originated_time: ts,
                            attrs,
                        }],
                    },
                });
                seq += 1;
                out.push(FeedEvent {
                    emitted_at: visible,
                    observed_at: at,
                    source: FeedKind::ArchiveRib,
                    collector: self.name.clone(),
                    vantage: *peer,
                    prefix,
                    as_path: Some(path),
                    origin_as: Some(best.origin_as),
                    raw: None,
                });
            }
        }
        self.last_dump_mrt = writer.into_bytes();
        self.emitted += out.len() as u64;
        out
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn archive_bytes(&self) -> Option<&[u8]> {
        Some(self.last_dump_mrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgpsim::BestRoute;
    use artemis_mrt::MrtReader;
    use std::collections::BTreeMap;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn change(asn: u32, t_secs: u64, origin: u32) -> RouteChange {
        RouteChange {
            time: SimTime::from_secs(t_secs),
            asn: Asn(asn),
            prefix: pfx("10.0.0.0/23"),
            old: None,
            new: Some(BestRoute {
                as_path: AsPath::from_sequence([3356u32, origin]),
                origin_as: Asn(origin),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        }
    }

    #[test]
    fn updates_become_visible_at_batch_end() {
        let mut feed = ArchiveUpdatesFeed::route_views(vec![Asn(174)]);
        let mut rng = SimRng::new(1);
        // Observed at t=100s; 15-min batch ends at 900s; +60s publish.
        let evs = feed.on_route_change(&change(174, 100, 65001), &mut rng);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].emitted_at, SimTime::from_secs(960));
        // Observed at t=901s -> next batch at 1800s (+60s).
        let evs = feed.on_route_change(&change(174, 901, 65001), &mut rng);
        assert_eq!(evs[0].emitted_at, SimTime::from_secs(1_860));
    }

    #[test]
    fn non_peer_changes_ignored() {
        let mut feed = ArchiveUpdatesFeed::route_views(vec![Asn(174)]);
        let mut rng = SimRng::new(1);
        assert!(feed
            .on_route_change(&change(999, 1, 2), &mut rng)
            .is_empty());
    }

    #[test]
    fn updates_feed_writes_parsable_mrt() {
        let mut feed = ArchiveUpdatesFeed::route_views(vec![Asn(174)]);
        let mut rng = SimRng::new(1);
        feed.on_route_change(&change(174, 100, 65001), &mut rng);
        let mut c = change(174, 101, 65001);
        c.new = None; // withdrawal
        feed.on_route_change(&c, &mut rng);
        let records = MrtReader::new(feed.mrt_bytes()).read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(feed.mrt_records(), 2);
        match &records[0] {
            MrtRecord::Bgp4mp { message, .. } => {
                assert_eq!(message.peer_as, Asn(174));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    struct FakeView {
        ribs: BTreeMap<Asn, Vec<(Prefix, BestRoute)>>,
    }
    impl RibView for FakeView {
        fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<BestRoute> {
            self.ribs
                .get(&asn)?
                .iter()
                .find(|(p, _)| *p == prefix)
                .map(|(_, b)| b.clone())
        }
        fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
            self.ribs.get(&asn).cloned().unwrap_or_default()
        }
    }

    fn fake_view() -> FakeView {
        let mut ribs = BTreeMap::new();
        ribs.insert(
            Asn(174),
            vec![
                (
                    pfx("10.0.0.0/23"),
                    BestRoute {
                        as_path: AsPath::from_sequence([3356u32, 666]),
                        origin_as: Asn(666),
                        neighbor: Some(Asn(3356)),
                        learned_from: Some(artemis_topology::RelKind::Provider),
                        local_pref: 100,
                    },
                ),
                (
                    pfx("203.0.113.0/24"),
                    BestRoute {
                        as_path: AsPath::from_sequence([2914u32, 65009]),
                        origin_as: Asn(65009),
                        neighbor: Some(Asn(2914)),
                        learned_from: Some(artemis_topology::RelKind::Peer),
                        local_pref: 200,
                    },
                ),
            ],
        );
        FakeView { ribs }
    }

    #[test]
    fn rib_feed_dumps_on_schedule() {
        let mut feed = ArchiveRibFeed::route_views(vec![Asn(174)], vec![pfx("10.0.0.0/23")]);
        let mut rng = SimRng::new(1);
        let first = feed.next_poll(SimTime::ZERO).unwrap();
        assert_eq!(first, SimTime::ZERO + SimDuration::from_mins(120));
        let evs = feed.poll(first, &fake_view(), &mut rng);
        assert_eq!(evs.len(), 1, "only the monitored prefix is relevant");
        assert_eq!(evs[0].origin_as, Some(Asn(666)));
        assert_eq!(
            evs[0].emitted_at,
            first + SimDuration::from_mins(5),
            "publish delay applies"
        );
        assert_eq!(feed.dumps_taken(), 1);
        // Next dump two hours later.
        assert_eq!(
            feed.next_poll(first).unwrap(),
            first + SimDuration::from_mins(120)
        );
    }

    #[test]
    fn rib_dump_mrt_is_parsable() {
        let mut feed = ArchiveRibFeed::route_views(vec![Asn(174)], vec![pfx("10.0.0.0/23")]);
        let mut rng = SimRng::new(1);
        let at = feed.next_poll(SimTime::ZERO).unwrap();
        feed.poll(at, &fake_view(), &mut rng);
        let records = MrtReader::new(feed.last_dump_mrt()).read_all().unwrap();
        assert!(matches!(records[0], MrtRecord::PeerIndex { .. }));
        assert!(
            matches!(&records[1], MrtRecord::Rib { rib, .. } if rib.prefix == pfx("10.0.0.0/23"))
        );
    }

    #[test]
    fn early_poll_is_a_noop() {
        let mut feed = ArchiveRibFeed::route_views(vec![Asn(174)], vec![pfx("10.0.0.0/23")]);
        let mut rng = SimRng::new(1);
        assert!(feed
            .poll(SimTime::from_secs(10), &fake_view(), &mut rng)
            .is_empty());
        assert_eq!(feed.dumps_taken(), 0);
    }

    #[test]
    fn with_period_override() {
        let feed =
            ArchiveRibFeed::route_views(vec![], vec![]).with_period(SimDuration::from_mins(10));
        assert_eq!(
            feed.next_poll(SimTime::ZERO).unwrap(),
            SimTime::ZERO + SimDuration::from_mins(10)
        );
    }
}
