//! Serializable feed descriptions for wire-level feed attachment.
//!
//! `ServiceCommand::AttachFeed` used to carry a `Box<dyn FeedSource>`,
//! which made the command type impossible to serialize — a daemon
//! cannot accept "a trait object" over HTTP. A [`FeedSpec`] is the
//! wire-ready replacement: a plain description of a runtime-attachable
//! feed that [`FeedSpec::build`] turns into the real [`FeedSource`] on
//! the receiving side. Both the in-process API and the HTTP API attach
//! feeds through the same spec, so the two paths construct identical
//! feeds by construction.
//!
//! Stream feeds (RIS-live / BGPmon style) and live BMP wire sessions
//! are attachable at runtime through a spec: archive, periscope, and
//! MRT-replay feeds need engine views or raw archive bytes that do not
//! travel over a control-plane API — drivers attach those at assembly
//! time via `Pipeline::attach_feed`.

use crate::filter::FeedFilter;
use crate::live::{BmpLiveFeed, LiveFeedConfig};
use crate::stream::StreamFeed;
use crate::vantage::group_into_collectors;
use crate::FeedSource;
use artemis_bgp::Asn;
use artemis_simnet::LatencyModel;
use serde::{Deserialize, Serialize};

/// A serializable description of a runtime-attachable feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeedSpec {
    /// A RIS-live style streaming feed.
    RisLive {
        /// Collector-name prefix (`rrc` produces `rrc00`, `rrc01`, …).
        collector_prefix: String,
        /// Vantage-point ASes distributed round-robin over collectors.
        vantage_points: Vec<Asn>,
        /// Number of collector groups (min 1).
        collectors: usize,
        /// Constant export delay in seconds; `None` keeps the feed
        /// preset's default delay model.
        export_delay_secs: Option<u64>,
    },
    /// A BGPmon style streaming feed.
    BgpMon {
        /// Collector-name prefix.
        collector_prefix: String,
        /// Vantage-point ASes distributed round-robin over collectors.
        vantage_points: Vec<Asn>,
        /// Number of collector groups (min 1).
        collectors: usize,
        /// Constant export delay in seconds; `None` keeps the default.
        export_delay_secs: Option<u64>,
    },
    /// A live RFC 7854 BMP session off a real TCP socket.
    BmpLive {
        /// Feed instance name (also the reported collector name).
        name: String,
        /// Collector address (`host:port`) the feed dials; the reader
        /// thread retries until the collector accepts.
        addr: String,
        /// Backpressure ring capacity in events; `None` keeps the
        /// [`LiveFeedConfig`] default.
        ring_capacity: Option<usize>,
        /// Pre-ring filter evaluated on the reader thread; `None`
        /// keeps everything.
        filter: Option<FeedFilter>,
    },
}

impl FeedSpec {
    /// Shorthand for a single-collector RIS-live spec with the default
    /// delay model.
    pub fn ris_live(collector_prefix: impl Into<String>, vantage_points: Vec<Asn>) -> Self {
        FeedSpec::RisLive {
            collector_prefix: collector_prefix.into(),
            vantage_points,
            collectors: 1,
            export_delay_secs: None,
        }
    }

    /// Shorthand for a single-collector BGPmon spec with the default
    /// delay model.
    pub fn bgpmon(collector_prefix: impl Into<String>, vantage_points: Vec<Asn>) -> Self {
        FeedSpec::BgpMon {
            collector_prefix: collector_prefix.into(),
            vantage_points,
            collectors: 1,
            export_delay_secs: None,
        }
    }

    /// Construct the described feed. Deterministic: equal specs build
    /// feeds with identical behaviour, which is what makes the HTTP
    /// attach path lossless against the in-process one.
    pub fn build(&self) -> Box<dyn FeedSource> {
        match self {
            FeedSpec::RisLive {
                collector_prefix,
                vantage_points,
                collectors,
                export_delay_secs,
            } => {
                let mut feed = StreamFeed::ris_live(group_into_collectors(
                    collector_prefix,
                    vantage_points,
                    (*collectors).max(1),
                ));
                if let Some(s) = export_delay_secs {
                    feed = feed.with_export_delay(LatencyModel::const_secs(*s));
                }
                Box::new(feed)
            }
            FeedSpec::BgpMon {
                collector_prefix,
                vantage_points,
                collectors,
                export_delay_secs,
            } => {
                let mut feed = StreamFeed::bgpmon(group_into_collectors(
                    collector_prefix,
                    vantage_points,
                    (*collectors).max(1),
                ));
                if let Some(s) = export_delay_secs {
                    feed = feed.with_export_delay(LatencyModel::const_secs(*s));
                }
                Box::new(feed)
            }
            FeedSpec::BmpLive {
                name,
                addr,
                ring_capacity,
                filter,
            } => {
                let mut config = LiveFeedConfig {
                    filter: filter.clone(),
                    ..LiveFeedConfig::default()
                };
                if let Some(cap) = ring_capacity {
                    config.ring_capacity = *cap;
                }
                Box::new(BmpLiveFeed::connect(name.clone(), addr.clone(), config))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeedKind;

    #[test]
    fn specs_build_the_described_feed() {
        let spec = FeedSpec::ris_live("rrc", vec![Asn(174), Asn(3356)]);
        let feed = spec.build();
        assert_eq!(feed.kind(), FeedKind::RisLive);
        let spec = FeedSpec::BgpMon {
            collector_prefix: "bmp".into(),
            vantage_points: vec![Asn(174)],
            collectors: 2,
            export_delay_secs: Some(5),
        };
        assert_eq!(spec.build().kind(), FeedKind::BgpMon);
    }

    #[test]
    fn bmp_live_spec_builds_a_connecting_feed() {
        let spec = FeedSpec::BmpLive {
            name: "bmp0".into(),
            addr: "127.0.0.1:1".into(), // nothing listens: stays in retry
            ring_capacity: Some(64),
            filter: Some(FeedFilter::any().origin(Asn(65001))),
        };
        let feed = spec.build();
        assert_eq!(feed.kind(), FeedKind::BmpLive);
        assert_eq!(feed.name(), "bmp0");
        assert_eq!(feed.dropped_events(), 0);
        // Dropping the boxed feed terminates the connect-retry thread.
        drop(feed);

        let json = serde_json::to_string(&spec).unwrap();
        let back: FeedSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = FeedSpec::RisLive {
            collector_prefix: "rrc".into(),
            vantage_points: vec![Asn(174), Asn(3356)],
            collectors: 3,
            export_delay_secs: Some(7),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FeedSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn equal_specs_build_identical_feeds() {
        use artemis_simnet::SimRng;
        let spec = FeedSpec::ris_live("rrc", vec![Asn(174)]);
        let mut a = spec.build();
        let mut b = spec.build();
        let change = artemis_bgpsim::RouteChange {
            time: artemis_simnet::SimTime::from_secs(10),
            asn: Asn(174),
            prefix: "10.0.0.0/23".parse().unwrap(),
            old: None,
            new: Some(artemis_bgpsim::BestRoute {
                as_path: artemis_bgp::AsPath::from_sequence([3356u32, 65001]),
                origin_as: Asn(65001),
                neighbor: Some(Asn(3356)),
                learned_from: Some(artemis_topology::RelKind::Provider),
                local_pref: 100,
            }),
        };
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        a.on_route_change_into(&change, &mut SimRng::new(5), &mut ea);
        b.on_route_change_into(&change, &mut SimRng::new(5), &mut eb);
        assert_eq!(ea, eb);
    }
}
