//! Periscope-style Looking Glass querying (pull-based, rate-limited).
//!
//! Periscope [Giotsas et al., PAM 2016] unifies querying of public
//! looking glasses. LGs read *operational routers* directly — no
//! collector pipeline — so a poll that lands shortly after a routing
//! change can beat the streaming feeds; but polls are rate-limited, so
//! a poll that just missed the change pays a full period. That
//! trade-off (overhead vs detection speed, paper §2) is exactly what
//! this module models.

use crate::event::{FeedEvent, FeedKind};
use crate::source::{FeedSource, RibView};
use artemis_bgp::{Asn, Prefix};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};

/// One looking glass: a vantage AS we may query.
#[derive(Debug, Clone)]
pub struct LookingGlass {
    /// Identifier, e.g. `lg-ams-01`.
    pub name: String,
    /// The AS whose operational routers this LG exposes.
    pub vantage: Asn,
    /// Minimum interval between queries (rate limit).
    pub min_interval: SimDuration,
    /// Response latency model (HTTP + router CLI).
    pub response_latency: LatencyModel,
}

impl LookingGlass {
    /// An LG with a 60 s rate limit and 1–4 s response time — typical
    /// for public web looking glasses.
    pub fn typical(name: impl Into<String>, vantage: Asn) -> Self {
        LookingGlass {
            name: name.into(),
            vantage,
            min_interval: SimDuration::from_secs(60),
            response_latency: LatencyModel::uniform_millis(1_000, 4_000),
        }
    }
}

struct LgState {
    lg: LookingGlass,
    next_query: SimTime,
}

/// The Periscope client: polls a set of LGs for a set of monitored
/// prefixes on a staggered schedule.
pub struct PeriscopeFeed {
    name: String,
    lgs: Vec<LgState>,
    monitored: Vec<Prefix>,
    queries_issued: u64,
    emitted: u64,
}

impl PeriscopeFeed {
    /// Build a client. Query start times are staggered across the
    /// first polling period so LGs do not fire in lock-step (this is
    /// also what spreads detection delay between 0 and `min_interval`).
    pub fn new(lgs: Vec<LookingGlass>, monitored: Vec<Prefix>, rng: &mut SimRng) -> Self {
        let states = lgs
            .into_iter()
            .map(|lg| {
                let phase_us = if lg.min_interval.is_zero() {
                    0
                } else {
                    rng.range_u64(0, lg.min_interval.as_micros())
                };
                LgState {
                    next_query: SimTime::ZERO + SimDuration::from_micros(phase_us),
                    lg,
                }
            })
            .collect();
        PeriscopeFeed {
            name: "periscope".into(),
            lgs: states,
            monitored,
            queries_issued: 0,
            emitted: 0,
        }
    }

    /// Add a prefix to the monitored set (e.g. the de-aggregated /24s
    /// once mitigation starts).
    pub fn monitor_prefix(&mut self, prefix: Prefix) {
        if !self.monitored.contains(&prefix) {
            self.monitored.push(prefix);
        }
    }

    /// Total queries issued (the "monitoring overhead" axis of E3).
    pub fn queries_issued(&self) -> u64 {
        self.queries_issued
    }

    /// Number of looking glasses.
    pub fn lg_count(&self) -> usize {
        self.lgs.len()
    }
}

impl FeedSource for PeriscopeFeed {
    fn kind(&self) -> FeedKind {
        FeedKind::Periscope
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_route_change_into(
        &mut self,
        _change: &artemis_bgpsim::RouteChange,
        _rng: &mut SimRng,
        _out: &mut Vec<FeedEvent>,
    ) {
        // purely pull-based
    }

    fn next_poll(&self, now: SimTime) -> Option<SimTime> {
        self.lgs.iter().map(|s| s.next_query.max(now)).min()
    }

    fn poll(&mut self, at: SimTime, view: &dyn RibView, rng: &mut SimRng) -> Vec<FeedEvent> {
        let mut out = Vec::new();
        for state in &mut self.lgs {
            if state.next_query > at {
                continue;
            }
            state.next_query = at + state.lg.min_interval;
            self.queries_issued += 1;
            let latency = state.lg.response_latency.sample(rng);
            // An LG query returns the router's current best paths for
            // the queried prefix *and its more-specifics* ("show ip bgp
            // ... longer-prefixes") — without the more-specifics a /24
            // sub-prefix hijack of a monitored /23 would be invisible.
            let rib = view.loc_rib(state.lg.vantage);
            for target in &self.monitored {
                for (prefix, best) in &rib {
                    if !target.contains(*prefix) && !prefix.contains(*target) {
                        continue;
                    }
                    out.push(FeedEvent {
                        emitted_at: at + latency,
                        observed_at: at,
                        source: FeedKind::Periscope,
                        collector: state.lg.name.clone(),
                        vantage: state.lg.vantage,
                        prefix: *prefix,
                        as_path: Some(best.as_path.prepend(state.lg.vantage)),
                        origin_as: Some(best.origin_as),
                        raw: None,
                    });
                }
            }
        }
        self.emitted += out.len() as u64;
        out
    }

    fn events_emitted(&self) -> u64 {
        self.emitted
    }

    fn polls_executed(&self) -> u64 {
        self.queries_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::AsPath;
    use artemis_bgpsim::BestRoute;
    use std::collections::BTreeMap;
    use std::str::FromStr;

    struct FakeView {
        ribs: BTreeMap<Asn, Vec<(Prefix, BestRoute)>>,
    }

    impl RibView for FakeView {
        fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<BestRoute> {
            self.ribs
                .get(&asn)?
                .iter()
                .find(|(p, _)| *p == prefix)
                .map(|(_, b)| b.clone())
        }
        fn loc_rib(&self, asn: Asn) -> Vec<(Prefix, BestRoute)> {
            self.ribs.get(&asn).cloned().unwrap_or_default()
        }
    }

    fn best(origin: u32) -> BestRoute {
        BestRoute {
            as_path: AsPath::from_sequence([3356u32, origin]),
            origin_as: Asn(origin),
            neighbor: Some(Asn(3356)),
            learned_from: Some(artemis_topology::RelKind::Provider),
            local_pref: 100,
        }
    }

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn view() -> FakeView {
        let mut ribs = BTreeMap::new();
        ribs.insert(
            Asn(174),
            vec![
                (pfx("10.0.0.0/23"), best(65001)),
                (pfx("10.0.0.0/24"), best(666)), // sub-prefix hijack!
                (pfx("192.0.2.0/24"), best(65009)),
            ],
        );
        FakeView { ribs }
    }

    fn lg(interval: u64) -> LookingGlass {
        LookingGlass {
            name: "lg-01".into(),
            vantage: Asn(174),
            min_interval: SimDuration::from_secs(interval),
            response_latency: LatencyModel::const_secs(2),
        }
    }

    #[test]
    fn poll_returns_monitored_and_more_specifics() {
        let mut rng = SimRng::new(1);
        let mut feed = PeriscopeFeed::new(vec![lg(60)], vec![pfx("10.0.0.0/23")], &mut rng);
        let at = feed.next_poll(SimTime::ZERO).unwrap();
        let evs = feed.poll(at, &view(), &mut rng);
        let prefixes: Vec<Prefix> = evs.iter().map(|e| e.prefix).collect();
        assert!(prefixes.contains(&pfx("10.0.0.0/23")));
        assert!(
            prefixes.contains(&pfx("10.0.0.0/24")),
            "sub-prefix hijack must be visible to LG queries"
        );
        assert!(!prefixes.contains(&pfx("192.0.2.0/24")));
        // Response latency reflected in emission time.
        assert!(evs
            .iter()
            .all(|e| e.emitted_at == at + SimDuration::from_secs(2)));
    }

    #[test]
    fn rate_limiting_enforced() {
        let mut rng = SimRng::new(2);
        let mut feed = PeriscopeFeed::new(vec![lg(60)], vec![pfx("10.0.0.0/23")], &mut rng);
        let first = feed.next_poll(SimTime::ZERO).unwrap();
        feed.poll(first, &view(), &mut rng);
        let second = feed.next_poll(first).unwrap();
        assert_eq!(second, first + SimDuration::from_secs(60));
        assert_eq!(feed.queries_issued(), 1);
    }

    #[test]
    fn phases_are_staggered() {
        let mut rng = SimRng::new(3);
        let lgs: Vec<LookingGlass> = (0..8)
            .map(|i| LookingGlass {
                name: format!("lg-{i}"),
                vantage: Asn(100 + i),
                min_interval: SimDuration::from_secs(60),
                response_latency: LatencyModel::const_secs(1),
            })
            .collect();
        let feed = PeriscopeFeed::new(lgs, vec![pfx("10.0.0.0/23")], &mut rng);
        let phases: std::collections::BTreeSet<SimTime> =
            feed.lgs.iter().map(|s| s.next_query).collect();
        assert!(phases.len() >= 6, "phases should be spread out");
    }

    #[test]
    fn monitor_prefix_extends_queries() {
        let mut rng = SimRng::new(4);
        let mut feed = PeriscopeFeed::new(vec![lg(60)], vec![pfx("10.0.0.0/23")], &mut rng);
        feed.monitor_prefix(pfx("192.0.2.0/24"));
        feed.monitor_prefix(pfx("192.0.2.0/24")); // idempotent
        let at = feed.next_poll(SimTime::ZERO).unwrap();
        let evs = feed.poll(at, &view(), &mut rng);
        assert!(evs.iter().any(|e| e.prefix == pfx("192.0.2.0/24")));
    }

    #[test]
    fn empty_lg_set_never_polls() {
        let mut rng = SimRng::new(5);
        let feed = PeriscopeFeed::new(vec![], vec![pfx("10.0.0.0/23")], &mut rng);
        assert_eq!(feed.next_poll(SimTime::ZERO), None);
        assert_eq!(feed.lg_count(), 0);
    }
}
