//! Wire tests for the cursor-based event stream: independent HTTP
//! consumers replay identical histories from their own cursors, ring
//! overruns surface as `missed` over the wire, and a long-poll parks
//! until an event arrives.

use artemis_bgp::{Asn, Prefix};
use artemis_controller::Controller;
use artemis_core::{
    ArtemisConfig, ArtemisService, EventCursor, MitigationPolicy, OwnedPrefix, Pipeline,
    ServiceCommand,
};
use artemis_simnet::{LatencyModel, SimRng, SimTime};
use artemisd::{CtlClient, Daemon, DaemonConfig};
use std::str::FromStr;
use std::time::{Duration, Instant};

fn pfx(s: &str) -> Prefix {
    Prefix::from_str(s).unwrap()
}

fn service_with_capacity(capacity: usize) -> ArtemisService {
    let config = ArtemisConfig::new(
        Asn(65001),
        vec![OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(65001))],
    );
    let pipeline = Pipeline::bare(config, [Asn(174), Asn(3356)].into_iter().collect())
        .with_event_capacity(capacity);
    let controller = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
    ArtemisService::new(pipeline, controller)
}

/// Six commands producing six events: onboard, policy change, pause,
/// resume, offboard, pause again.
fn drive_six_events(client: &CtlClient) {
    let script: Vec<(ServiceCommand, u64)> = vec![
        (
            ServiceCommand::AddOwnedPrefix {
                owned: OwnedPrefix::new(pfx("172.16.0.0/23"), Asn(65001)),
                policy: None,
            },
            1,
        ),
        (
            ServiceCommand::SetMitigationPolicy {
                prefix: pfx("10.0.0.0/23"),
                policy: MitigationPolicy::ConfirmFirst,
            },
            2,
        ),
        (ServiceCommand::Pause, 3),
        (ServiceCommand::Resume, 4),
        (
            ServiceCommand::RemoveOwnedPrefix {
                prefix: pfx("172.16.0.0/23"),
            },
            5,
        ),
        (ServiceCommand::Pause, 6),
    ];
    for (cmd, at) in script {
        client
            .apply(cmd, Some(SimTime::from_secs(at)))
            .expect("command failed");
    }
}

#[test]
fn independent_consumers_replay_identical_histories() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        service_with_capacity(1024),
        DaemonConfig::default(),
    )
    .unwrap();
    let addr = daemon.addr().to_string();
    drive_six_events(&CtlClient::new(addr.clone()));

    // Consumer A reads the whole stream in one poll; consumer B (its
    // own connection) reads it in two, starting over from START.
    let a = CtlClient::new(addr.clone());
    let b = CtlClient::new(addr);
    let full = a.events(EventCursor::START, 0).expect("consumer A poll");
    assert_eq!(full.events.len(), 6);
    assert_eq!(full.missed, 0);

    let b1 = b.events(EventCursor::START, 0).expect("consumer B poll 1");
    let b2 = b.events(b1.next, 0).expect("consumer B poll 2");
    assert!(b2.events.is_empty(), "B already consumed everything");
    assert_eq!(b1.next, full.next);
    assert_eq!(
        serde_json::to_string(&full.events).unwrap(),
        serde_json::to_string(&b1.events).unwrap(),
        "two consumers must replay byte-identical histories"
    );

    // Replaying from an interior cursor yields exactly the suffix.
    let mid = b.events(EventCursor::START, 0).unwrap();
    let suffix_start = mid.events.len() - 2;
    let tail_cursor: EventCursor =
        serde_json::from_str(&(suffix_start as u64).to_string()).unwrap();
    let tail = a.events(tail_cursor, 0).expect("suffix poll");
    assert_eq!(tail.events.len(), 2);
    assert_eq!(
        serde_json::to_string(&tail.events).unwrap(),
        serde_json::to_string(&mid.events[suffix_start..].to_vec()).unwrap()
    );

    daemon.shutdown();
}

#[test]
fn ring_overrun_reports_missed_over_the_wire() {
    // Capacity 4, six events: the two oldest are evicted before a
    // START consumer ever polls.
    let daemon = Daemon::start(
        "127.0.0.1:0",
        service_with_capacity(4),
        DaemonConfig::default(),
    )
    .unwrap();
    let client = CtlClient::new(daemon.addr().to_string());
    drive_six_events(&client);

    let batch = client.events(EventCursor::START, 0).expect("poll failed");
    assert_eq!(batch.missed, 2, "two evicted events must be reported");
    assert_eq!(batch.events.len(), 4, "only the retained tail arrives");
    assert_eq!(batch.next.sequence(), 6);

    // A consumer already past the evicted region sees no loss.
    let caught_up = client.events(batch.next, 0).expect("tail poll");
    assert_eq!(caught_up.missed, 0);
    assert!(caught_up.events.is_empty());

    daemon.shutdown();
}

#[test]
fn longpoll_parks_until_an_event_arrives() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        service_with_capacity(1024),
        DaemonConfig::default(),
    )
    .unwrap();
    let addr = daemon.addr().to_string();
    let client = CtlClient::new(addr.clone());

    // Reach the current tail.
    let tail = client.events(EventCursor::START, 0).unwrap().next;

    // A second client fires a command shortly after the poll parks.
    let writer_addr = addr.clone();
    let writer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        CtlClient::new(writer_addr)
            .apply(ServiceCommand::Pause, Some(SimTime::from_secs(9)))
            .expect("pause failed");
    });

    let started = Instant::now();
    let batch = client.events(tail, 10_000).expect("long-poll failed");
    let waited = started.elapsed();
    writer.join().unwrap();

    assert_eq!(batch.events.len(), 1, "the pause event wakes the poll");
    assert!(
        waited >= Duration::from_millis(100),
        "poll must actually park, returned after {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(9),
        "poll must return on the event, not the timeout"
    );

    daemon.shutdown();
}
