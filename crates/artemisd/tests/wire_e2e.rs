//! End-to-end wire tests: every [`ServiceCommand`] variant travels
//! through the daemon's HTTP API with explicit service-clock stamps,
//! and the resulting incident-event history is byte-identical to an
//! in-process twin applying the same script. Also covers `/metrics`
//! content, the audit trail, and webhook alert delivery.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_controller::Controller;
use artemis_core::service::MitigationPhase;
use artemis_core::wire::CommandResult;
use artemis_core::{
    AlertId, ArtemisConfig, ArtemisService, CommandOutcome, EventCursor, MitigationPolicy,
    OwnedPrefix, Pipeline, ServiceCommand, ServiceError,
};
use artemis_feeds::{FeedEvent, FeedKind, FeedSpec};
use artemis_simnet::{LatencyModel, SimRng, SimTime};
use artemisd::daemon::AlertPayload;
use artemisd::{CtlClient, Daemon, DaemonConfig};
use std::str::FromStr;

fn pfx(s: &str) -> Prefix {
    Prefix::from_str(s).unwrap()
}

fn service() -> ArtemisService {
    let config = ArtemisConfig::new(
        Asn(65001),
        vec![OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(65001))],
    );
    let pipeline = Pipeline::bare(config, [Asn(174), Asn(3356)].into_iter().collect());
    let controller = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
    ArtemisService::new(pipeline, controller)
}

fn event(vp: u32, prefix: &str, path: &[u32], t: u64) -> FeedEvent {
    let as_path = AsPath::from_sequence(path.iter().copied());
    let origin = as_path.origin();
    FeedEvent {
        emitted_at: SimTime::from_secs(t),
        observed_at: SimTime::from_secs(t.saturating_sub(5)),
        source: FeedKind::RisLive,
        collector: "rrc00".into(),
        vantage: Asn(vp),
        prefix: pfx(prefix),
        as_path: Some(as_path),
        origin_as: origin,
        raw: None,
    }
}

/// Apply `cmd` over the wire and to the in-process twin at the same
/// instant; the two results must agree exactly.
fn apply_both(
    client: &CtlClient,
    twin: &mut ArtemisService,
    cmd: ServiceCommand,
    at_secs: u64,
) -> CommandResult {
    let at = SimTime::from_secs(at_secs);
    let wire = client
        .apply(cmd.clone(), Some(at))
        .expect("wire command failed");
    assert_eq!(wire.at, at, "daemon must honor the explicit at");
    let local = match twin.apply(cmd, at) {
        Ok(outcome) => CommandResult::Outcome(outcome),
        Err(error) => CommandResult::Rejected(error),
    };
    assert_eq!(wire.result, local, "wire and in-process outcomes differ");
    wire.result
}

#[test]
fn every_command_round_trips_with_identical_history() {
    let daemon = Daemon::start("127.0.0.1:0", service(), DaemonConfig::default()).unwrap();
    let client = CtlClient::new(daemon.addr().to_string());
    let mut twin = service();

    client.healthz().expect("daemon must be live");

    // 1–3: policy swap, onboarding, feed attach.
    let r = apply_both(
        &client,
        &mut twin,
        ServiceCommand::SetMitigationPolicy {
            prefix: pfx("10.0.0.0/23"),
            policy: MitigationPolicy::ConfirmFirst,
        },
        1,
    );
    assert!(matches!(r, CommandResult::Outcome(_)));
    apply_both(
        &client,
        &mut twin,
        ServiceCommand::AddOwnedPrefix {
            owned: OwnedPrefix::new(pfx("172.16.0.0/23"), Asn(65001)),
            policy: Some(MitigationPolicy::Auto),
        },
        2,
    );
    let attached = apply_both(
        &client,
        &mut twin,
        ServiceCommand::AttachFeed {
            feed: FeedSpec::ris_live("rrc", vec![Asn(174)]),
        },
        3,
    );
    let CommandResult::Outcome(CommandOutcome::FeedAttached { handle }) = attached else {
        panic!("expected FeedAttached, got {attached:?}");
    };

    // 4: a sub-prefix hijack arrives through both paths.
    let hijack = event(174, "10.0.0.0/23", &[174, 666], 45);
    let injected = client.inject(vec![hijack.clone()]).expect("inject failed");
    assert_eq!(injected.delivered, 1);
    assert_eq!(injected.alerts_raised, 1);
    twin.deliver(&hijack);

    // Mid-flight scrape: feed attached, incident pending confirmation.
    let metrics = client.metrics_text().expect("metrics scrape failed");
    assert!(metrics.contains("artemis_stage_batches_total{stage=\"drain\"}"));
    assert!(metrics.contains("artemis_stage_mean_batch_nanos{stage=\"classify\"}"));
    assert!(metrics.contains("artemis_workers 1"));
    assert!(metrics.contains("artemis_incidents{phase=\"pending_confirmation\"} 1"));
    assert!(metrics.contains(&format!("artemis_feed_queued_events{{feed=\"{handle}\"")));
    assert!(metrics.contains("artemis_events_delivered_total 1"));
    assert!(metrics.contains("artemis_audit_records_total 3"));

    // The raised alert has the same id on both sides.
    let status = client.status().expect("status failed");
    assert_eq!(status.incidents.len(), 1);
    assert_eq!(
        status.incidents[0].phase,
        MitigationPhase::PendingConfirmation
    );
    let alert = status.incidents[0].alert;
    assert_eq!(
        twin.status(SimTime::from_secs(50)).incidents[0].alert,
        alert
    );

    // 5–6: confirm executes the held plan once, then rejects.
    let confirmed = apply_both(
        &client,
        &mut twin,
        ServiceCommand::ConfirmMitigation { alert },
        60,
    );
    assert!(matches!(
        confirmed,
        CommandResult::Outcome(CommandOutcome::MitigationConfirmed { .. })
    ));
    let again = apply_both(
        &client,
        &mut twin,
        ServiceCommand::ConfirmMitigation { alert },
        61,
    );
    assert_eq!(
        again,
        CommandResult::Rejected(ServiceError::NothingPending(alert))
    );

    // 7–9: pause (twice; second rejects), resume.
    apply_both(&client, &mut twin, ServiceCommand::Pause, 62);
    let double_pause = apply_both(&client, &mut twin, ServiceCommand::Pause, 63);
    assert_eq!(
        double_pause,
        CommandResult::Rejected(ServiceError::AlreadyPaused)
    );
    apply_both(&client, &mut twin, ServiceCommand::Resume, 64);

    // 10–11: detach the feed once, then reject.
    let detached = apply_both(
        &client,
        &mut twin,
        ServiceCommand::DetachFeed { handle },
        65,
    );
    assert!(matches!(
        detached,
        CommandResult::Outcome(CommandOutcome::FeedDetached { .. })
    ));
    let redetached = apply_both(
        &client,
        &mut twin,
        ServiceCommand::DetachFeed { handle },
        66,
    );
    assert_eq!(
        redetached,
        CommandResult::Rejected(ServiceError::UnknownFeed(handle))
    );

    // 12–13: offboard once, then reject an unknown prefix.
    apply_both(
        &client,
        &mut twin,
        ServiceCommand::RemoveOwnedPrefix {
            prefix: pfx("172.16.0.0/23"),
        },
        67,
    );
    let unknown = apply_both(
        &client,
        &mut twin,
        ServiceCommand::RemoveOwnedPrefix {
            prefix: pfx("8.8.8.0/24"),
        },
        68,
    );
    assert_eq!(
        unknown,
        CommandResult::Rejected(ServiceError::UnknownPrefix(pfx("8.8.8.0/24")))
    );

    // The histories are byte-identical once serialized.
    let wire_history = client.events(EventCursor::START, 0).expect("events failed");
    let local_history = twin.poll_events(EventCursor::START);
    assert!(!wire_history.events.is_empty());
    assert_eq!(wire_history.missed, 0);
    assert_eq!(wire_history.next, local_history.next);
    assert_eq!(
        serde_json::to_string(&wire_history.events).unwrap(),
        serde_json::to_string(&local_history.events).unwrap(),
        "wire and in-process event histories must serialize identically"
    );

    // The audit trail recorded every command — accepted and rejected —
    // in order, with the explicit instants.
    let audit = client.audit(0).expect("audit failed");
    assert_eq!(audit.len(), 12, "12 commands were posted");
    assert_eq!(audit[0].at, SimTime::from_secs(1));
    assert_eq!(audit[11].at, SimTime::from_secs(68));
    let rejected: Vec<u64> = audit
        .iter()
        .filter(|r| !r.accepted())
        .map(|r| r.seq)
        .collect();
    assert_eq!(rejected, vec![4, 6, 9, 11], "exactly the four rejections");
    for (i, rec) in audit.iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "audit sequence is gapless");
    }

    daemon.shutdown();
}

#[test]
fn schema_version_mismatch_is_rejected() {
    let daemon = Daemon::start("127.0.0.1:0", service(), DaemonConfig::default()).unwrap();
    let http = minihttp::Client::new(daemon.addr().to_string());
    let body = "{\"schema_version\":999,\"at\":null,\"command\":\"Pause\"}";
    let resp = http
        .post("/v1/command", "application/json", body)
        .expect("request failed");
    assert_eq!(resp.status, 400);
    assert!(resp.body_utf8().contains("schema_version"));
    // Nothing was applied or audited.
    let client = CtlClient::new(daemon.addr().to_string());
    assert!(client.audit(0).unwrap().is_empty());
    daemon.shutdown();
}

#[test]
fn webhook_sink_receives_alert_payloads() {
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    // A capturing webhook receiver.
    let received: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver = minihttp::Server::bind("127.0.0.1:0").unwrap();
    let receiver_addr = receiver.local_addr().unwrap();
    let receiver_switch = receiver.shutdown_switch().unwrap();
    let store = Arc::clone(&received);
    let receiver_thread = std::thread::spawn(move || {
        let _ = receiver.serve(move |req| {
            if let Ok(body) = req.body_utf8() {
                store.lock().unwrap().push(body.to_string());
            }
            minihttp::Response::json("{}")
        });
    });

    let daemon = Daemon::start("127.0.0.1:0", service(), DaemonConfig::default()).unwrap();
    let client = CtlClient::new(daemon.addr().to_string());
    let sinks = client
        .add_webhook(&format!("http://{receiver_addr}/hook"))
        .expect("add-sink failed");
    assert_eq!(sinks.len(), 1);

    // Default policy is auto-mitigate: one hijack produces AlertRaised
    // and MitigationTriggered payloads.
    client
        .inject(vec![event(174, "10.0.0.0/23", &[174, 666], 45)])
        .expect("inject failed");

    let deadline = Instant::now() + Duration::from_secs(10);
    let payloads = loop {
        let got = received.lock().unwrap().clone();
        if got.len() >= 2 || Instant::now() >= deadline {
            break got;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(
        payloads.len() >= 2,
        "expected at least 2 alert payloads, got {}",
        payloads.len()
    );
    let first: AlertPayload = serde_json::from_str(&payloads[0]).expect("payload must parse");
    assert!(matches!(
        first.event,
        artemis_core::IncidentEvent::AlertRaised { alert, .. } if alert == AlertId(0)
    ));

    daemon.shutdown();
    receiver_switch.trigger();
    let _ = receiver_thread.join();
}
