//! The network-facing daemon: an [`ArtemisService`] behind HTTP/JSON.
//!
//! [`Daemon::start`] takes ownership of a fully assembled service,
//! binds a TCP listener, and serves the control-plane API until the
//! shutdown switch fires (via [`DaemonHandle::shutdown`] or the
//! `POST /v1/shutdown` endpoint). Every route maps 1:1 onto the typed
//! in-process API — commands to [`ArtemisService::apply`], queries to
//! [`ArtemisService::query`], the event stream to
//! [`ArtemisService::poll_events`] — wrapped in the versioned
//! envelopes of [`artemis_core::wire`], so wire and in-process
//! consumers observe byte-identical histories.
//!
//! | Method | Path            | Meaning                                   |
//! |--------|-----------------|-------------------------------------------|
//! | GET    | `/healthz`      | liveness probe                            |
//! | POST   | `/v1/command`   | apply a [`CommandEnvelope`]               |
//! | POST   | `/v1/query`     | answer a [`QueryEnvelope`]                |
//! | GET    | `/v1/status`    | full [`ServiceReply::Status`] snapshot    |
//! | GET    | `/v1/prefixes`  | owned-prefix table                        |
//! | GET    | `/v1/incidents` | incident table                            |
//! | GET    | `/v1/feeds`     | feed-health table                         |
//! | GET    | `/v1/events`    | long-poll the incident stream by cursor   |
//! | POST   | `/v1/inject`    | deliver feed events (loopback/testing)    |
//! | GET    | `/v1/audit`     | the audit trail from a sequence number    |
//! | GET    | `/v1/sinks`     | registered alert sinks                    |
//! | POST   | `/v1/sinks`     | register a webhook alert sink             |
//! | GET    | `/metrics`      | Prometheus text exposition                |
//! | POST   | `/v1/shutdown`  | stop the daemon                           |
//!
//! The service clock is derived from the daemon's wall clock: `now` is
//! microseconds since daemon start as a [`SimTime`]. Command and
//! inject envelopes may carry an explicit `at` instead, which makes
//! replayed histories deterministic — the wire end-to-end tests drive
//! the daemon and an in-process twin with the same explicit
//! timestamps and require byte-identical event logs.
//!
//! [`ServiceReply::Status`]: artemis_core::ServiceReply::Status

use crate::alerts::{AlertDispatcher, WebhookSink};
use crate::audit::{AuditLog, AuditRecord};
use artemis_core::wire::{
    CommandEnvelope, CommandResult, EventsEnvelope, InjectEnvelope, InjectOutcome, OutcomeEnvelope,
    QueryEnvelope, SCHEMA_VERSION,
};
use artemis_core::{AppAction, ArtemisService, EventCursor, IncidentEvent, ServiceQuery};
use artemis_simnet::SimTime;
use minihttp::{Request, Response, Server, ShutdownSwitch};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Payload posted to alert sinks: one alert-worthy incident event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertPayload {
    /// Wire schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The event that fired the alert.
    pub event: IncidentEvent,
}

/// Body of `POST /v1/sinks`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkRequest {
    /// Webhook endpoint, `http://host:port/path`.
    pub url: String,
}

/// Daemon tuning knobs. [`DaemonConfig::default`] suits tests and the
/// loopback example; the binary maps its flags onto these fields.
pub struct DaemonConfig {
    /// Append audit records to this JSONL file as well as memory.
    pub audit_path: Option<PathBuf>,
    /// Webhook sinks registered before the daemon starts serving.
    pub webhooks: Vec<String>,
    /// Alert dispatcher queue capacity.
    pub alert_queue: usize,
    /// Delivery attempts per alert payload.
    pub alert_attempts: u32,
    /// Minimum interval between alert deliveries.
    pub alert_min_interval: Duration,
    /// How often the background thread retries queued alerts.
    pub pump_interval: Duration,
    /// How often the feed pump drains live wire feeds (BMP rings)
    /// through the detector. Much faster than `pump_interval`: this
    /// cadence bounds live detection latency, and an idle tick costs
    /// one readiness check per feed.
    pub feed_pump_interval: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            audit_path: None,
            webhooks: Vec::new(),
            alert_queue: 256,
            alert_attempts: 3,
            alert_min_interval: Duration::from_millis(50),
            pump_interval: Duration::from_millis(200),
            feed_pump_interval: Duration::from_millis(10),
        }
    }
}

struct Inner {
    service: ArtemisService,
    audit: AuditLog,
    dispatcher: AlertDispatcher,
    alert_cursor: EventCursor,
}

struct Shared {
    inner: Mutex<Inner>,
    started: Instant,
}

impl Shared {
    /// The service clock: microseconds since daemon start.
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.started.elapsed().as_micros() as u64)
    }

    fn wall_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// Tail the incident stream for alert-worthy events, queue them as
/// payloads, and pump the dispatcher. Called with the state lock held.
fn pump_alerts(inner: &mut Inner) {
    let batch = inner.service.poll_events(inner.alert_cursor);
    inner.alert_cursor = batch.next;
    for event in batch.events {
        let alert_worthy = matches!(
            event,
            IncidentEvent::AlertRaised { .. }
                | IncidentEvent::MitigationPending { .. }
                | IncidentEvent::MitigationTriggered { .. }
                | IncidentEvent::Resolved { .. }
        );
        if !alert_worthy {
            continue;
        }
        let payload = AlertPayload {
            schema_version: SCHEMA_VERSION,
            event,
        };
        if let Ok(json) = serde_json::to_string(&payload) {
            inner.dispatcher.enqueue(json);
        }
    }
    inner.dispatcher.pump();
}

fn json_body<T: for<'de> Deserialize<'de>>(req: &Request) -> Result<T, Response> {
    let text = req.body_utf8().map_err(Response::bad_request)?;
    serde_json::from_str(text).map_err(|e| Response::bad_request(format!("invalid body: {e}")))
}

fn reply_json<T: Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(body),
        Err(e) => Response::status(500, format!("serialization failed: {e}")),
    }
}

fn check_schema(version: u32) -> Result<(), Response> {
    if version == SCHEMA_VERSION {
        Ok(())
    } else {
        Err(Response::bad_request(format!(
            "unsupported schema_version {version}, this daemon speaks {SCHEMA_VERSION}"
        )))
    }
}

fn handle_command(shared: &Shared, req: &Request) -> Response {
    let env: CommandEnvelope = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_schema(env.schema_version) {
        return resp;
    }
    let at = env.at.unwrap_or_else(|| shared.now());
    let wall_ms = shared.wall_ms();
    let mut inner = shared.inner.lock().expect("daemon state");
    let result = inner.service.apply(env.command.clone(), at);
    let result = match result {
        Ok(outcome) => CommandResult::Outcome(outcome),
        Err(error) => CommandResult::Rejected(error),
    };
    inner.audit.record(wall_ms, at, env.command, result.clone());
    pump_alerts(&mut inner);
    let envelope = OutcomeEnvelope {
        schema_version: SCHEMA_VERSION,
        at,
        result,
    };
    reply_json(&envelope)
}

fn handle_query(shared: &Shared, req: &Request) -> Response {
    let env: QueryEnvelope = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_schema(env.schema_version) {
        return resp;
    }
    let at = env.at.unwrap_or_else(|| shared.now());
    let inner = shared.inner.lock().expect("daemon state");
    reply_json(&inner.service.query(env.query, at))
}

fn handle_named_query(shared: &Shared, query: ServiceQuery) -> Response {
    let at = shared.now();
    let inner = shared.inner.lock().expect("daemon state");
    reply_json(&inner.service.query(query, at))
}

fn handle_events(shared: &Shared, req: &Request) -> Response {
    let cursor = match req.query_param("cursor") {
        None => EventCursor::START,
        Some(raw) => match serde_json::from_str::<EventCursor>(raw) {
            Ok(c) => c,
            Err(_) => return Response::bad_request("cursor must be a sequence number"),
        },
    };
    let wait = req
        .query_param("wait_ms")
        .and_then(|w| w.parse::<u64>().ok())
        .unwrap_or(0)
        .min(30_000);
    let deadline = Instant::now() + Duration::from_millis(wait);
    loop {
        let batch = {
            let inner = shared.inner.lock().expect("daemon state");
            inner.service.poll_events(cursor)
        };
        // Return as soon as there is anything to report (events, or an
        // overrun the consumer must learn about) or the wait expires;
        // the lock is released while parked so commands keep flowing.
        if !batch.events.is_empty() || batch.missed > 0 || Instant::now() >= deadline {
            return reply_json(&EventsEnvelope::from(batch));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn handle_inject(shared: &Shared, req: &Request) -> Response {
    let env: InjectEnvelope = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_schema(env.schema_version) {
        return resp;
    }
    let mut inner = shared.inner.lock().expect("daemon state");
    let mut delivered = 0u64;
    let mut alerts_raised = 0u64;
    for event in &env.events {
        let actions = inner.service.deliver(event);
        delivered += 1;
        alerts_raised += actions
            .iter()
            .filter(|a| matches!(a, AppAction::AlertRaised(_)))
            .count() as u64;
    }
    pump_alerts(&mut inner);
    reply_json(&InjectOutcome {
        schema_version: SCHEMA_VERSION,
        delivered,
        alerts_raised,
    })
}

fn handle_audit(shared: &Shared, req: &Request) -> Response {
    let from = req
        .query_param("from")
        .and_then(|f| f.parse::<u64>().ok())
        .unwrap_or(0);
    let inner = shared.inner.lock().expect("daemon state");
    let records: Vec<AuditRecord> = inner.audit.records_from(from).to_vec();
    reply_json(&records)
}

fn handle_metrics(shared: &Shared) -> Response {
    let at = shared.now();
    let inner = shared.inner.lock().expect("daemon state");
    let status = inner.service.status(at);
    let pipeline = inner.service.pipeline();
    let structure = crate::metrics::StructureGauges {
        routing_nodes: pipeline.detector().routing_nodes(),
        routing_bytes: pipeline.detector().routing_bytes(),
        routing_epoch: pipeline.detector().routing_epoch().epoch(),
        retired_incidents: pipeline.retired_count(),
    };
    let wire: Vec<(String, artemis_feeds::WireHealth)> = pipeline
        .hub()
        .handles()
        .filter_map(|(_, feed)| feed.wire_health().map(|h| (feed.name().to_string(), h)))
        .collect();
    let text = crate::metrics::render(
        &status,
        inner.service.stage_metrics(),
        &structure,
        &wire,
        &inner.dispatcher.stats(),
        inner.dispatcher.queued(),
        inner.audit.len(),
    );
    Response::text(text)
}

fn handle_sinks(shared: &Shared, req: &Request) -> Response {
    if req.method == "POST" {
        let body: SinkRequest = match json_body(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let sink = match WebhookSink::from_url(&body.url) {
            Ok(s) => s,
            Err(e) => return Response::bad_request(e),
        };
        let mut inner = shared.inner.lock().expect("daemon state");
        inner.dispatcher.add_sink(Box::new(sink));
        reply_json(&inner.dispatcher.sink_names())
    } else {
        let inner = shared.inner.lock().expect("daemon state");
        reply_json(&inner.dispatcher.sink_names())
    }
}

fn route(shared: &Shared, switch: &ShutdownSwitch, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text("ok\n"),
        ("POST", "/v1/command") => handle_command(shared, req),
        ("POST", "/v1/query") => handle_query(shared, req),
        ("GET", "/v1/status") => handle_named_query(shared, ServiceQuery::Status),
        ("GET", "/v1/prefixes") => handle_named_query(shared, ServiceQuery::OwnedPrefixes),
        ("GET", "/v1/incidents") => handle_named_query(shared, ServiceQuery::Incidents),
        ("GET", "/v1/feeds") => handle_named_query(shared, ServiceQuery::Feeds),
        ("GET", "/v1/events") => handle_events(shared, req),
        ("POST", "/v1/inject") => handle_inject(shared, req),
        ("GET", "/v1/audit") => handle_audit(shared, req),
        ("GET", "/metrics") => handle_metrics(shared),
        ("GET", "/v1/sinks") | ("POST", "/v1/sinks") => handle_sinks(shared, req),
        ("POST", "/v1/shutdown") => {
            switch.trigger();
            Response::json("{\"shutting_down\":true}").closing()
        }
        _ => Response::not_found(),
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`DaemonHandle::shutdown`] (or hit `POST /v1/shutdown` and
/// then [`DaemonHandle::wait`]).
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    switch: ShutdownSwitch,
    server: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    feed_pump: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A clone of the shutdown switch, e.g. for signal handlers.
    pub fn switch(&self) -> ShutdownSwitch {
        self.switch.clone()
    }

    /// Trigger shutdown and join the server and pump threads.
    pub fn shutdown(mut self) {
        self.switch.trigger();
        self.join_threads();
    }

    /// Block until the daemon stops some other way (`POST
    /// /v1/shutdown` or a triggered switch), then join its threads.
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        if let Some(feed_pump) = self.feed_pump.take() {
            let _ = feed_pump.join();
        }
    }
}

/// The operator daemon: binds, serves, pumps alerts in the background.
pub struct Daemon;

impl Daemon {
    /// Start serving `service` on `addr` (use `127.0.0.1:0` for an
    /// ephemeral port). Returns once the listener is bound; the
    /// daemon runs on background threads until shut down.
    pub fn start(
        addr: &str,
        service: ArtemisService,
        config: DaemonConfig,
    ) -> std::io::Result<DaemonHandle> {
        let mut dispatcher = AlertDispatcher::new(
            config.alert_queue,
            config.alert_attempts,
            config.alert_min_interval,
        );
        for url in &config.webhooks {
            let sink = WebhookSink::from_url(url)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            dispatcher.add_sink(Box::new(sink));
        }
        let audit = match &config.audit_path {
            Some(path) => AuditLog::with_file(path)?,
            None => AuditLog::in_memory(),
        };
        // Alerts raised before the daemon started (setup-time history)
        // are not paged: the alert cursor begins at the current tail.
        let alert_cursor = service.event_log().poll(EventCursor::START).next;

        let server = Server::bind(addr)?;
        let bound = server.local_addr()?;
        let switch = server.shutdown_switch()?;

        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                service,
                audit,
                dispatcher,
                alert_cursor,
            }),
            started: Instant::now(),
        });

        let server_shared = Arc::clone(&shared);
        let server_switch = switch.clone();
        let server_thread = std::thread::spawn(move || {
            let _ = server.serve(move |req| route(&server_shared, &server_switch, req));
        });

        // Background retry loop: queued alert payloads whose sinks were
        // down (or rate-limited) are retried even when no request
        // arrives to pump them.
        let pump_shared = Arc::clone(&shared);
        let pump_switch = switch.clone();
        let pump_interval = config.pump_interval;
        let pump_thread = std::thread::spawn(move || {
            while !pump_switch.is_triggered() {
                std::thread::sleep(pump_interval);
                let mut inner = pump_shared.inner.lock().expect("daemon state");
                pump_alerts(&mut inner);
            }
        });

        // Feed pump: drain live wire feeds (BMP backpressure rings)
        // through detection on a tight cadence, and page any alerts
        // the delivered events raised without waiting for the slower
        // alert retry tick.
        let feed_shared = Arc::clone(&shared);
        let feed_switch = switch.clone();
        let feed_interval = config.feed_pump_interval;
        let feed_thread = std::thread::spawn(move || {
            while !feed_switch.is_triggered() {
                std::thread::sleep(feed_interval);
                let now = feed_shared.now();
                let mut inner = feed_shared.inner.lock().expect("daemon state");
                if inner.service.pump_feeds(now) > 0 {
                    pump_alerts(&mut inner);
                }
            }
        });

        Ok(DaemonHandle {
            addr: bound,
            switch,
            server: Some(server_thread),
            pump: Some(pump_thread),
            feed_pump: Some(feed_thread),
        })
    }
}
