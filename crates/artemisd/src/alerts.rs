//! Pluggable alert sinks with a bounded retry/rate-limit queue.
//!
//! A confirmed hijack is only useful if it pages someone. The daemon
//! tails its own incident event stream, turns alert-worthy events into
//! JSON payloads, and hands them to an [`AlertDispatcher`]: a bounded
//! queue in front of any number of [`AlertSink`]s. The queue absorbs
//! sink outages (bounded, drop-oldest so a dead webhook cannot OOM the
//! daemon), retries each payload a configurable number of times, and
//! rate-limits deliveries so an incident storm does not DoS the
//! receiver.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Where alert payloads go. Implementations must not block for long —
/// the dispatcher calls them while holding the daemon state lock.
pub trait AlertSink: Send {
    /// Stable name for listings and metrics.
    fn name(&self) -> &str;
    /// Deliver one JSON payload; an `Err` requeues the payload for
    /// retry (up to the dispatcher's attempt budget).
    fn deliver(&mut self, payload: &str) -> Result<(), String>;
}

/// A sink POSTing payloads to an HTTP endpoint (`http://host:port/path`).
pub struct WebhookSink {
    name: String,
    client: minihttp::Client,
    path: String,
}

impl WebhookSink {
    /// Build a sink from an `http://host:port/path` URL.
    pub fn from_url(url: &str) -> Result<WebhookSink, String> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("webhook URL must start with http://: {url}"))?;
        let (addr, path) = match rest.split_once('/') {
            Some((a, p)) => (a, format!("/{p}")),
            None => (rest, "/".to_string()),
        };
        if addr.is_empty() {
            return Err(format!("webhook URL has no host: {url}"));
        }
        Ok(WebhookSink {
            name: url.to_string(),
            client: minihttp::Client::new(addr).with_timeout(Duration::from_secs(5)),
            path,
        })
    }
}

impl AlertSink for WebhookSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn deliver(&mut self, payload: &str) -> Result<(), String> {
        match self.client.post(&self.path, "application/json", payload) {
            Ok(resp) if resp.is_success() => Ok(()),
            Ok(resp) => Err(format!("webhook returned {}", resp.status)),
            Err(e) => Err(format!("webhook unreachable: {e}")),
        }
    }
}

/// Delivery counters of an [`AlertDispatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Payloads accepted into the queue.
    pub enqueued: u64,
    /// Payloads delivered to every sink.
    pub delivered: u64,
    /// Payloads dropped because the queue was full (oldest first).
    pub dropped_overflow: u64,
    /// Payloads dropped after exhausting their attempt budget.
    pub dropped_failed: u64,
    /// Individual sink delivery attempts (including failures).
    pub attempts: u64,
}

struct QueuedAlert {
    payload: String,
    attempts: u32,
}

/// A bounded retry/rate-limit queue in front of the registered sinks.
pub struct AlertDispatcher {
    sinks: Vec<Box<dyn AlertSink>>,
    queue: VecDeque<QueuedAlert>,
    capacity: usize,
    max_attempts: u32,
    min_interval: Duration,
    last_delivery: Option<Instant>,
    stats: DispatchStats,
}

impl AlertDispatcher {
    /// A dispatcher holding at most `capacity` undelivered payloads,
    /// retrying each at most `max_attempts` times, with at least
    /// `min_interval` between deliveries.
    pub fn new(capacity: usize, max_attempts: u32, min_interval: Duration) -> Self {
        AlertDispatcher {
            sinks: Vec::new(),
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            max_attempts: max_attempts.max(1),
            min_interval,
            last_delivery: None,
            stats: DispatchStats::default(),
        }
    }

    /// Defaults suited to paging webhooks: 256 queued payloads, 3
    /// attempts, 50 ms between deliveries.
    pub fn with_defaults() -> Self {
        AlertDispatcher::new(256, 3, Duration::from_millis(50))
    }

    /// Register a sink. Payloads already queued will reach it too.
    pub fn add_sink(&mut self, sink: Box<dyn AlertSink>) {
        self.sinks.push(sink);
    }

    /// Names of the registered sinks, in registration order.
    pub fn sink_names(&self) -> Vec<String> {
        self.sinks.iter().map(|s| s.name().to_string()).collect()
    }

    /// Queue one payload. With no sinks registered the payload is
    /// accepted and delivered trivially (nobody to page).
    pub fn enqueue(&mut self, payload: String) {
        self.stats.enqueued += 1;
        if self.sinks.is_empty() {
            self.stats.delivered += 1;
            return;
        }
        if self.queue.len() >= self.capacity {
            self.queue.pop_front();
            self.stats.dropped_overflow += 1;
        }
        self.queue.push_back(QueuedAlert {
            payload,
            attempts: 0,
        });
    }

    /// Try to deliver queued payloads, oldest first, respecting the
    /// rate limit. Returns the number of payloads fully delivered.
    /// A payload that fails keeps its place at the front until its
    /// attempt budget runs out, preserving delivery order.
    pub fn pump(&mut self) -> usize {
        let mut delivered = 0;
        while let Some(front) = self.queue.front() {
            if let (Some(last), true) = (self.last_delivery, !self.min_interval.is_zero()) {
                if last.elapsed() < self.min_interval {
                    break;
                }
            }
            let payload = front.payload.clone();
            self.stats.attempts += 1;
            self.last_delivery = Some(Instant::now());
            let ok = self
                .sinks
                .iter_mut()
                .all(|sink| sink.deliver(&payload).is_ok());
            if ok {
                self.queue.pop_front();
                self.stats.delivered += 1;
                delivered += 1;
            } else {
                let front = self.queue.front_mut().expect("still queued");
                front.attempts += 1;
                if front.attempts >= self.max_attempts {
                    self.queue.pop_front();
                    self.stats.dropped_failed += 1;
                } else {
                    // Leave it at the front; a later pump retries.
                    break;
                }
            }
        }
        delivered
    }

    /// Payloads currently waiting for delivery.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    struct MockSink {
        seen: Arc<Mutex<Vec<String>>>,
        fail_first: u32,
        failures: u32,
    }

    impl AlertSink for MockSink {
        fn name(&self) -> &str {
            "mock"
        }
        fn deliver(&mut self, payload: &str) -> Result<(), String> {
            if self.failures < self.fail_first {
                self.failures += 1;
                return Err("transient".into());
            }
            self.seen.lock().unwrap().push(payload.to_string());
            Ok(())
        }
    }

    fn dispatcher(capacity: usize, max_attempts: u32) -> AlertDispatcher {
        AlertDispatcher::new(capacity, max_attempts, Duration::ZERO)
    }

    #[test]
    fn delivers_in_order_with_retries() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut d = dispatcher(8, 3);
        d.add_sink(Box::new(MockSink {
            seen: seen.clone(),
            fail_first: 2,
            failures: 0,
        }));
        d.enqueue("a".into());
        d.enqueue("b".into());
        // First pump: "a" fails (attempt 1) and stays queued.
        assert_eq!(d.pump(), 0);
        assert_eq!(d.queued(), 2);
        // Second pump: "a" fails (attempt 2), still below the budget.
        assert_eq!(d.pump(), 0);
        // Third pump: sink recovered; both deliver, in order.
        assert_eq!(d.pump(), 2);
        assert_eq!(*seen.lock().unwrap(), vec!["a", "b"]);
        assert_eq!(d.stats().delivered, 2);
        assert_eq!(d.stats().attempts, 4);
    }

    #[test]
    fn exhausted_attempts_drop_the_payload_and_count_it() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut d = dispatcher(8, 2);
        d.add_sink(Box::new(MockSink {
            seen: seen.clone(),
            fail_first: 2,
            failures: 0,
        }));
        d.enqueue("doomed".into());
        d.enqueue("fine".into());
        assert_eq!(d.pump(), 0); // attempt 1 fails
        assert_eq!(d.pump(), 1); // attempt 2 fails -> dropped; "fine" delivers
        assert_eq!(*seen.lock().unwrap(), vec!["fine"]);
        assert_eq!(d.stats().dropped_failed, 1);
    }

    #[test]
    fn overflow_drops_oldest() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut d = dispatcher(2, 1);
        d.add_sink(Box::new(MockSink {
            seen: seen.clone(),
            fail_first: 0,
            failures: 0,
        }));
        d.enqueue("1".into());
        d.enqueue("2".into());
        d.enqueue("3".into()); // evicts "1"
        assert_eq!(d.stats().dropped_overflow, 1);
        d.pump();
        assert_eq!(*seen.lock().unwrap(), vec!["2", "3"]);
    }

    #[test]
    fn rate_limit_defers_delivery() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut d = AlertDispatcher::new(8, 1, Duration::from_secs(60));
        d.add_sink(Box::new(MockSink {
            seen: seen.clone(),
            fail_first: 0,
            failures: 0,
        }));
        d.enqueue("a".into());
        d.enqueue("b".into());
        assert_eq!(d.pump(), 1, "first delivery is immediate");
        assert_eq!(d.pump(), 0, "second is rate-limited");
        assert_eq!(d.queued(), 1);
    }

    #[test]
    fn no_sinks_means_trivial_delivery() {
        let mut d = dispatcher(2, 1);
        d.enqueue("x".into());
        assert_eq!(d.queued(), 0);
        assert_eq!(d.stats().delivered, 1);
    }

    #[test]
    fn webhook_url_parsing() {
        assert!(WebhookSink::from_url("http://127.0.0.1:9999/hook").is_ok());
        assert!(WebhookSink::from_url("http://127.0.0.1:9999").is_ok());
        assert!(WebhookSink::from_url("https://x/y").is_err());
        assert!(WebhookSink::from_url("http:///y").is_err());
    }
}
