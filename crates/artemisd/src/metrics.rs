//! Prometheus text exposition for the daemon's `/metrics` endpoint.
//!
//! Everything rendered here comes from surfaces the typed API already
//! exposes — [`ServiceStatus`] snapshots, the pipeline's wall-clock
//! [`StageMetrics`], the alert dispatcher's [`DispatchStats`], and the
//! audit-log length — so a scrape can never disagree with what
//! `ServiceQuery::Status` reports at the same instant.

use crate::alerts::DispatchStats;
use artemis_core::service::{MitigationPhase, ServiceStatus};
use artemis_core::{StageMetrics, StageStat};
use std::fmt::Write;

fn phase_label(phase: MitigationPhase) -> &'static str {
    match phase {
        MitigationPhase::None => "none",
        MitigationPhase::PendingConfirmation => "pending_confirmation",
        MitigationPhase::Executing => "executing",
        MitigationPhase::Resolved => "resolved",
    }
}

/// Point-in-time gauges of the pipeline's internal structures that
/// [`ServiceStatus`] does not carry (they are implementation detail,
/// not operator-facing state): the flattened routing structure's
/// footprint and the count of incidents whose monitors were retired
/// into compact summaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct StructureGauges {
    /// Nodes in the detector's flattened routing structure.
    pub routing_nodes: usize,
    /// Approximate heap bytes held by the routing structure.
    pub routing_bytes: usize,
    /// The detector's routing epoch: bumped on every incremental
    /// onboard/offboard patch of the flattened routing structure. A
    /// gauge that climbs with churn but never jumps — there are no
    /// wholesale rebuilds to observe anymore.
    pub routing_epoch: u64,
    /// Resolved incidents retired to compact monitor summaries.
    pub retired_incidents: usize,
}

fn stage_lines(out: &mut String, name: &str, stat: &StageStat) {
    let _ = writeln!(
        out,
        "artemis_stage_batches_total{{stage=\"{name}\"}} {}",
        stat.batches
    );
    let _ = writeln!(
        out,
        "artemis_stage_events_total{{stage=\"{name}\"}} {}",
        stat.events
    );
    let _ = writeln!(
        out,
        "artemis_stage_nanos_total{{stage=\"{name}\"}} {}",
        stat.nanos
    );
    let _ = writeln!(
        out,
        "artemis_stage_mean_batch_nanos{{stage=\"{name}\"}} {}",
        stat.mean_batch_nanos()
    );
    let _ = writeln!(
        out,
        "artemis_stage_p99_batch_nanos{{stage=\"{name}\"}} {}",
        stat.p99_batch_nanos()
    );
}

/// Render one scrape in the Prometheus text exposition format. `wire`
/// carries the `(name, health)` of every socket-backed feed — see
/// [`artemis_feeds::WireHealth`] — rendered as reconnect counters and
/// per-peer session gauges.
pub fn render(
    status: &ServiceStatus,
    stages: &StageMetrics,
    structure: &StructureGauges,
    wire: &[(String, artemis_feeds::WireHealth)],
    dispatch: &DispatchStats,
    alert_queue_depth: usize,
    audit_records: u64,
) -> String {
    let mut out = String::with_capacity(2048);

    // -- pipeline throughput ------------------------------------------
    out.push_str("# HELP artemis_events_delivered_total Feed events delivered to the detector.\n");
    out.push_str("# TYPE artemis_events_delivered_total counter\n");
    let _ = writeln!(
        out,
        "artemis_events_delivered_total {}",
        status.events_delivered
    );
    out.push_str("# HELP artemis_events_recorded_total Incident events recorded in the log.\n");
    out.push_str("# TYPE artemis_events_recorded_total counter\n");
    let _ = writeln!(
        out,
        "artemis_events_recorded_total {}",
        status.events_recorded
    );

    // -- per-stage wall-clock batch latency ---------------------------
    out.push_str("# HELP artemis_stage_batches_total Non-empty batches seen per pipeline stage.\n");
    out.push_str("# TYPE artemis_stage_batches_total counter\n");
    out.push_str("# HELP artemis_stage_events_total Events processed per pipeline stage.\n");
    out.push_str("# TYPE artemis_stage_events_total counter\n");
    out.push_str("# HELP artemis_stage_nanos_total Wall-clock nanoseconds spent per stage.\n");
    out.push_str("# TYPE artemis_stage_nanos_total counter\n");
    out.push_str("# HELP artemis_stage_mean_batch_nanos Mean wall-clock nanoseconds per batch.\n");
    out.push_str("# TYPE artemis_stage_mean_batch_nanos gauge\n");
    stage_lines(&mut out, "drain", &stages.drain);
    stage_lines(&mut out, "classify", &stages.classify);
    stage_lines(&mut out, "commit", &stages.commit);
    // Sub-stages (each overlaps its parent stage, never adds to it);
    // recorded by the batched deliver_due path only.
    stage_lines(&mut out, "drain_seal", &stages.drain_seal);
    stage_lines(&mut out, "drain_merge", &stages.drain_merge);
    stage_lines(&mut out, "classify_snapshot", &stages.classify_snapshot);
    stage_lines(&mut out, "classify_prepare", &stages.classify_prepare);
    stage_lines(&mut out, "commit_detect", &stages.detect);
    stage_lines(&mut out, "commit_monitor_route", &stages.monitor_route);
    stage_lines(&mut out, "commit_monitor_ingest", &stages.monitor_ingest);
    stage_lines(&mut out, "commit_resolve", &stages.resolve);
    stage_lines(&mut out, "commit_mitigate", &stages.mitigate);

    // -- worker occupancy ---------------------------------------------
    out.push_str("# HELP artemis_workers Detection worker threads configured.\n");
    out.push_str("# TYPE artemis_workers gauge\n");
    let _ = writeln!(out, "artemis_workers {}", status.workers.workers);
    out.push_str("# HELP artemis_worker_parallel_batches_total Batches classified in parallel.\n");
    out.push_str("# TYPE artemis_worker_parallel_batches_total counter\n");
    let _ = writeln!(
        out,
        "artemis_worker_parallel_batches_total {}",
        status.workers.parallel_batches
    );
    out.push_str(
        "# HELP artemis_worker_sequential_batches_total Batches classified sequentially.\n",
    );
    out.push_str("# TYPE artemis_worker_sequential_batches_total counter\n");
    let _ = writeln!(
        out,
        "artemis_worker_sequential_batches_total {}",
        status.workers.sequential_batches
    );
    out.push_str("# HELP artemis_worker_events_total Events classified per worker slot.\n");
    out.push_str("# TYPE artemis_worker_events_total counter\n");
    for (slot, events) in status.workers.per_worker_events.iter().enumerate() {
        let _ = writeln!(
            out,
            "artemis_worker_events_total{{worker=\"{slot}\"}} {events}"
        );
    }

    // -- feed lag ------------------------------------------------------
    out.push_str("# HELP artemis_feed_events_emitted_total Events emitted per attached feed.\n");
    out.push_str("# TYPE artemis_feed_events_emitted_total counter\n");
    out.push_str("# HELP artemis_feed_queued_events Emitted-but-undrained events per feed.\n");
    out.push_str("# TYPE artemis_feed_queued_events gauge\n");
    out.push_str(
        "# HELP artemis_feed_last_event_seconds Service-clock emission instant of the \
         newest queued event per feed.\n",
    );
    out.push_str("# TYPE artemis_feed_last_event_seconds gauge\n");
    out.push_str(
        "# HELP artemis_feed_dropped_total Events discarded before the merge queue per feed \
         (filter rejections, backpressure sheds, outage windows).\n",
    );
    out.push_str("# TYPE artemis_feed_dropped_total counter\n");
    out.push_str(
        "# HELP artemis_feed_shed_total Backpressure-shed subset of dropped events per feed.\n",
    );
    out.push_str("# TYPE artemis_feed_shed_total counter\n");
    for feed in &status.feeds {
        let handle = feed.handle;
        let _ = writeln!(
            out,
            "artemis_feed_events_emitted_total{{feed=\"{handle}\",name=\"{}\"}} {}",
            feed.name, feed.events_emitted
        );
        let _ = writeln!(
            out,
            "artemis_feed_queued_events{{feed=\"{handle}\",name=\"{}\"}} {}",
            feed.name, feed.queued_events
        );
        if let Some(at) = feed.last_event_at {
            let _ = writeln!(
                out,
                "artemis_feed_last_event_seconds{{feed=\"{handle}\",name=\"{}\"}} {}",
                feed.name,
                at.as_micros() as f64 / 1_000_000.0
            );
        }
        let _ = writeln!(
            out,
            "artemis_feed_dropped_total{{feed=\"{handle}\",name=\"{}\"}} {}",
            feed.name, feed.dropped_events
        );
        let _ = writeln!(
            out,
            "artemis_feed_shed_total{{feed=\"{handle}\",name=\"{}\"}} {}",
            feed.name, feed.shed_events
        );
    }

    // -- wire-feed session health -------------------------------------
    if !wire.is_empty() {
        out.push_str(
            "# HELP artemis_feed_reconnects_total Re-established transport sessions per wire feed.\n",
        );
        out.push_str("# TYPE artemis_feed_reconnects_total counter\n");
        for (name, health) in wire {
            let _ = writeln!(
                out,
                "artemis_feed_reconnects_total{{name=\"{name}\"}} {}",
                health.reconnects
            );
        }
        out.push_str(
            "# HELP artemis_bmp_peer_stat Per-peer BMP stats_report counters and gauges.\n",
        );
        out.push_str("# TYPE artemis_bmp_peer_stat gauge\n");
        out.push_str("# HELP artemis_bmp_peer_downs_total peer_down messages seen per peer.\n");
        out.push_str("# TYPE artemis_bmp_peer_downs_total counter\n");
        for (name, health) in wire {
            for (peer, h) in &health.peers {
                let peer = peer.0;
                for (stat, value) in [
                    ("reports", h.reports),
                    ("prefixes_rejected", h.prefixes_rejected),
                    ("duplicate_updates", h.duplicate_updates),
                    ("duplicate_withdraws", h.duplicate_withdraws),
                    ("adj_rib_in", h.adj_rib_in),
                    ("loc_rib", h.loc_rib),
                ] {
                    let _ = writeln!(
                        out,
                        "artemis_bmp_peer_stat{{name=\"{name}\",peer=\"{peer}\",stat=\"{stat}\"}} {value}"
                    );
                }
                let _ = writeln!(
                    out,
                    "artemis_bmp_peer_downs_total{{name=\"{name}\",peer=\"{peer}\"}} {}",
                    h.peer_downs
                );
            }
        }
    }

    // -- incidents by mitigation phase --------------------------------
    out.push_str("# HELP artemis_incidents Incidents by mitigation lifecycle phase.\n");
    out.push_str("# TYPE artemis_incidents gauge\n");
    for phase in [
        MitigationPhase::None,
        MitigationPhase::PendingConfirmation,
        MitigationPhase::Executing,
        MitigationPhase::Resolved,
    ] {
        let count = status.incidents.iter().filter(|i| i.phase == phase).count();
        let _ = writeln!(
            out,
            "artemis_incidents{{phase=\"{}\"}} {count}",
            phase_label(phase)
        );
    }

    // -- service state -------------------------------------------------
    out.push_str("# HELP artemis_owned_prefixes Owned prefixes currently onboarded.\n");
    out.push_str("# TYPE artemis_owned_prefixes gauge\n");
    let _ = writeln!(out, "artemis_owned_prefixes {}", status.owned.len());
    out.push_str("# HELP artemis_mitigation_paused 1 while mitigation is paused.\n");
    out.push_str("# TYPE artemis_mitigation_paused gauge\n");
    let _ = writeln!(
        out,
        "artemis_mitigation_paused {}",
        u8::from(status.mitigation_paused)
    );
    out.push_str("# HELP artemis_routing_nodes Nodes in the flattened routing structure.\n");
    out.push_str("# TYPE artemis_routing_nodes gauge\n");
    let _ = writeln!(out, "artemis_routing_nodes {}", structure.routing_nodes);
    out.push_str("# HELP artemis_routing_bytes Approximate heap bytes of the routing structure.\n");
    out.push_str("# TYPE artemis_routing_bytes gauge\n");
    let _ = writeln!(out, "artemis_routing_bytes {}", structure.routing_bytes);
    out.push_str(
        "# HELP artemis_routing_epoch Incremental patches applied to the routing structure.\n",
    );
    out.push_str("# TYPE artemis_routing_epoch gauge\n");
    let _ = writeln!(out, "artemis_routing_epoch {}", structure.routing_epoch);
    out.push_str(
        "# HELP artemis_retired_incidents Resolved incidents retired to compact summaries.\n",
    );
    out.push_str("# TYPE artemis_retired_incidents gauge\n");
    let _ = writeln!(
        out,
        "artemis_retired_incidents {}",
        structure.retired_incidents
    );

    // -- alert dispatch ------------------------------------------------
    out.push_str("# HELP artemis_alerts_enqueued_total Alert payloads queued for delivery.\n");
    out.push_str("# TYPE artemis_alerts_enqueued_total counter\n");
    let _ = writeln!(out, "artemis_alerts_enqueued_total {}", dispatch.enqueued);
    out.push_str("# HELP artemis_alerts_delivered_total Alert payloads delivered to all sinks.\n");
    out.push_str("# TYPE artemis_alerts_delivered_total counter\n");
    let _ = writeln!(out, "artemis_alerts_delivered_total {}", dispatch.delivered);
    out.push_str("# HELP artemis_alerts_dropped_total Alert payloads dropped, by reason.\n");
    out.push_str("# TYPE artemis_alerts_dropped_total counter\n");
    let _ = writeln!(
        out,
        "artemis_alerts_dropped_total{{reason=\"overflow\"}} {}",
        dispatch.dropped_overflow
    );
    let _ = writeln!(
        out,
        "artemis_alerts_dropped_total{{reason=\"failed\"}} {}",
        dispatch.dropped_failed
    );
    out.push_str("# HELP artemis_alert_queue_depth Alert payloads waiting for delivery.\n");
    out.push_str("# TYPE artemis_alert_queue_depth gauge\n");
    let _ = writeln!(out, "artemis_alert_queue_depth {alert_queue_depth}");

    // -- audit ---------------------------------------------------------
    out.push_str("# HELP artemis_audit_records_total Operator commands audited.\n");
    out.push_str("# TYPE artemis_audit_records_total counter\n");
    let _ = writeln!(out, "artemis_audit_records_total {audit_records}");

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::pipeline::WorkerStatus;
    use artemis_simnet::SimTime;

    fn empty_status() -> ServiceStatus {
        ServiceStatus {
            at: SimTime::from_secs(1),
            mitigation_paused: false,
            events_delivered: 7,
            events_recorded: 3,
            owned: Vec::new(),
            incidents: Vec::new(),
            feeds: Vec::new(),
            workers: WorkerStatus::default(),
        }
    }

    #[test]
    fn render_is_valid_exposition_text() {
        let text = render(
            &empty_status(),
            &StageMetrics::default(),
            &StructureGauges {
                routing_nodes: 42,
                routing_bytes: 1024,
                routing_epoch: 17,
                retired_incidents: 2,
            },
            &[],
            &DispatchStats::default(),
            0,
            5,
        );
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed line: {line}"
            );
        }
        assert!(text.contains("artemis_events_delivered_total 7"));
        assert!(text.contains("artemis_stage_batches_total{stage=\"drain\"} 0"));
        assert!(text.contains("artemis_incidents{phase=\"executing\"} 0"));
        assert!(text.contains("artemis_audit_records_total 5"));
        assert!(text.contains("artemis_mitigation_paused 0"));
        assert!(text.contains("artemis_stage_p99_batch_nanos{stage=\"classify\"} 0"));
        for sub in [
            "drain_seal",
            "drain_merge",
            "classify_snapshot",
            "classify_prepare",
            "commit_detect",
            "commit_monitor_route",
            "commit_monitor_ingest",
            "commit_resolve",
            "commit_mitigate",
        ] {
            assert!(
                text.contains(&format!(
                    "artemis_stage_p99_batch_nanos{{stage=\"{sub}\"}} 0"
                )),
                "missing sub-stage {sub}"
            );
        }
        assert!(text.contains("artemis_routing_nodes 42"));
        assert!(text.contains("artemis_routing_bytes 1024"));
        assert!(text.contains("artemis_routing_epoch 17"));
        assert!(text.contains("artemis_retired_incidents 2"));
    }

    #[test]
    fn feed_rows_render_drop_and_shed_counters() {
        use artemis_core::service::FeedStatus;
        use artemis_feeds::{FeedHandle, FeedKind};
        let mut status = empty_status();
        status.feeds.push(FeedStatus {
            handle: FeedHandle::REQUEUED,
            kind: FeedKind::BmpLive,
            name: "bmp0".into(),
            events_emitted: 10,
            polls_executed: 4,
            queued_events: 1,
            last_event_at: Some(SimTime::from_secs(9)),
            dropped_events: 7,
            shed_events: 3,
        });
        let text = render(
            &status,
            &StageMetrics::default(),
            &StructureGauges::default(),
            &[],
            &DispatchStats::default(),
            0,
            0,
        );
        assert!(text.contains("artemis_feed_dropped_total{feed=\"feed#0\",name=\"bmp0\"} 7"));
        assert!(text.contains("artemis_feed_shed_total{feed=\"feed#0\",name=\"bmp0\"} 3"));
        assert!(
            text.contains("artemis_feed_events_emitted_total{feed=\"feed#0\",name=\"bmp0\"} 10")
        );
    }

    #[test]
    fn wire_health_renders_reconnects_and_peer_gauges() {
        use artemis_bgp::Asn;
        use artemis_feeds::{PeerHealth, WireHealth};
        let wire = vec![(
            "bmp0".to_string(),
            WireHealth {
                reconnects: 3,
                peers: vec![(
                    Asn(174),
                    PeerHealth {
                        reports: 2,
                        prefixes_rejected: 11,
                        duplicate_updates: 5,
                        duplicate_withdraws: 1,
                        adj_rib_in: 900_000,
                        loc_rib: 870_000,
                        peer_downs: 1,
                    },
                )],
            },
        )];
        let text = render(
            &empty_status(),
            &StageMetrics::default(),
            &StructureGauges::default(),
            &wire,
            &DispatchStats::default(),
            0,
            0,
        );
        assert!(text.contains("artemis_feed_reconnects_total{name=\"bmp0\"} 3"));
        assert!(text.contains(
            "artemis_bmp_peer_stat{name=\"bmp0\",peer=\"174\",stat=\"adj_rib_in\"} 900000"
        ));
        assert!(
            text.contains("artemis_bmp_peer_stat{name=\"bmp0\",peer=\"174\",stat=\"reports\"} 2")
        );
        assert!(text.contains("artemis_bmp_peer_downs_total{name=\"bmp0\",peer=\"174\"} 1"));
    }
}
