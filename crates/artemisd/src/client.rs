//! Typed client for the daemon's control-plane API.
//!
//! [`CtlClient`] wraps [`minihttp::Client`] and speaks the same
//! versioned envelopes as the daemon, so callers deal in
//! [`ServiceCommand`]/[`ServiceReply`] values and never see JSON. The
//! `artemisctl` binary is a thin argument parser over this type; the
//! wire end-to-end tests drive the daemon through it.

use crate::audit::AuditRecord;
use crate::daemon::SinkRequest;
use artemis_core::service::ServiceStatus;
use artemis_core::wire::{
    CommandEnvelope, EventsEnvelope, InjectEnvelope, InjectOutcome, OutcomeEnvelope, QueryEnvelope,
};
use artemis_core::{EventCursor, ServiceCommand, ServiceQuery, ServiceReply};
use artemis_feeds::FeedEvent;
use artemis_simnet::SimTime;
use minihttp::{Client, ClientResponse};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::time::Duration;

/// A typed HTTP client for one daemon instance.
pub struct CtlClient {
    http: Client,
}

fn expect_success(resp: ClientResponse) -> Result<ClientResponse, String> {
    if resp.is_success() {
        Ok(resp)
    } else {
        Err(format!("HTTP {}: {}", resp.status, resp.body_utf8()))
    }
}

impl CtlClient {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> CtlClient {
        CtlClient {
            http: Client::new(addr).with_timeout(Duration::from_secs(35)),
        }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        self.http.addr()
    }

    fn get_json<T: DeserializeOwned>(&self, path: &str) -> Result<T, String> {
        let resp = self.http.get(path).map_err(|e| e.to_string())?;
        let resp = expect_success(resp)?;
        serde_json::from_str(&resp.body_utf8()).map_err(|e| format!("bad response body: {e}"))
    }

    fn post_json<B: Serialize, T: DeserializeOwned>(
        &self,
        path: &str,
        body: &B,
    ) -> Result<T, String> {
        let body = serde_json::to_string(body).map_err(|e| e.to_string())?;
        let resp = self
            .http
            .post(path, "application/json", &body)
            .map_err(|e| e.to_string())?;
        let resp = expect_success(resp)?;
        serde_json::from_str(&resp.body_utf8()).map_err(|e| format!("bad response body: {e}"))
    }

    /// Liveness probe (`GET /healthz`).
    pub fn healthz(&self) -> Result<(), String> {
        let resp = self.http.get("/healthz").map_err(|e| e.to_string())?;
        expect_success(resp).map(|_| ())
    }

    /// Send a pre-built command envelope (`POST /v1/command`).
    pub fn command(&self, envelope: &CommandEnvelope) -> Result<OutcomeEnvelope, String> {
        self.post_json("/v1/command", envelope)
    }

    /// Apply one command, optionally at an explicit service-clock
    /// instant (absent: the daemon stamps its own clock).
    pub fn apply(
        &self,
        command: ServiceCommand,
        at: Option<SimTime>,
    ) -> Result<OutcomeEnvelope, String> {
        let mut envelope = CommandEnvelope::new(command);
        if let Some(at) = at {
            envelope = envelope.at(at);
        }
        self.command(&envelope)
    }

    /// Answer one typed query (`POST /v1/query`).
    pub fn query(&self, query: ServiceQuery) -> Result<ServiceReply, String> {
        self.post_json("/v1/query", &QueryEnvelope::new(query))
    }

    /// The full service snapshot (`GET /v1/status`).
    pub fn status(&self) -> Result<ServiceStatus, String> {
        match self.get_json::<ServiceReply>("/v1/status")? {
            ServiceReply::Status(status) => Ok(status),
            other => Err(format!("expected a status reply, got {other:?}")),
        }
    }

    /// Long-poll the incident stream (`GET /v1/events`). Waits up to
    /// `wait_ms` (server-capped at 30 s) for events past `cursor`.
    pub fn events(&self, cursor: EventCursor, wait_ms: u64) -> Result<EventsEnvelope, String> {
        self.get_json(&format!(
            "/v1/events?cursor={}&wait_ms={wait_ms}",
            cursor.sequence()
        ))
    }

    /// Deliver feed events through the daemon (`POST /v1/inject`).
    pub fn inject(&self, events: Vec<FeedEvent>) -> Result<InjectOutcome, String> {
        self.post_json("/v1/inject", &InjectEnvelope::new(events))
    }

    /// The audit trail from sequence number `from` (`GET /v1/audit`).
    pub fn audit(&self, from: u64) -> Result<Vec<AuditRecord>, String> {
        self.get_json(&format!("/v1/audit?from={from}"))
    }

    /// Registered alert-sink names (`GET /v1/sinks`).
    pub fn sinks(&self) -> Result<Vec<String>, String> {
        self.get_json("/v1/sinks")
    }

    /// Register a webhook alert sink (`POST /v1/sinks`); returns the
    /// updated sink list.
    pub fn add_webhook(&self, url: &str) -> Result<Vec<String>, String> {
        self.post_json(
            "/v1/sinks",
            &SinkRequest {
                url: url.to_string(),
            },
        )
    }

    /// One Prometheus scrape (`GET /metrics`), as raw exposition text.
    pub fn metrics_text(&self) -> Result<String, String> {
        let resp = self.http.get("/metrics").map_err(|e| e.to_string())?;
        expect_success(resp).map(|r| r.body_utf8())
    }

    /// Stop the daemon (`POST /v1/shutdown`).
    pub fn shutdown(&self) -> Result<(), String> {
        let resp = self
            .http
            .post("/v1/shutdown", "application/json", "{}")
            .map_err(|e| e.to_string())?;
        expect_success(resp).map(|_| ())
    }
}
