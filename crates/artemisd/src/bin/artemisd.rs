//! `artemisd` — run the ARTEMIS operator daemon.
//!
//! Assembles an [`ArtemisService`] from command-line flags and serves
//! the HTTP/JSON control plane until `POST /v1/shutdown` (or a
//! triggered switch) stops it. See the crate docs for the endpoint
//! table; `artemisctl` is the matching client.
//!
//! [`ArtemisService`]: artemis_core::ArtemisService

use artemis_bgp::Asn;
use artemis_controller::Controller;
use artemis_core::{ArtemisConfig, ArtemisService, OwnedPrefix, Pipeline};
use artemis_feeds::FeedSpec;
use artemis_simnet::{LatencyModel, SimRng};
use artemisd::{Daemon, DaemonConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
artemisd — ARTEMIS operator daemon

USAGE:
    artemisd [FLAGS]

FLAGS:
    --addr HOST:PORT       listen address (default 127.0.0.1:8900; port 0 = ephemeral)
    --asn N                the operator's AS number (default 65001)
    --owned PREFIX:ASN     onboard an owned prefix at startup (repeatable),
                           e.g. --owned 10.0.0.0/23:65001
    --vantage N            a vantage-point ASN for monitors (repeatable;
                           default 174 and 3356)
    --workers N            detection worker threads (default 1)
    --event-capacity N     incident event-log ring capacity (default 1024)
    --audit-log PATH       also append audit records to this JSONL file
    --webhook URL          register a webhook alert sink (repeatable)
    --bmp-feed NAME@HOST:PORT
                           dial a live RFC 7854 BMP collector at startup
                           (repeatable); the reader retries until the
                           collector accepts
    --help                 print this text
";

struct Flags {
    addr: String,
    asn: u32,
    owned: Vec<(String, u32)>,
    vantage: Vec<u32>,
    workers: usize,
    event_capacity: usize,
    audit_log: Option<PathBuf>,
    webhooks: Vec<String>,
    bmp_feeds: Vec<(String, String)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        addr: "127.0.0.1:8900".into(),
        asn: 65001,
        owned: Vec::new(),
        vantage: Vec::new(),
        workers: 1,
        event_capacity: 1024,
        audit_log: None,
        webhooks: Vec::new(),
        bmp_feeds: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => flags.addr = value("--addr")?,
            "--asn" => {
                flags.asn = value("--asn")?.parse().map_err(|e| format!("--asn: {e}"))?;
            }
            "--owned" => {
                let spec = value("--owned")?;
                let (prefix, asn) = spec
                    .rsplit_once(':')
                    .ok_or_else(|| format!("--owned wants PREFIX:ASN, got {spec}"))?;
                let asn: u32 = asn.parse().map_err(|e| format!("--owned origin: {e}"))?;
                flags.owned.push((prefix.to_string(), asn));
            }
            "--vantage" => {
                let v: u32 = value("--vantage")?
                    .parse()
                    .map_err(|e| format!("--vantage: {e}"))?;
                flags.vantage.push(v);
            }
            "--workers" => {
                flags.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--event-capacity" => {
                flags.event_capacity = value("--event-capacity")?
                    .parse()
                    .map_err(|e| format!("--event-capacity: {e}"))?;
            }
            "--audit-log" => flags.audit_log = Some(PathBuf::from(value("--audit-log")?)),
            "--webhook" => flags.webhooks.push(value("--webhook")?),
            "--bmp-feed" => {
                let spec = value("--bmp-feed")?;
                let (name, addr) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("--bmp-feed wants NAME@HOST:PORT, got {spec}"))?;
                flags.bmp_feeds.push((name.to_string(), addr.to_string()));
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(flags)
}

fn run(flags: Flags) -> Result<(), String> {
    let asn = Asn(flags.asn);
    let mut owned = Vec::new();
    for (prefix, origin) in &flags.owned {
        let prefix = prefix
            .parse()
            .map_err(|e| format!("--owned prefix {prefix}: {e}"))?;
        owned.push(OwnedPrefix::new(prefix, Asn(*origin)));
    }
    let vantage: BTreeSet<Asn> = if flags.vantage.is_empty() {
        [Asn(174), Asn(3356)].into_iter().collect()
    } else {
        flags.vantage.iter().copied().map(Asn).collect()
    };

    let config = ArtemisConfig::new(asn, owned);
    let pipeline = Pipeline::bare(config, vantage)
        .with_event_capacity(flags.event_capacity.max(1))
        .with_workers(flags.workers.max(1));
    let controller = Controller::new(asn, LatencyModel::const_secs(15), SimRng::new(1));
    let mut service = ArtemisService::new(pipeline, controller);
    for (name, addr) in &flags.bmp_feeds {
        let spec = FeedSpec::BmpLive {
            name: name.clone(),
            addr: addr.clone(),
            ring_capacity: None,
            filter: None,
        };
        let handle = service
            .pipeline_mut()
            .attach_feed(spec.build(), artemis_simnet::SimTime::ZERO);
        println!("artemisd dialing BMP collector {addr} as {name} ({handle})");
    }

    let daemon_config = DaemonConfig {
        audit_path: flags.audit_log,
        webhooks: flags.webhooks,
        ..DaemonConfig::default()
    };
    let handle = Daemon::start(&flags.addr, service, daemon_config).map_err(|e| e.to_string())?;
    println!("artemisd listening on http://{}", handle.addr());
    handle.wait();
    println!("artemisd stopped");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("artemisd: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("artemisd: {e}");
            ExitCode::FAILURE
        }
    }
}
