//! `artemisctl` — command-line client for a running `artemisd`.
//!
//! Thin argument parser over [`artemisd::CtlClient`]; every subcommand
//! maps onto one control-plane endpoint and prints the daemon's JSON
//! reply on stdout.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_core::{AlertId, EventCursor, MitigationPolicy, OwnedPrefix, ServiceCommand};
use artemis_feeds::{FeedEvent, FeedHandle, FeedKind, FeedSpec};
use artemis_simnet::SimTime;
use artemisd::CtlClient;
use serde::Serialize;
use std::process::ExitCode;

const USAGE: &str = "\
artemisctl — client for the ARTEMIS operator daemon

USAGE:
    artemisctl [--addr HOST:PORT] SUBCOMMAND [ARGS]

The default address is 127.0.0.1:8900. Subcommands taking --at SECS
apply the command at an explicit service-clock instant (seconds);
without it the daemon stamps its own clock.

SUBCOMMANDS:
    status                          full service snapshot
    prefixes                        owned-prefix table
    incidents                       incident table
    feeds                           feed-health table
    onboard PREFIX:ASN [--policy auto|confirm|detect] [--at SECS]
    offboard PREFIX [--at SECS]
    attach-feed ris-live|bgpmon COLLECTOR VANTAGE_ASN[,ASN...] [--at SECS]
    attach-feed bmp-live NAME HOST:PORT [--at SECS]
                                    dial a live RFC 7854 BMP collector
    detach-feed HANDLE [--at SECS]
    policy PREFIX auto|confirm|detect [--at SECS]
    confirm ALERT_ID [--at SECS]
    pause [--at SECS]
    resume [--at SECS]
    events [--cursor N] [--wait-ms M]
    inject --vantage ASN --prefix PREFIX --path \"ASN ASN ...\" [--at SECS]
                                    deliver one synthetic feed event
    audit [--from N]                the audit trail
    sinks                           registered alert sinks
    add-sink URL                    register a webhook alert sink
    metrics                         raw Prometheus scrape
    shutdown                        stop the daemon
    help                            print this text
";

fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(format!("{name} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_at(args: &mut Vec<String>) -> Result<Option<SimTime>, String> {
    Ok(take_flag(args, "--at")?
        .map(|s| s.parse::<u64>().map_err(|e| format!("--at: {e}")))
        .transpose()?
        .map(SimTime::from_secs))
}

fn parse_policy(s: &str) -> Result<MitigationPolicy, String> {
    match s {
        "auto" => Ok(MitigationPolicy::Auto),
        "confirm" => Ok(MitigationPolicy::ConfirmFirst),
        "detect" => Ok(MitigationPolicy::DetectOnly),
        other => Err(format!("unknown policy {other} (auto|confirm|detect)")),
    }
}

fn parse_prefix(s: &str) -> Result<Prefix, String> {
    s.parse().map_err(|e| format!("bad prefix {s}: {e}"))
}

fn parse_handle(s: &str) -> Result<FeedHandle, String> {
    let id: u64 = s.parse().map_err(|e| format!("bad feed handle {s}: {e}"))?;
    serde_json::from_str(&id.to_string()).map_err(|e| format!("bad feed handle {s}: {e}"))
}

fn print_json<T: Serialize>(value: &T) -> Result<(), String> {
    let json = serde_json::to_string(value).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn expect_arg(args: &mut Vec<String>, what: &str) -> Result<String, String> {
    if args.is_empty() {
        Err(format!("missing {what} (try help)"))
    } else {
        Ok(args.remove(0))
    }
}

fn apply_and_print(
    client: &CtlClient,
    command: ServiceCommand,
    at: Option<SimTime>,
) -> Result<(), String> {
    print_json(&client.command(&{
        let mut env = artemis_core::CommandEnvelope::new(command);
        if let Some(at) = at {
            env = env.at(at);
        }
        env
    })?)
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:8900".into());
    let client = CtlClient::new(addr);
    let sub = expect_arg(&mut args, "subcommand")?;
    match sub.as_str() {
        "status" => print_json(&client.status()?),
        "prefixes" => print_json(&client.query(artemis_core::ServiceQuery::OwnedPrefixes)?),
        "incidents" => print_json(&client.query(artemis_core::ServiceQuery::Incidents)?),
        "feeds" => print_json(&client.query(artemis_core::ServiceQuery::Feeds)?),
        "onboard" => {
            let at = take_at(&mut args)?;
            let policy = take_flag(&mut args, "--policy")?
                .map(|p| parse_policy(&p))
                .transpose()?;
            let spec = expect_arg(&mut args, "PREFIX:ASN")?;
            let (prefix, origin) = spec
                .rsplit_once(':')
                .ok_or_else(|| format!("onboard wants PREFIX:ASN, got {spec}"))?;
            let origin: u32 = origin.parse().map_err(|e| format!("origin ASN: {e}"))?;
            let owned = OwnedPrefix::new(parse_prefix(prefix)?, Asn(origin));
            apply_and_print(
                &client,
                ServiceCommand::AddOwnedPrefix { owned, policy },
                at,
            )
        }
        "offboard" => {
            let at = take_at(&mut args)?;
            let prefix = parse_prefix(&expect_arg(&mut args, "PREFIX")?)?;
            apply_and_print(&client, ServiceCommand::RemoveOwnedPrefix { prefix }, at)
        }
        "attach-feed" => {
            let at = take_at(&mut args)?;
            let kind = expect_arg(&mut args, "ris-live|bgpmon|bmp-live")?;
            let feed = if kind == "bmp-live" {
                // bmp-live NAME HOST:PORT — dials a real BMP collector.
                let name = expect_arg(&mut args, "NAME")?;
                let addr = expect_arg(&mut args, "HOST:PORT")?;
                FeedSpec::BmpLive {
                    name,
                    addr,
                    ring_capacity: None,
                    filter: None,
                }
            } else {
                let collector = expect_arg(&mut args, "COLLECTOR")?;
                let vps = expect_arg(&mut args, "VANTAGE_ASN[,ASN...]")?;
                let vantage: Vec<Asn> = vps
                    .split(',')
                    .map(|v| v.trim().parse::<u32>().map(Asn))
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("vantage ASNs: {e}"))?;
                match kind.as_str() {
                    "ris-live" => FeedSpec::ris_live(&collector, vantage),
                    "bgpmon" => FeedSpec::bgpmon(&collector, vantage),
                    other => {
                        return Err(format!(
                            "unknown feed kind {other} (ris-live|bgpmon|bmp-live)"
                        ))
                    }
                }
            };
            apply_and_print(&client, ServiceCommand::AttachFeed { feed }, at)
        }
        "detach-feed" => {
            let at = take_at(&mut args)?;
            let handle = parse_handle(&expect_arg(&mut args, "HANDLE")?)?;
            apply_and_print(&client, ServiceCommand::DetachFeed { handle }, at)
        }
        "policy" => {
            let at = take_at(&mut args)?;
            let prefix = parse_prefix(&expect_arg(&mut args, "PREFIX")?)?;
            let policy = parse_policy(&expect_arg(&mut args, "POLICY")?)?;
            apply_and_print(
                &client,
                ServiceCommand::SetMitigationPolicy { prefix, policy },
                at,
            )
        }
        "confirm" => {
            let at = take_at(&mut args)?;
            let id: u64 = expect_arg(&mut args, "ALERT_ID")?
                .parse()
                .map_err(|e| format!("alert id: {e}"))?;
            apply_and_print(
                &client,
                ServiceCommand::ConfirmMitigation { alert: AlertId(id) },
                at,
            )
        }
        "pause" => {
            let at = take_at(&mut args)?;
            apply_and_print(&client, ServiceCommand::Pause, at)
        }
        "resume" => {
            let at = take_at(&mut args)?;
            apply_and_print(&client, ServiceCommand::Resume, at)
        }
        "events" => {
            let cursor = match take_flag(&mut args, "--cursor")? {
                None => EventCursor::START,
                Some(raw) => serde_json::from_str(&raw)
                    .map_err(|e| format!("--cursor must be a sequence number: {e}"))?,
            };
            let wait_ms = take_flag(&mut args, "--wait-ms")?
                .map(|w| w.parse::<u64>().map_err(|e| format!("--wait-ms: {e}")))
                .transpose()?
                .unwrap_or(0);
            print_json(&client.events(cursor, wait_ms)?)
        }
        "inject" => {
            let at = take_at(&mut args)?.unwrap_or(SimTime::ZERO);
            let vantage: u32 = take_flag(&mut args, "--vantage")?
                .ok_or("inject requires --vantage")?
                .parse()
                .map_err(|e| format!("--vantage: {e}"))?;
            let prefix = parse_prefix(
                &take_flag(&mut args, "--prefix")?.ok_or("inject requires --prefix")?,
            )?;
            let path_raw = take_flag(&mut args, "--path")?.ok_or("inject requires --path")?;
            let hops: Vec<u32> = path_raw
                .split_whitespace()
                .map(|h| h.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("--path: {e}"))?;
            let as_path = AsPath::from_sequence(hops.iter().copied());
            let origin_as = as_path.origin();
            let event = FeedEvent {
                emitted_at: at,
                observed_at: at,
                source: FeedKind::RisLive,
                collector: "ctl".into(),
                vantage: Asn(vantage),
                prefix,
                as_path: Some(as_path),
                origin_as,
                raw: None,
            };
            print_json(&client.inject(vec![event])?)
        }
        "audit" => {
            let from = take_flag(&mut args, "--from")?
                .map(|f| f.parse::<u64>().map_err(|e| format!("--from: {e}")))
                .transpose()?
                .unwrap_or(0);
            print_json(&client.audit(from)?)
        }
        "sinks" => print_json(&client.sinks()?),
        "add-sink" => {
            let url = expect_arg(&mut args, "URL")?;
            print_json(&client.add_webhook(&url)?)
        }
        "metrics" => {
            print!("{}", client.metrics_text()?);
            Ok(())
        }
        "shutdown" => {
            client.shutdown()?;
            println!("{{\"shutting_down\":true}}");
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other} (try help)")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("artemisctl: {e}");
            ExitCode::FAILURE
        }
    }
}
