//! Append-only audit trail of operator commands.
//!
//! Every command the daemon receives — accepted or rejected — is
//! recorded with its outcome and two timestamps: the daemon's wall
//! clock (milliseconds since daemon start) and the service-clock
//! instant the command was applied at. Records are held in memory for
//! the `/v1/audit` endpoint and, when a path is configured, appended
//! as JSON lines to a file that survives the daemon.

use artemis_core::wire::CommandResult;
use artemis_core::ServiceCommand;
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One audited operator command with its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Position in the audit trail (0-based, gapless).
    pub seq: u64,
    /// Wall-clock milliseconds since the daemon started.
    pub wall_ms: u64,
    /// Service-clock instant the command was applied at.
    pub at: SimTime,
    /// The command exactly as applied.
    pub command: ServiceCommand,
    /// What it did, or why it was rejected.
    pub result: CommandResult,
}

impl AuditRecord {
    /// True when the command applied successfully.
    pub fn accepted(&self) -> bool {
        matches!(self.result, CommandResult::Outcome(_))
    }
}

/// The append-only audit log. Records are never mutated or removed.
pub struct AuditLog {
    records: Vec<AuditRecord>,
    file: Option<std::fs::File>,
}

impl AuditLog {
    /// An in-memory-only audit log.
    pub fn in_memory() -> Self {
        AuditLog {
            records: Vec::new(),
            file: None,
        }
    }

    /// An audit log that additionally appends each record as one JSON
    /// line to `path` (created if missing, appended if present).
    pub fn with_file(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AuditLog {
            records: Vec::new(),
            file: Some(file),
        })
    }

    /// Append one command/outcome pair, returning the stored record.
    pub fn record(
        &mut self,
        wall_ms: u64,
        at: SimTime,
        command: ServiceCommand,
        result: CommandResult,
    ) -> &AuditRecord {
        let rec = AuditRecord {
            seq: self.records.len() as u64,
            wall_ms,
            at,
            command,
            result,
        };
        if let (Some(file), Ok(line)) = (self.file.as_mut(), serde_json::to_string(&rec)) {
            // Audit persistence must never take the control plane down;
            // a full disk degrades to in-memory-only records.
            let _ = writeln!(file, "{line}");
        }
        self.records.push(rec);
        self.records.last().expect("just pushed")
    }

    /// Every record from `from` (a `seq`) on, oldest first.
    pub fn records_from(&self, from: u64) -> &[AuditRecord] {
        let start = (from as usize).min(self.records.len());
        &self.records[start..]
    }

    /// Total records appended.
    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    /// True before the first record.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_core::CommandOutcome;

    #[test]
    fn records_are_appended_in_order_and_sliceable() {
        let mut log = AuditLog::in_memory();
        assert!(log.is_empty());
        log.record(
            1,
            SimTime::from_secs(1),
            ServiceCommand::Pause,
            CommandResult::Outcome(CommandOutcome::Paused),
        );
        log.record(
            2,
            SimTime::from_secs(2),
            ServiceCommand::Resume,
            CommandResult::Rejected(artemis_core::ServiceError::NotPaused),
        );
        assert_eq!(log.len(), 2);
        assert!(log.records_from(0)[0].accepted());
        assert!(!log.records_from(1)[0].accepted());
        assert_eq!(log.records_from(1)[0].seq, 1);
        assert!(log.records_from(99).is_empty());
    }

    #[test]
    fn file_backed_log_writes_json_lines() {
        let dir = std::env::temp_dir().join(format!("artemisd-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = AuditLog::with_file(&path).unwrap();
            log.record(
                1,
                SimTime::from_secs(1),
                ServiceCommand::Pause,
                CommandResult::Outcome(CommandOutcome::Paused),
            );
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let rec: AuditRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(rec.command, ServiceCommand::Pause);
        let _ = std::fs::remove_file(&path);
    }
}
