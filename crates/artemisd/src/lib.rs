//! # artemisd — the network-facing ARTEMIS operator daemon
//!
//! The paper positions ARTEMIS as a service an operator *runs*: a
//! self-operated process watching the control plane for hijacks of the
//! operator's own prefixes and mitigating them automatically. The core
//! crates provide that system as a library ([`ArtemisService`]); this
//! crate provides the process. [`Daemon`] wraps a fully assembled
//! service behind a minimal HTTP/1.1 server (vendored
//! [`minihttp`], plain `std::net` — no async runtime) and exposes:
//!
//! * the full typed command/query API under versioned JSON envelopes
//!   (`POST /v1/command`, `POST /v1/query`, plus GET conveniences);
//! * the replayable incident stream as a cursor-based long-poll
//!   (`GET /v1/events?cursor=N&wait_ms=M`), with ring overruns
//!   surfaced as a `missed` count;
//! * Prometheus text metrics (`GET /metrics`): per-stage wall-clock
//!   batch latency, worker occupancy, per-feed lag, incidents by
//!   mitigation phase;
//! * an append-only [`AuditLog`] of every operator command with its
//!   outcome, optionally persisted as JSON lines;
//! * a pluggable alert layer ([`AlertSink`] / [`AlertDispatcher`])
//!   that pages webhooks about raised, pending, triggered, and
//!   resolved incidents through a bounded retry queue.
//!
//! [`CtlClient`] is the matching typed client; the `artemisd` and
//! `artemisctl` binaries are thin flag parsers over [`Daemon`] and
//! [`CtlClient`] respectively.
//!
//! [`ArtemisService`]: artemis_core::ArtemisService

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alerts;
pub mod audit;
pub mod client;
pub mod daemon;
pub mod metrics;

pub use alerts::{AlertDispatcher, AlertSink, DispatchStats, WebhookSink};
pub use audit::{AuditLog, AuditRecord};
pub use client::CtlClient;
pub use daemon::{AlertPayload, Daemon, DaemonConfig, DaemonHandle, SinkRequest};
