//! Robustness properties of the session layer: arbitrary byte
//! chunking never changes semantics, and garbage never panics.

use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
use artemis_bgpd::{Session, SessionConfig, SessionEvent, State};
use artemis_simnet::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn pair() -> (Session, Session) {
    (
        Session::connect(SessionConfig::new(Asn(65001), Ipv4Addr::new(10, 0, 0, 1))),
        Session::connect(SessionConfig::new(Asn(65002), Ipv4Addr::new(10, 0, 0, 2))),
    )
}

/// Chunk `bytes` according to `cuts` (fractions of the remaining
/// length) and deliver piecewise.
fn deliver_chunked(
    session: &mut Session,
    now: SimTime,
    bytes: &[u8],
    cuts: &[usize],
) -> Vec<SessionEvent> {
    let mut events = Vec::new();
    let mut rest = bytes;
    let mut i = 0;
    while !rest.is_empty() {
        let take = if i < cuts.len() {
            (cuts[i] % rest.len()).max(1)
        } else {
            rest.len()
        };
        let (chunk, tail) = rest.split_at(take);
        events.extend(session.on_bytes(now, chunk));
        rest = tail;
        i += 1;
    }
    events
}

proptest! {
    /// The handshake succeeds however the transport fragments the
    /// byte stream.
    #[test]
    fn handshake_survives_any_chunking(
        cuts_a in prop::collection::vec(1usize..64, 0..16),
        cuts_b in prop::collection::vec(1usize..64, 0..16),
    ) {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        a.on_transport_connected(now);
        b.on_transport_connected(now);
        // Exchange until quiet, chunking every transfer.
        for _ in 0..8 {
            let out_a = a.take_output();
            let out_b = b.take_output();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            deliver_chunked(&mut b, now, &out_a, &cuts_a);
            deliver_chunked(&mut a, now, &out_b, &cuts_b);
        }
        prop_assert_eq!(a.state(), State::Established);
        prop_assert_eq!(b.state(), State::Established);
    }

    /// Updates arrive intact regardless of fragmentation.
    #[test]
    fn updates_survive_any_chunking(
        cuts in prop::collection::vec(1usize..32, 0..24),
        nlri_count in 1usize..8,
    ) {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        a.on_transport_connected(now);
        b.on_transport_connected(now);
        for _ in 0..8 {
            let out_a = a.take_output();
            let out_b = b.take_output();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            b.on_bytes(now, &out_a);
            a.on_bytes(now, &out_b);
        }
        prop_assert_eq!(a.state(), State::Established);
        let nlri: Vec<Prefix> = (0..nlri_count)
            .map(|i| {
                Prefix::v4(Ipv4Addr::from((10u32 << 24) | ((i as u32) << 8)), 24)
                    .expect("valid")
            })
            .collect();
        let update = UpdateMessage::announce(
            PathAttributes::with_path(
                AsPath::from_sequence([65001u32]),
                "10.0.0.1".parse().expect("valid"),
            ),
            nlri,
        );
        a.announce(update.clone()).expect("established");
        let wire = a.take_output();
        let events = deliver_chunked(&mut b, now, &wire, &cuts);
        let received: Vec<&UpdateMessage> = events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Update(u) => Some(u),
                _ => None,
            })
            .collect();
        prop_assert_eq!(received, vec![&update]);
    }

    /// Random garbage never panics the session; it either waits for
    /// more bytes or tears down cleanly.
    #[test]
    fn garbage_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        a.on_transport_connected(now);
        b.on_transport_connected(now);
        for _ in 0..4 {
            let out_a = a.take_output();
            let out_b = b.take_output();
            b.on_bytes(now, &out_a);
            a.on_bytes(now, &out_b);
        }
        let _ = b.on_bytes(now, &garbage);
        // Whatever happened, the session is in a defined state and the
        // peer can still be notified.
        let _ = b.take_output();
        prop_assert!(matches!(
            b.state(),
            State::Idle | State::Established | State::OpenConfirm | State::OpenSent
        ));
    }
}
