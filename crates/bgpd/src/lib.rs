//! # artemis-bgpd — the BGP session layer
//!
//! ARTEMIS's mitigation path ends at real BGP sessions: the SDN
//! controller (paper §2) must speak RFC 4271 to the operator's routers
//! to inject the de-aggregated announcements. This crate implements
//! that session layer: the RFC 4271 §8 finite state machine (Idle →
//! Connect → OpenSent → OpenConfirm → Established), OPEN capability
//! negotiation (hold time, four-octet AS), keepalive/hold timers on
//! virtual time, and byte-stream framing over any ordered transport.
//!
//! The [`Session`] is sans-I/O in the style the networking guides
//! recommend: you hand it received bytes ([`Session::on_bytes`]) and
//! clock ticks ([`Session::poll_timers`]); it hands you bytes to send
//! ([`Session::take_output`]) and application events. That makes it
//! equally testable against the in-memory pipe used here and usable
//! over a real TCP stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

pub use session::{Session, SessionConfig, SessionEvent, State};
