//! The sans-I/O BGP session: FSM, negotiation, timers, framing.

use artemis_bgp::{BgpError, BgpMessage, Codec, NotificationMessage, OpenMessage, UpdateMessage};
use artemis_simnet::{SimDuration, SimTime};
use bytes::{Bytes, BytesMut};
use std::net::Ipv4Addr;

/// RFC 4271 §8 session states (the TCP-level `Active` state is folded
/// into `Connect`; transport management is the caller's job in a
/// sans-I/O design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Not trying to connect.
    Idle,
    /// Waiting for the transport to come up.
    Connect,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for the first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

/// Static configuration of one session endpoint.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Our AS number.
    pub local_as: artemis_bgp::Asn,
    /// Our BGP identifier.
    pub router_id: Ipv4Addr,
    /// Proposed hold time in seconds (RFC minimum semantics: 0 or ≥ 3).
    pub hold_time: u16,
    /// Expected peer AS; `None` accepts any (route-server style).
    pub peer_as: Option<artemis_bgp::Asn>,
    /// Advertise the four-octet-AS capability.
    pub four_octet: bool,
}

impl SessionConfig {
    /// A typical eBGP endpoint: 90 s hold time, four-octet capable.
    pub fn new(local_as: artemis_bgp::Asn, router_id: Ipv4Addr) -> Self {
        SessionConfig {
            local_as,
            router_id,
            hold_time: 90,
            peer_as: None,
            four_octet: true,
        }
    }

    /// Pin the expected peer AS (connection rejected otherwise).
    pub fn with_peer(mut self, peer: artemis_bgp::Asn) -> Self {
        self.peer_as = Some(peer);
        self
    }
}

/// Application-visible events produced by the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The FSM moved.
    StateChanged {
        /// Previous state.
        from: State,
        /// New state.
        to: State,
    },
    /// An UPDATE arrived (session Established).
    Update(UpdateMessage),
    /// The peer closed the session with a NOTIFICATION.
    PeerNotification(NotificationMessage),
    /// We closed the session (reason carried in the NOTIFICATION we
    /// sent, e.g. hold timer expiry).
    Closed {
        /// Human-readable reason.
        reason: String,
    },
}

/// One endpoint of a BGP session (sans-I/O).
pub struct Session {
    config: SessionConfig,
    state: State,
    codec: Codec,
    in_buf: BytesMut,
    out_buf: BytesMut,
    /// When silence from the peer kills the session.
    hold_deadline: Option<SimTime>,
    /// When we owe the peer our next KEEPALIVE.
    keepalive_at: Option<SimTime>,
    negotiated_hold: u16,
    peer_open: Option<OpenMessage>,
    /// Statistics: messages in/out by type code.
    msgs_in: u64,
    msgs_out: u64,
}

impl Session {
    /// Create a session that will actively open once the transport is
    /// up (state `Connect`).
    pub fn connect(config: SessionConfig) -> Session {
        Session {
            // Until negotiation completes, encode conservatively
            // two-octet unless we advertise the capability.
            codec: Codec {
                four_octet_as: config.four_octet,
            },
            config,
            state: State::Connect,
            in_buf: BytesMut::new(),
            out_buf: BytesMut::new(),
            hold_deadline: None,
            keepalive_at: None,
            negotiated_hold: 0,
            peer_open: None,
            msgs_in: 0,
            msgs_out: 0,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Negotiated hold time (0 until OPENs are exchanged).
    pub fn negotiated_hold_time(&self) -> u16 {
        self.negotiated_hold
    }

    /// The peer's OPEN (once received).
    pub fn peer_open(&self) -> Option<&OpenMessage> {
        self.peer_open.as_ref()
    }

    /// Messages received / sent.
    pub fn message_counts(&self) -> (u64, u64) {
        (self.msgs_in, self.msgs_out)
    }

    /// Bytes queued for transmission (drains the buffer).
    pub fn take_output(&mut self) -> Bytes {
        self.out_buf.split().freeze()
    }

    /// The earliest instant at which [`Session::poll_timers`] would do
    /// something.
    pub fn next_timer(&self) -> Option<SimTime> {
        match (self.hold_deadline, self.keepalive_at) {
            (Some(h), Some(k)) => Some(h.min(k)),
            (Some(t), None) | (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    fn transition(&mut self, to: State, events: &mut Vec<SessionEvent>) {
        if self.state != to {
            events.push(SessionEvent::StateChanged {
                from: self.state,
                to,
            });
            self.state = to;
        }
    }

    fn send(&mut self, msg: &BgpMessage) {
        let bytes = self.codec.encode(msg).expect("session messages encode");
        self.out_buf.extend_from_slice(&bytes);
        self.msgs_out += 1;
    }

    /// The transport connected: send our OPEN (Connect → OpenSent).
    pub fn on_transport_connected(&mut self, _now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if self.state != State::Connect {
            return events;
        }
        let open = OpenMessage {
            version: 4,
            asn: self.config.local_as,
            hold_time: self.config.hold_time,
            bgp_id: self.config.router_id,
            four_octet_capable: self.config.four_octet,
        };
        self.send(&BgpMessage::Open(open));
        self.transition(State::OpenSent, &mut events);
        events
    }

    /// The transport failed/closed underneath us.
    pub fn on_transport_closed(&mut self, _now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        self.reset();
        self.transition(State::Idle, &mut events);
        events.push(SessionEvent::Closed {
            reason: "transport closed".into(),
        });
        events
    }

    fn reset(&mut self) {
        self.hold_deadline = None;
        self.keepalive_at = None;
        self.in_buf.clear();
        self.peer_open = None;
        self.negotiated_hold = 0;
    }

    /// Ingest received bytes; may produce events and queue output.
    ///
    /// Framing: BGP messages are length-prefixed; partial messages stay
    /// buffered until completed. A malformed message tears the session
    /// down with a NOTIFICATION, per the RFC.
    pub fn on_bytes(&mut self, now: SimTime, bytes: &[u8]) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        self.in_buf.extend_from_slice(bytes);
        loop {
            // Do we have a full message? Header is 19 bytes; bytes
            // 16..18 carry the length.
            if self.in_buf.len() < 19 {
                break;
            }
            let claimed = u16::from_be_bytes([self.in_buf[16], self.in_buf[17]]) as usize;
            if claimed > self.in_buf.len() {
                break; // wait for more bytes
            }
            let frame = self.in_buf.split_to(claimed.max(19));
            match self.codec.decode(&frame) {
                Ok((msg, _)) => {
                    self.msgs_in += 1;
                    self.handle_message(now, msg, &mut events);
                }
                Err(e) => {
                    self.fail(now, 1, 0, &format!("decode error: {e}"), &mut events);
                    break;
                }
            }
            if self.state == State::Idle {
                break;
            }
        }
        events
    }

    fn handle_message(&mut self, now: SimTime, msg: BgpMessage, events: &mut Vec<SessionEvent>) {
        // Any message from the peer restarts the hold timer.
        if self.negotiated_hold > 0 {
            self.hold_deadline = Some(now + SimDuration::from_secs(self.negotiated_hold as u64));
        }
        match (self.state, msg) {
            (State::OpenSent, BgpMessage::Open(open)) => {
                if let Some(expected) = self.config.peer_as {
                    if open.asn != expected {
                        self.fail(now, 2, 2, "bad peer AS", events);
                        return;
                    }
                }
                // Negotiate: hold = min, four-octet = both.
                self.negotiated_hold = self.config.hold_time.min(open.hold_time);
                self.codec.four_octet_as = self.config.four_octet && open.four_octet_capable;
                self.peer_open = Some(open);
                self.send(&BgpMessage::Keepalive);
                if self.negotiated_hold > 0 {
                    self.hold_deadline =
                        Some(now + SimDuration::from_secs(self.negotiated_hold as u64));
                    self.keepalive_at =
                        Some(now + SimDuration::from_secs(self.negotiated_hold as u64 / 3));
                }
                self.transition(State::OpenConfirm, events);
            }
            (State::OpenConfirm, BgpMessage::Keepalive) => {
                self.transition(State::Established, events);
            }
            (State::Established, BgpMessage::Keepalive) => {
                // hold timer already refreshed above
            }
            (State::Established, BgpMessage::Update(update)) => {
                events.push(SessionEvent::Update(update));
            }
            (_, BgpMessage::Notification(n)) => {
                events.push(SessionEvent::PeerNotification(n));
                self.reset();
                self.transition(State::Idle, events);
            }
            (state, msg) => {
                // FSM error: message not acceptable in this state.
                self.fail(
                    now,
                    5,
                    0,
                    &format!("unexpected {:?} in {state:?}", msg.type_code()),
                    events,
                );
            }
        }
    }

    fn fail(
        &mut self,
        _now: SimTime,
        code: u8,
        subcode: u8,
        reason: &str,
        events: &mut Vec<SessionEvent>,
    ) {
        self.send(&BgpMessage::Notification(NotificationMessage {
            code,
            subcode,
            data: Vec::new(),
        }));
        self.reset();
        self.transition(State::Idle, events);
        events.push(SessionEvent::Closed {
            reason: reason.to_string(),
        });
    }

    /// Fire any due timers: keepalive transmission and hold expiry.
    pub fn poll_timers(&mut self, now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if let Some(hold) = self.hold_deadline {
            if now >= hold {
                self.fail(now, 4, 0, "hold timer expired", &mut events);
                return events;
            }
        }
        if let Some(ka) = self.keepalive_at {
            if now >= ka && matches!(self.state, State::OpenConfirm | State::Established) {
                self.send(&BgpMessage::Keepalive);
                self.keepalive_at =
                    Some(now + SimDuration::from_secs((self.negotiated_hold as u64 / 3).max(1)));
            }
        }
        events
    }

    /// Queue an UPDATE for transmission (Established only).
    pub fn announce(&mut self, update: UpdateMessage) -> Result<(), BgpError> {
        if self.state != State::Established {
            return Err(BgpError::Truncated("session not established"));
        }
        self.send(&BgpMessage::Update(update));
        Ok(())
    }

    /// Administratively close (sends cease NOTIFICATION).
    pub fn close(&mut self, _now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if self.state != State::Idle {
            self.send(&BgpMessage::Notification(
                NotificationMessage::cease_admin_shutdown(),
            ));
            self.reset();
            self.transition(State::Idle, &mut events);
            events.push(SessionEvent::Closed {
                reason: "administrative shutdown".into(),
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix};
    use std::str::FromStr;

    fn pair() -> (Session, Session) {
        let a = Session::connect(
            SessionConfig::new(Asn(65001), Ipv4Addr::new(10, 0, 0, 1)).with_peer(Asn(65002)),
        );
        let b = Session::connect(
            SessionConfig::new(Asn(65002), Ipv4Addr::new(10, 0, 0, 2)).with_peer(Asn(65001)),
        );
        (a, b)
    }

    /// Shuttle queued bytes between the two endpoints until quiet.
    fn shuttle(now: SimTime, a: &mut Session, b: &mut Session) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        loop {
            let out_a = a.take_output();
            let out_b = b.take_output();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            if !out_a.is_empty() {
                events.extend(b.on_bytes(now, &out_a));
            }
            if !out_b.is_empty() {
                events.extend(a.on_bytes(now, &out_b));
            }
        }
        events
    }

    fn establish(now: SimTime, a: &mut Session, b: &mut Session) {
        a.on_transport_connected(now);
        b.on_transport_connected(now);
        shuttle(now, a, b);
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
    }

    #[test]
    fn handshake_reaches_established() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        assert_eq!(a.state(), State::Connect);
        a.on_transport_connected(t0);
        assert_eq!(a.state(), State::OpenSent);
        b.on_transport_connected(t0);
        let events = shuttle(t0, &mut a, &mut b);
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
        assert!(events.iter().any(|e| matches!(
            e,
            SessionEvent::StateChanged {
                to: State::Established,
                ..
            }
        )));
        // Hold time negotiated to min(90, 90).
        assert_eq!(a.negotiated_hold_time(), 90);
        assert_eq!(b.peer_open().unwrap().asn, Asn(65001));
    }

    #[test]
    fn hold_time_negotiates_to_min() {
        let mut a = Session::connect(SessionConfig {
            hold_time: 30,
            ..SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1))
        });
        let mut b = Session::connect(SessionConfig::new(Asn(2), Ipv4Addr::new(2, 2, 2, 2)));
        let t0 = SimTime::ZERO;
        a.on_transport_connected(t0);
        b.on_transport_connected(t0);
        shuttle(t0, &mut a, &mut b);
        assert_eq!(a.negotiated_hold_time(), 30);
        assert_eq!(b.negotiated_hold_time(), 30);
    }

    #[test]
    fn wrong_peer_as_is_rejected() {
        let mut a = Session::connect(
            SessionConfig::new(Asn(65001), Ipv4Addr::new(1, 1, 1, 1)).with_peer(Asn(9_999)),
        );
        let mut b = Session::connect(SessionConfig::new(Asn(65002), Ipv4Addr::new(2, 2, 2, 2)));
        let t0 = SimTime::ZERO;
        a.on_transport_connected(t0);
        b.on_transport_connected(t0);
        let events = shuttle(t0, &mut a, &mut b);
        assert_eq!(a.state(), State::Idle, "a must refuse the wrong peer");
        assert!(events.iter().any(|e| matches!(
            e,
            SessionEvent::Closed { reason } if reason.contains("bad peer AS")
        )));
        // b learns via the NOTIFICATION.
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::PeerNotification(n) if n.code == 2)));
    }

    #[test]
    fn updates_flow_when_established() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        let update = UpdateMessage::announce(
            PathAttributes::with_path(
                AsPath::from_sequence([65001u32]),
                "10.0.0.1".parse().unwrap(),
            ),
            vec![Prefix::from_str("10.0.0.0/24").unwrap()],
        );
        a.announce(update.clone()).unwrap();
        let events = shuttle(t0, &mut a, &mut b);
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::Update(u) if *u == update)));
    }

    #[test]
    fn announce_requires_established() {
        let (mut a, _) = pair();
        let update = UpdateMessage::withdraw(vec![Prefix::from_str("10.0.0.0/24").unwrap()]);
        assert!(a.announce(update).is_err());
    }

    #[test]
    fn keepalives_maintain_the_session() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        // Advance in 20 s steps for 10 minutes, delivering keepalives.
        let mut now = t0;
        for _ in 0..30 {
            now += SimDuration::from_secs(20);
            a.poll_timers(now);
            b.poll_timers(now);
            shuttle(now, &mut a, &mut b);
        }
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
    }

    #[test]
    fn silence_expires_the_hold_timer() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        // b goes silent; a's hold timer (90 s) must fire.
        let later = t0 + SimDuration::from_secs(91);
        let events = a.poll_timers(later);
        assert_eq!(a.state(), State::Idle);
        assert!(events.iter().any(|e| matches!(
            e,
            SessionEvent::Closed { reason } if reason.contains("hold timer")
        )));
        // The NOTIFICATION (code 4) is queued for the peer.
        let out = a.take_output();
        let (msg, _) = Codec::four_octet().decode(&out).unwrap();
        assert!(matches!(msg, BgpMessage::Notification(n) if n.code == 4));
    }

    #[test]
    fn next_timer_reports_earliest() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        let next = a.next_timer().expect("timers armed when established");
        // Keepalive (hold/3 = 30 s) earlier than hold (90 s).
        assert_eq!(next, t0 + SimDuration::from_secs(30));
    }

    #[test]
    fn partial_frames_are_buffered() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        a.on_transport_connected(t0);
        let open_bytes = a.take_output();
        b.on_transport_connected(t0);
        let _ = b.take_output();
        // Deliver a's OPEN one byte at a time.
        let mut events = Vec::new();
        for chunk in open_bytes.chunks(1) {
            events.extend(b.on_bytes(t0, chunk));
        }
        assert_eq!(b.state(), State::OpenConfirm, "reassembled OPEN processed");
    }

    #[test]
    fn garbage_bytes_tear_down_with_notification() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        let garbage = vec![0u8; 19]; // all-zero marker = BadMarker
        let events = b.on_bytes(t0, &garbage);
        assert_eq!(b.state(), State::Idle);
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::Closed { .. })));
    }

    #[test]
    fn administrative_close_sends_cease() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        a.close(t0);
        let events = shuttle(t0, &mut a, &mut b);
        assert_eq!(a.state(), State::Idle);
        assert_eq!(b.state(), State::Idle);
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::PeerNotification(n) if n.code == 6)));
    }

    #[test]
    fn four_octet_negotiation_falls_back() {
        let mut a = Session::connect(SessionConfig {
            four_octet: false,
            ..SessionConfig::new(Asn(65001), Ipv4Addr::new(1, 1, 1, 1))
        });
        let mut b = Session::connect(SessionConfig::new(Asn(65002), Ipv4Addr::new(2, 2, 2, 2)));
        let t0 = SimTime::ZERO;
        a.on_transport_connected(t0);
        b.on_transport_connected(t0);
        shuttle(t0, &mut a, &mut b);
        assert_eq!(a.state(), State::Established);
        // Updates still flow (the codec fell back to two-octet).
        let update = UpdateMessage::announce(
            PathAttributes::with_path(
                AsPath::from_sequence([65001u32]),
                "10.0.0.1".parse().unwrap(),
            ),
            vec![Prefix::from_str("10.0.0.0/24").unwrap()],
        );
        a.announce(update.clone()).unwrap();
        let events = shuttle(t0, &mut a, &mut b);
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::Update(u) if u.nlri == update.nlri)));
    }

    #[test]
    fn message_counters_track_traffic() {
        let (mut a, mut b) = pair();
        let t0 = SimTime::ZERO;
        establish(t0, &mut a, &mut b);
        let (rx, tx) = a.message_counts();
        assert!(rx >= 2, "OPEN + KEEPALIVE received");
        assert!(tx >= 2, "OPEN + KEEPALIVE sent");
    }
}
