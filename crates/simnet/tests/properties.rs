//! Property tests for the simulation substrate: the event queue's
//! ordering guarantees and the statistical calibration of latency
//! models and fault injection.

use artemis_simnet::{EventQueue, FaultInjector, LatencyModel, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order with FIFO ties —
    /// whatever the insertion order.
    #[test]
    fn queue_pops_sorted_with_fifo_ties(
        times in prop::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(x) = q.pop() {
            popped.push(x);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    /// The queue's clock equals the last popped event's time and is
    /// monotone.
    #[test]
    fn queue_clock_is_monotone(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for t in &times {
            q.schedule(SimTime::from_micros(*t), ());
        }
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(q.now() >= prev);
            prop_assert_eq!(q.now(), t);
            prev = t;
        }
    }

    /// Uniform latency models stay within their bounds for any bounds.
    #[test]
    fn uniform_latency_in_bounds(lo in 0u64..10_000, width in 0u64..10_000, seed in any::<u64>()) {
        let model = LatencyModel::Uniform {
            lo: SimDuration::from_micros(lo),
            hi: SimDuration::from_micros(lo + width),
        };
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let d = model.sample(&mut rng);
            prop_assert!(d.as_micros() >= lo && d.as_micros() <= lo + width);
        }
    }

    /// Fault injection: drop rate converges to the configured
    /// probability (within generous statistical bounds).
    #[test]
    fn drop_rate_calibrated(p in 0.05f64..0.95, seed in any::<u64>()) {
        let inj = FaultInjector::dropper(p);
        let mut rng = SimRng::new(seed);
        let n = 4_000;
        let drops = (0..n).filter(|_| inj.apply(&mut rng).dropped()).count();
        let rate = drops as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.05, "rate {rate} vs p {p}");
    }

    /// Forked RNG streams with the same label agree; different labels
    /// disagree.
    #[test]
    fn fork_determinism(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let master = SimRng::new(seed);
        let mut a = master.fork(&label);
        let mut b = master.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.range_u64(0, u64::MAX - 1), b.range_u64(0, u64::MAX - 1));
        }
        let mut c = master.fork(&format!("{label}-x"));
        let mut d = master.fork(&label);
        let equal = (0..16)
            .filter(|_| c.range_u64(0, u64::MAX - 1) == d.range_u64(0, u64::MAX - 1))
            .count();
        prop_assert!(equal < 4, "distinct labels should diverge");
    }

    /// Durations: arithmetic identities hold for arbitrary values.
    #[test]
    fn duration_arithmetic_identities(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.min(db) + da.max(db), da + db);
        let t = SimTime::ZERO + da;
        prop_assert_eq!(t.since(SimTime::ZERO), da);
    }
}
