//! Fault injection for links and feeds: drops, duplicates, delay spikes.

use crate::{LatencyModel, SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// What happened to a message passing through a faulty element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDecision {
    /// Extra delay to apply to each surviving copy. Empty = dropped.
    /// One element = delivered once; two = duplicated.
    pub deliveries: Vec<SimDuration>,
}

impl FaultDecision {
    /// Was the message dropped entirely?
    pub fn dropped(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// Clean single delivery with no extra delay.
    pub fn clean() -> Self {
        FaultDecision {
            deliveries: vec![SimDuration::ZERO],
        }
    }
}

/// A configurable fault injector, in the spirit of smoltcp's
/// `--drop-chance` / `--corrupt-chance` example switches. Applied by
/// links (BGP messages) and feeds (monitor events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// Probability a message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability an extra delay spike is added.
    pub spike_probability: f64,
    /// The spike magnitude distribution.
    pub spike: LatencyModel,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultInjector {
    /// No faults at all.
    pub fn none() -> Self {
        FaultInjector {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            spike_probability: 0.0,
            spike: LatencyModel::zero(),
        }
    }

    /// Drop-only injector.
    pub fn dropper(p: f64) -> Self {
        FaultInjector {
            drop_probability: p,
            ..Self::none()
        }
    }

    /// Spike-only injector.
    pub fn spiker(p: f64, spike: LatencyModel) -> Self {
        FaultInjector {
            spike_probability: p,
            spike,
            ..Self::none()
        }
    }

    /// True if this injector can never do anything.
    pub fn is_noop(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.spike_probability <= 0.0
    }

    /// Decide the fate of one message.
    pub fn apply(&self, rng: &mut SimRng) -> FaultDecision {
        if self.is_noop() {
            return FaultDecision::clean();
        }
        if rng.chance(self.drop_probability) {
            return FaultDecision {
                deliveries: Vec::new(),
            };
        }
        let copies = if rng.chance(self.duplicate_probability) {
            2
        } else {
            1
        };
        let deliveries = (0..copies)
            .map(|_| {
                if rng.chance(self.spike_probability) {
                    self.spike.sample(rng)
                } else {
                    SimDuration::ZERO
                }
            })
            .collect();
        FaultDecision { deliveries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_always_clean() {
        let inj = FaultInjector::none();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(inj.apply(&mut rng), FaultDecision::clean());
        }
        assert!(inj.is_noop());
    }

    #[test]
    fn dropper_drops_at_rate() {
        let inj = FaultInjector::dropper(0.25);
        let mut rng = SimRng::new(2);
        let drops = (0..10_000)
            .filter(|_| inj.apply(&mut rng).dropped())
            .count();
        assert!((2_200..2_800).contains(&drops), "drops {drops}");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let inj = FaultInjector {
            duplicate_probability: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SimRng::new(3);
        let d = inj.apply(&mut rng);
        assert_eq!(d.deliveries.len(), 2);
        assert!(!d.dropped());
    }

    #[test]
    fn spikes_add_delay() {
        let inj = FaultInjector::spiker(1.0, LatencyModel::const_secs(9));
        let mut rng = SimRng::new(4);
        let d = inj.apply(&mut rng);
        assert_eq!(d.deliveries, vec![SimDuration::from_secs(9)]);
    }

    #[test]
    fn drop_takes_precedence_over_duplicate() {
        let inj = FaultInjector {
            drop_probability: 1.0,
            duplicate_probability: 1.0,
            spike_probability: 1.0,
            spike: LatencyModel::const_secs(1),
        };
        let mut rng = SimRng::new(5);
        assert!(inj.apply(&mut rng).dropped());
    }
}
