//! Seedable, forkable random-number streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG stream.
///
/// Components fork their own stream from the master seed with a stable
/// label ([`SimRng::fork`]); this way the sequence a component sees
/// depends only on `(master seed, label)`, never on how many draws other
/// components made — adding a feed to an experiment does not change how
/// the topology was generated.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create the master stream from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork an independent stream identified by a stable label.
    ///
    /// Uses an FNV-1a mix of the label into the master seed so distinct
    /// labels give (with overwhelming probability) distinct streams.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = self.seed ^ h.rotate_left(17);
        SimRng::new(seed)
    }

    /// Fork with a numeric discriminator (e.g. per-session streams).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        self.fork(&format!("{label}#{index}"))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Choose a random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Access the underlying `rand` RNG (for `rand_distr` sampling).
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_of_parent_draws() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // Draw from parent2 before forking: forks must still agree.
        let _ = parent2.next_u64();
        let mut f1 = parent1.fork("feeds");
        let mut f2 = parent2.fork("feeds");
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let master = SimRng::new(7);
        let mut a = master.fork("topology");
        let mut b = master.fork("feeds");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SimRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(9);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
    }

    #[test]
    #[should_panic]
    fn sample_more_than_population_panics() {
        SimRng::new(1).sample_indices(3, 4);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }
}
