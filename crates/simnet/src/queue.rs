//! The deterministic event queue at the heart of the simulator.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by `(time, seq)` so same-time events
/// pop in insertion (FIFO) order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events carry an arbitrary payload `E`. Popping advances the queue's
/// notion of *now*; scheduling an event in the past is a logic error and
/// panics (it would silently reorder causality otherwise).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// If `time` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Schedule `event` after a delay relative to *now*.
    pub fn schedule_after(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the next event, advancing *now* to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Drop all pending events (the clock keeps its position).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        assert_eq!(q.popped(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_determinism() {
        // Two runs with identical operations produce identical traces.
        fn run() -> Vec<(u64, u32)> {
            let mut q = EventQueue::new();
            let mut trace = Vec::new();
            q.schedule(SimTime::from_secs(1), 1u32);
            q.schedule(SimTime::from_secs(1), 2);
            while let Some((t, e)) = q.pop() {
                trace.push((t.as_micros(), e));
                if e < 10 && trace.len() < 20 {
                    q.schedule_after(SimDuration::from_millis(e as u64 * 10), e + 10);
                }
            }
            trace
        }
        assert_eq!(run(), run());
    }
}
