//! # artemis-simnet — deterministic discrete-event simulation engine
//!
//! Everything in the ARTEMIS reproduction runs on *virtual time*: the
//! BGP propagation simulator, the monitoring feeds and the ARTEMIS
//! services all schedule work on one [`EventQueue`]. A single `u64`
//! seed fully determines a run, which is what makes the paper's
//! experiments repeatable and the test suite stable.
//!
//! Design notes (following the event-driven style of the networking
//! guides):
//!
//! * The queue is a binary heap ordered by `(time, sequence)` — events
//!   scheduled for the same instant pop in FIFO order, so there is no
//!   hidden nondeterminism.
//! * No wall-clock, no threads, no blocking: a simulation step is a pure
//!   function of (state, event).
//! * Randomness is explicit: components own [`SimRng`] streams forked
//!   from the master seed, so adding a component never perturbs the
//!   random draws of another.
//! * Latency is modeled by [`LatencyModel`] (constant / uniform /
//!   exponential / lognormal / empirical) and faults by
//!   [`FaultInjector`] (drop / duplicate / delay-spike), mirroring the
//!   fault-injection switches smoltcp exposes on its examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod latency;
pub mod queue;
pub mod rng;
pub mod time;

pub use fault::{FaultDecision, FaultInjector};
pub use latency::LatencyModel;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
