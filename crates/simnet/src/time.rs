//! Virtual time: instants and durations with microsecond resolution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration of virtual time, in microseconds.
///
/// Microsecond resolution comfortably covers everything BGP-scale (the
/// shortest delays we model are ~100 µs of router processing) while a
/// `u64` still spans ~584 000 years of simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// From fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    /// Human form: `1m23.456s`, `45.000s`, `120ms`, `50µs`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 60_000_000 {
            let mins = us / 60_000_000;
            let rem = us % 60_000_000;
            write!(f, "{}m{:.3}s", mins, rem as f64 / 1e6)
        } else if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{us}µs")
        }
    }
}

/// An instant of virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// From whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant; panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// Duration since an earlier instant, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    /// `t=MM:SS.mmm` form used throughout experiment logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        let mins = total_ms / 60_000;
        let secs = (total_ms % 60_000) / 1_000;
        let ms = total_ms % 1_000;
        write!(f, "t={mins:02}:{secs:02}.{ms:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(10);
        let b = SimDuration::from_secs(4);
        assert_eq!(a + b, SimDuration::from_secs(14));
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(a * 3, SimDuration::from_secs(30));
        assert_eq!(a / 2, SimDuration::from_secs(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn duration_scaling_by_float() {
        let a = SimDuration::from_secs(10);
        assert_eq!(a * 0.5, SimDuration::from_secs(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn duration_display_forms() {
        assert_eq!(SimDuration::from_micros(50).to_string(), "50µs");
        assert_eq!(SimDuration::from_millis(120).to_string(), "120ms");
        assert_eq!(SimDuration::from_secs(45).to_string(), "45.000s");
        assert_eq!(SimDuration::from_secs(83).to_string(), "1m23.000s");
    }

    #[test]
    fn time_arithmetic_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(45);
        assert_eq!(t1.since(t0), SimDuration::from_secs(45));
        assert_eq!(t1 - t0, SimDuration::from_secs(45));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        let mut t = t0;
        t += SimDuration::from_millis(1500);
        assert_eq!(t.as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic]
    fn since_panics_on_order_violation() {
        let t1 = SimTime::from_secs(10);
        let _ = SimTime::ZERO.since(t1);
    }

    #[test]
    fn time_display() {
        let t = SimTime::from_secs(83) + SimDuration::from_millis(250);
        assert_eq!(t.to_string(), "t=01:23.250");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
