//! Latency models used to calibrate feeds, links and controllers.

use crate::{SimDuration, SimRng};
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

/// A distribution over delays.
///
/// The ARTEMIS calibration (DESIGN.md §4) uses:
/// * `Constant`/`Uniform` for link propagation and controller install
///   delays,
/// * `Exponential` for router processing,
/// * `LogNormal` for collector export pipelines (heavy-tailed, matches
///   measured RIS/BGPmon latencies),
/// * `Empirical` to replay measured samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly `SimDuration`.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean delay.
        mean: SimDuration,
    },
    /// Log-normal parameterized by median and shape `sigma`.
    LogNormal {
        /// Median delay (`exp(mu)`).
        median: SimDuration,
        /// Shape parameter (sigma of the underlying normal).
        sigma: f64,
    },
    /// Sample uniformly from a fixed set of observed delays.
    Empirical(Vec<SimDuration>),
}

impl LatencyModel {
    /// Zero delay.
    pub fn zero() -> Self {
        LatencyModel::Constant(SimDuration::ZERO)
    }

    /// Convenience constructor: constant milliseconds.
    pub fn const_millis(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Convenience constructor: constant seconds.
    pub fn const_secs(s: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_secs(s))
    }

    /// Convenience constructor: uniform between milliseconds bounds.
    pub fn uniform_millis(lo: u64, hi: u64) -> Self {
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(lo),
            hi: SimDuration::from_millis(hi),
        }
    }

    /// Convenience constructor: uniform between second bounds.
    pub fn uniform_secs(lo: u64, hi: u64) -> Self {
        LatencyModel::Uniform {
            lo: SimDuration::from_secs(lo),
            hi: SimDuration::from_secs(hi),
        }
    }

    /// Draw one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                let (lo_us, hi_us) = (lo.as_micros(), hi.as_micros());
                if hi_us <= lo_us {
                    *lo
                } else {
                    SimDuration::from_micros(rng.range_u64(lo_us, hi_us + 1))
                }
            }
            LatencyModel::Exponential { mean } => {
                let lambda = 1.0 / mean.as_secs_f64().max(1e-9);
                let exp = Exp::new(lambda).expect("lambda > 0");
                SimDuration::from_secs_f64(exp.sample(rng.raw()))
            }
            LatencyModel::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().max(1e-9).ln();
                let ln = LogNormal::new(mu, *sigma).expect("finite parameters");
                SimDuration::from_secs_f64(ln.sample(rng.raw()))
            }
            LatencyModel::Empirical(samples) => samples
                .is_empty()
                .then(SimDuration::default)
                .unwrap_or_else(|| *rng.choose(samples).expect("non-empty checked")),
        }
    }

    /// The model's mean, where analytically available (`Empirical`
    /// returns the sample mean; `LogNormal` uses exp(mu + sigma²/2)).
    pub fn mean(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, hi } => (*lo + *hi) / 2,
            LatencyModel::Exponential { mean } => *mean,
            LatencyModel::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().max(1e-9).ln();
                SimDuration::from_secs_f64((mu + sigma * sigma / 2.0).exp())
            }
            LatencyModel::Empirical(samples) => {
                if samples.is_empty() {
                    SimDuration::ZERO
                } else {
                    samples.iter().copied().sum::<SimDuration>() / samples.len() as u64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::const_millis(30);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(30));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::uniform_millis(10, 20);
        let mut r = rng();
        for _ in 0..1_000 {
            let d = m.sample(&mut r);
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_secs(5),
            hi: SimDuration::from_secs(5),
        };
        assert_eq!(m.sample(&mut rng()), SimDuration::from_secs(5));
    }

    #[test]
    fn exponential_mean_is_calibrated() {
        let m = LatencyModel::Exponential {
            mean: SimDuration::from_secs(10),
        };
        let mut r = rng();
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| m.sample(&mut r)).sum();
        let mean_s = total.as_secs_f64() / n as f64;
        assert!((9.0..11.0).contains(&mean_s), "mean {mean_s}");
    }

    #[test]
    fn lognormal_median_is_calibrated() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_secs(4),
            sigma: 0.8,
        };
        let mut r = rng();
        let mut samples: Vec<u64> = (0..10_001).map(|_| m.sample(&mut r).as_micros()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64 / 1e6;
        assert!((3.5..4.5).contains(&median), "median {median}");
    }

    #[test]
    fn empirical_samples_from_set() {
        let set = vec![
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
        ];
        let m = LatencyModel::Empirical(set.clone());
        let mut r = rng();
        for _ in 0..100 {
            assert!(set.contains(&m.sample(&mut r)));
        }
        assert_eq!(
            LatencyModel::Empirical(vec![]).sample(&mut r),
            SimDuration::ZERO
        );
    }

    #[test]
    fn means() {
        assert_eq!(
            LatencyModel::uniform_secs(10, 20).mean(),
            SimDuration::from_secs(15)
        );
        assert_eq!(
            LatencyModel::const_secs(7).mean(),
            SimDuration::from_secs(7)
        );
        assert_eq!(
            LatencyModel::Empirical(vec![SimDuration::from_secs(2), SimDuration::from_secs(4)])
                .mean(),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::uniform_millis(0, 1_000_000);
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..50 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
