//! TABLE_DUMP_V2: peer index tables and per-prefix RIB records.

use crate::record::MrtError;
use artemis_bgp::prefix::Afi;
use artemis_bgp::{Asn, Codec, PathAttributes, Prefix};
use bytes::{Buf, BufMut, BytesMut};
use std::net::IpAddr;

/// One peer in a [`PeerIndexTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer BGP identifier.
    pub bgp_id: std::net::Ipv4Addr,
    /// Peer address.
    pub addr: IpAddr,
    /// Peer ASN.
    pub asn: Asn,
}

/// The PEER_INDEX_TABLE record: maps peer indices used by RIB entries
/// to collector peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: std::net::Ipv4Addr,
    /// Optional view name.
    pub view_name: String,
    /// Indexed peers.
    pub peers: Vec<PeerEntry>,
}

/// Error on any `len > u16::MAX`: the wire format counts this field
/// with 16 bits, and truncating the counter would corrupt the record.
fn check_u16(field: &'static str, len: usize) -> Result<u16, MrtError> {
    u16::try_from(len).map_err(|_| MrtError::FieldOverflow {
        field,
        len,
        max: u16::MAX as usize,
    })
}

impl PeerIndexTable {
    pub(crate) fn encode(&self) -> Result<Vec<u8>, MrtError> {
        let mut out = BytesMut::new();
        out.put_slice(&self.collector_id.octets());
        out.put_u16(check_u16("peer index view name", self.view_name.len())?);
        out.put_slice(self.view_name.as_bytes());
        out.put_u16(check_u16("peer index peer count", self.peers.len())?);
        for p in &self.peers {
            // peer type: bit 0 = v6 address, bit 1 = 4-byte AS (always).
            let v6 = matches!(p.addr, IpAddr::V6(_));
            out.put_u8(if v6 { 0b11 } else { 0b10 });
            out.put_slice(&p.bgp_id.octets());
            match p.addr {
                IpAddr::V4(a) => out.put_slice(&a.octets()),
                IpAddr::V6(a) => out.put_slice(&a.octets()),
            }
            out.put_u32(p.asn.value());
        }
        Ok(out.to_vec())
    }

    pub(crate) fn decode(mut body: &[u8]) -> Result<Self, MrtError> {
        if body.len() < 8 {
            return Err(MrtError::Truncated("peer index header"));
        }
        let collector_id = std::net::Ipv4Addr::new(body[0], body[1], body[2], body[3]);
        body.advance(4);
        let name_len = body.get_u16() as usize;
        if body.len() < name_len + 2 {
            return Err(MrtError::Truncated("peer index view name"));
        }
        let view_name = String::from_utf8_lossy(&body[..name_len]).into_owned();
        body.advance(name_len);
        let count = body.get_u16() as usize;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            if body.is_empty() {
                return Err(MrtError::Truncated("peer entry type"));
            }
            let ptype = body.get_u8();
            let v6 = ptype & 0b01 != 0;
            let as4 = ptype & 0b10 != 0;
            let need = 4 + if v6 { 16 } else { 4 } + if as4 { 4 } else { 2 };
            if body.len() < need {
                return Err(MrtError::Truncated("peer entry"));
            }
            let bgp_id = std::net::Ipv4Addr::new(body[0], body[1], body[2], body[3]);
            body.advance(4);
            let addr: IpAddr = if v6 {
                let mut b = [0u8; 16];
                b.copy_from_slice(&body[..16]);
                body.advance(16);
                IpAddr::V6(b.into())
            } else {
                let a = std::net::Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                body.advance(4);
                IpAddr::V4(a)
            };
            let asn = if as4 {
                Asn(body.get_u32())
            } else {
                Asn(body.get_u16() as u32)
            };
            peers.push(PeerEntry { bgp_id, addr, asn });
        }
        Ok(PeerIndexTable {
            collector_id,
            view_name,
            peers,
        })
    }
}

/// One route in a [`RibRecord`]: which peer had it, since when, with
/// what attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct RibEntry {
    /// Index into the snapshot's [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was learned (seconds).
    pub originated_time: u32,
    /// Path attributes.
    pub attrs: PathAttributes,
}

/// A TABLE_DUMP_V2 RIB record: all known paths for one prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct RibRecord {
    /// Monotonic sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Prefix,
    /// Entries, one per peer that had a path.
    pub entries: Vec<RibEntry>,
}

impl RibRecord {
    pub(crate) fn encode(&self) -> Result<Vec<u8>, MrtError> {
        let codec = Codec::four_octet();
        let mut out = BytesMut::new();
        out.put_u32(self.sequence);
        out.put_u8(self.prefix.len());
        let nbytes = (self.prefix.len() as usize).div_ceil(8);
        out.put_slice(&self.prefix.bits().to_be_bytes()[..nbytes]);
        out.put_u16(check_u16("RIB entry count", self.entries.len())?);
        for e in &self.entries {
            out.put_u16(e.peer_index);
            out.put_u32(e.originated_time);
            let attrs = codec.encode_path_attributes(&e.attrs)?;
            out.put_u16(check_u16("RIB entry attributes", attrs.len())?);
            out.put_slice(&attrs);
        }
        Ok(out.to_vec())
    }

    pub(crate) fn decode(mut body: &[u8], afi: Afi) -> Result<Self, MrtError> {
        let codec = Codec::four_octet();
        if body.len() < 5 {
            return Err(MrtError::Truncated("RIB header"));
        }
        let sequence = body.get_u32();
        let bit_len = body.get_u8();
        if bit_len > afi.max_len() {
            return Err(MrtError::Malformed("RIB prefix length out of range"));
        }
        let nbytes = (bit_len as usize).div_ceil(8);
        if body.len() < nbytes + 2 {
            return Err(MrtError::Truncated("RIB prefix"));
        }
        let mut bits = [0u8; 16];
        bits[..nbytes].copy_from_slice(&body[..nbytes]);
        body.advance(nbytes);
        let prefix = Prefix::from_bits(afi, u128::from_be_bytes(bits), bit_len)
            .map_err(|_| MrtError::Malformed("RIB prefix bits"))?;
        let count = body.get_u16() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if body.len() < 8 {
                return Err(MrtError::Truncated("RIB entry header"));
            }
            let peer_index = body.get_u16();
            let originated_time = body.get_u32();
            let attr_len = body.get_u16() as usize;
            if body.len() < attr_len {
                return Err(MrtError::Truncated("RIB entry attributes"));
            }
            let attrs = codec.decode_path_attributes(&body[..attr_len])?;
            body.advance(attr_len);
            entries.push(RibEntry {
                peer_index,
                originated_time,
                attrs,
            });
        }
        Ok(RibRecord {
            sequence,
            prefix,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MrtReader, MrtRecord, MrtWriter};
    use artemis_bgp::AsPath;
    use std::str::FromStr;

    fn table() -> PeerIndexTable {
        PeerIndexTable {
            collector_id: "198.51.100.1".parse().unwrap(),
            view_name: "rrc00".to_string(),
            peers: vec![
                PeerEntry {
                    bgp_id: "10.0.0.1".parse().unwrap(),
                    addr: "192.0.2.10".parse().unwrap(),
                    asn: Asn(174),
                },
                PeerEntry {
                    bgp_id: "10.0.0.2".parse().unwrap(),
                    addr: "2001:db8::5".parse().unwrap(),
                    asn: Asn(4_200_000_001),
                },
            ],
        }
    }

    fn rib(prefix: &str) -> RibRecord {
        let attrs = PathAttributes::with_path(
            AsPath::from_sequence([174u32, 65001]),
            "192.0.2.1".parse().unwrap(),
        );
        RibRecord {
            sequence: 42,
            prefix: Prefix::from_str(prefix).unwrap(),
            entries: vec![
                RibEntry {
                    peer_index: 0,
                    originated_time: 1_000,
                    attrs: attrs.clone(),
                },
                RibEntry {
                    peer_index: 1,
                    originated_time: 2_000,
                    attrs,
                },
            ],
        }
    }

    #[test]
    fn peer_index_roundtrip() {
        let rec = MrtRecord::PeerIndex {
            timestamp: 100,
            table: table(),
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn rib_v4_roundtrip() {
        let rec = MrtRecord::Rib {
            timestamp: 100,
            rib: rib("10.0.0.0/23"),
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn rib_v6_roundtrip() {
        let attrs = PathAttributes::with_path(
            AsPath::from_sequence([6939u32, 65001]),
            "2001:db8::1".parse().unwrap(),
        );
        let rec = MrtRecord::Rib {
            timestamp: 5,
            rib: RibRecord {
                sequence: 7,
                prefix: Prefix::from_str("2001:db8::/32").unwrap(),
                entries: vec![RibEntry {
                    peer_index: 3,
                    originated_time: 9,
                    attrs,
                }],
            },
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn full_dump_structure() {
        // A realistic dump: peer index first, then RIB records.
        let mut w = MrtWriter::new();
        w.write(&MrtRecord::PeerIndex {
            timestamp: 0,
            table: table(),
        })
        .unwrap();
        for (i, p) in ["10.0.0.0/24", "10.0.1.0/24", "192.0.2.0/24"]
            .iter()
            .enumerate()
        {
            let mut r = rib(p);
            r.sequence = i as u32;
            w.write(&MrtRecord::Rib {
                timestamp: 0,
                rib: r,
            })
            .unwrap();
        }
        let bytes = w.into_bytes();
        let recs = MrtReader::new(&bytes).read_all().unwrap();
        assert_eq!(recs.len(), 4);
        assert!(matches!(recs[0], MrtRecord::PeerIndex { .. }));
        let seqs: Vec<u32> = recs[1..]
            .iter()
            .map(|r| match r {
                MrtRecord::Rib { rib, .. } => rib.sequence,
                _ => panic!("expected RIB"),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn empty_view_name_ok() {
        let mut t = table();
        t.view_name = String::new();
        let rec = MrtRecord::PeerIndex {
            timestamp: 1,
            table: t,
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn oversized_view_name_errors_instead_of_corrupting() {
        let mut t = table();
        t.view_name = "x".repeat(u16::MAX as usize + 1);
        let rec = MrtRecord::PeerIndex {
            timestamp: 1,
            table: t,
        };
        let err = MrtWriter::new().write(&rec).unwrap_err();
        assert_eq!(
            err,
            MrtError::FieldOverflow {
                field: "peer index view name",
                len: u16::MAX as usize + 1,
                max: u16::MAX as usize,
            }
        );
    }

    #[test]
    fn oversized_peer_count_errors_instead_of_corrupting() {
        let peer = PeerEntry {
            bgp_id: "10.0.0.1".parse().unwrap(),
            addr: "192.0.2.10".parse().unwrap(),
            asn: Asn(174),
        };
        let t = PeerIndexTable {
            collector_id: "198.51.100.1".parse().unwrap(),
            view_name: String::new(),
            peers: vec![peer; u16::MAX as usize + 1],
        };
        let rec = MrtRecord::PeerIndex {
            timestamp: 1,
            table: t,
        };
        assert!(matches!(
            MrtWriter::new().write(&rec).unwrap_err(),
            MrtError::FieldOverflow {
                field: "peer index peer count",
                ..
            }
        ));
    }

    #[test]
    fn oversized_rib_entry_count_errors() {
        let entry = RibEntry {
            peer_index: 0,
            originated_time: 1,
            attrs: PathAttributes::with_path(
                AsPath::from_sequence([174u32]),
                "192.0.2.1".parse().unwrap(),
            ),
        };
        let rec = MrtRecord::Rib {
            timestamp: 1,
            rib: RibRecord {
                sequence: 0,
                prefix: Prefix::from_str("10.0.0.0/8").unwrap(),
                entries: vec![entry; u16::MAX as usize + 1],
            },
        };
        assert!(matches!(
            MrtWriter::new().write(&rec).unwrap_err(),
            MrtError::FieldOverflow {
                field: "RIB entry count",
                ..
            }
        ));
    }

    #[test]
    fn rib_with_no_entries() {
        let rec = MrtRecord::Rib {
            timestamp: 1,
            rib: RibRecord {
                sequence: 0,
                prefix: Prefix::from_str("10.0.0.0/8").unwrap(),
                entries: vec![],
            },
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }
}
