//! # artemis-mrt — MRT routing archive format (RFC 6396)
//!
//! RouteViews and RIPE RIS publish their data as MRT files: full RIB
//! snapshots (`TABLE_DUMP_V2`) every couple of hours and update files
//! (`BGP4MP`) every 15 minutes. ARTEMIS's motivation (paper §1) is
//! precisely that these archives are too slow for hijack response — so
//! the baseline detectors in this reproduction consume *real MRT
//! bytes*, produced and parsed by this crate.
//!
//! Supported records:
//! * `BGP4MP` / `BGP4MP_ET` — `MESSAGE` and `MESSAGE_AS4` subtypes,
//!   wrapping full BGP messages ([`artemis_bgp::wire`]).
//! * `TABLE_DUMP_V2` — `PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST` and
//!   `RIB_IPV6_UNICAST`.
//!
//! [`MrtWriter`] produces byte-exact archives; [`MrtReader`] streams
//! records back out of a byte slice; round-trips are proptest-verified.
//!
//! Two read paths:
//!
//! * [`MrtScanner`] — the zero-copy fast path: chunks records into
//!   [`RawMrtRecord`]s whose bodies are *borrowed* slices (no
//!   per-record allocation, no payload parse), bgpkit-parser style.
//!   Consumers decode on demand and collect [`MrtDiagnostic`]s for
//!   records that fail, resyncing at the next length-delimited
//!   boundary instead of aborting the stream.
//! * [`MrtReader`] — the strict path built on top: fully decodes every
//!   record and aborts on the first error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod rib;

pub use record::{
    Bgp4mpMessage, MrtDiagnostic, MrtError, MrtReader, MrtRecord, MrtScanner, MrtWriter,
    RawMrtRecord,
};
pub use rib::{PeerEntry, PeerIndexTable, RibEntry, RibRecord};
