//! MRT common header, BGP4MP records, reader/writer.

use crate::rib::{PeerIndexTable, RibRecord};
use artemis_bgp::{BgpError, BgpMessage, Codec};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;
use std::net::IpAddr;

/// MRT type codes (RFC 6396 §4).
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// BGP4MP type code.
pub const TYPE_BGP4MP: u16 = 16;
/// BGP4MP with extended (microsecond) timestamps.
pub const TYPE_BGP4MP_ET: u16 = 17;

/// BGP4MP subtypes.
pub const SUBTYPE_BGP4MP_MESSAGE: u16 = 1;
/// Four-octet-AS message subtype.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;

/// TABLE_DUMP_V2 subtypes.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// IPv4 unicast RIB subtype.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// IPv6 unicast RIB subtype.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

/// Errors produced by the MRT codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// Input ended inside a record.
    Truncated(&'static str),
    /// A record advertises an unsupported type/subtype pair.
    Unsupported {
        /// MRT type.
        mrt_type: u16,
        /// MRT subtype.
        subtype: u16,
    },
    /// The wrapped BGP message failed to parse.
    Bgp(BgpError),
    /// Structural problem in a record body.
    Malformed(&'static str),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated(what) => write!(f, "truncated MRT record: {what}"),
            MrtError::Unsupported { mrt_type, subtype } => {
                write!(f, "unsupported MRT record type {mrt_type}/{subtype}")
            }
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            MrtError::Malformed(what) => write!(f, "malformed MRT record: {what}"),
        }
    }
}

impl std::error::Error for MrtError {}

impl From<BgpError> for MrtError {
    fn from(e: BgpError) -> Self {
        MrtError::Bgp(e)
    }
}

/// A BGP4MP_MESSAGE(_AS4) record: one BGP message seen on a collector
/// session, with peer metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Peer (sender) ASN.
    pub peer_as: artemis_bgp::Asn,
    /// Collector-side ASN.
    pub local_as: artemis_bgp::Asn,
    /// Peer address.
    pub peer_ip: IpAddr,
    /// Collector address.
    pub local_ip: IpAddr,
    /// The BGP message itself.
    pub message: BgpMessage,
}

/// Any supported MRT record with its timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum MrtRecord {
    /// A BGP4MP message record. `microseconds` is `Some` for the ET
    /// (extended-timestamp) flavour.
    Bgp4mp {
        /// Seconds since the UNIX epoch (simulation epoch here).
        timestamp: u32,
        /// Extended microseconds (BGP4MP_ET).
        microseconds: Option<u32>,
        /// Payload.
        message: Bgp4mpMessage,
    },
    /// TABLE_DUMP_V2 peer index table.
    PeerIndex {
        /// Snapshot timestamp.
        timestamp: u32,
        /// The table.
        table: PeerIndexTable,
    },
    /// TABLE_DUMP_V2 RIB record (one prefix, N entries).
    Rib {
        /// Snapshot timestamp.
        timestamp: u32,
        /// The per-prefix RIB data.
        rib: RibRecord,
    },
}

impl MrtRecord {
    /// The record's timestamp in whole seconds.
    pub fn timestamp(&self) -> u32 {
        match self {
            MrtRecord::Bgp4mp { timestamp, .. }
            | MrtRecord::PeerIndex { timestamp, .. }
            | MrtRecord::Rib { timestamp, .. } => *timestamp,
        }
    }
}

/// Serializes MRT records to bytes.
#[derive(Debug, Default)]
pub struct MrtWriter {
    buf: BytesMut,
}

impl MrtWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        MrtWriter::default()
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the archive bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Append one record.
    pub fn write(&mut self, record: &MrtRecord) -> Result<(), MrtError> {
        let (mrt_type, subtype, micros, body) = match record {
            MrtRecord::Bgp4mp {
                microseconds,
                message,
                ..
            } => {
                let body = encode_bgp4mp_body(message)?;
                let t = if microseconds.is_some() {
                    TYPE_BGP4MP_ET
                } else {
                    TYPE_BGP4MP
                };
                (t, SUBTYPE_BGP4MP_MESSAGE_AS4, *microseconds, body)
            }
            MrtRecord::PeerIndex { table, .. } => (
                TYPE_TABLE_DUMP_V2,
                SUBTYPE_PEER_INDEX_TABLE,
                None,
                table.encode(),
            ),
            MrtRecord::Rib { rib, .. } => {
                let subtype = if rib.prefix.afi() == artemis_bgp::prefix::Afi::Ipv4 {
                    SUBTYPE_RIB_IPV4_UNICAST
                } else {
                    SUBTYPE_RIB_IPV6_UNICAST
                };
                (TYPE_TABLE_DUMP_V2, subtype, None, rib.encode()?)
            }
        };
        let extra = if micros.is_some() { 4 } else { 0 };
        self.buf.put_u32(record.timestamp());
        self.buf.put_u16(mrt_type);
        self.buf.put_u16(subtype);
        self.buf.put_u32((body.len() + extra) as u32);
        if let Some(us) = micros {
            self.buf.put_u32(us);
        }
        self.buf.put_slice(&body);
        Ok(())
    }
}

fn encode_bgp4mp_body(msg: &Bgp4mpMessage) -> Result<Vec<u8>, MrtError> {
    let mut out = BytesMut::new();
    out.put_u32(msg.peer_as.value());
    out.put_u32(msg.local_as.value());
    out.put_u16(0); // interface index
    match (msg.peer_ip, msg.local_ip) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            out.put_u16(1); // AFI v4
            out.put_slice(&p.octets());
            out.put_slice(&l.octets());
        }
        (IpAddr::V6(p), IpAddr::V6(l)) => {
            out.put_u16(2);
            out.put_slice(&p.octets());
            out.put_slice(&l.octets());
        }
        _ => return Err(MrtError::Malformed("mixed-family peer/local addresses")),
    }
    let codec = Codec::four_octet();
    let bgp = codec.encode(&msg.message)?;
    out.put_slice(&bgp);
    Ok(out.to_vec())
}

fn decode_bgp4mp_body(mut body: &[u8], subtype: u16) -> Result<Bgp4mpMessage, MrtError> {
    let as_size = match subtype {
        SUBTYPE_BGP4MP_MESSAGE => 2usize,
        SUBTYPE_BGP4MP_MESSAGE_AS4 => 4,
        _ => {
            return Err(MrtError::Unsupported {
                mrt_type: TYPE_BGP4MP,
                subtype,
            })
        }
    };
    if body.len() < as_size * 2 + 4 {
        return Err(MrtError::Truncated("BGP4MP header"));
    }
    let (peer_as, local_as) = if as_size == 4 {
        (body.get_u32(), body.get_u32())
    } else {
        (body.get_u16() as u32, body.get_u16() as u32)
    };
    let _ifindex = body.get_u16();
    let afi = body.get_u16();
    let addr_len = match afi {
        1 => 4usize,
        2 => 16,
        _ => return Err(MrtError::Malformed("unknown AFI in BGP4MP")),
    };
    if body.len() < addr_len * 2 {
        return Err(MrtError::Truncated("BGP4MP addresses"));
    }
    let peer_ip = read_ip(&body[..addr_len]);
    let local_ip = read_ip(&body[addr_len..addr_len * 2]);
    body = &body[addr_len * 2..];
    let codec = if as_size == 4 {
        Codec::four_octet()
    } else {
        Codec::two_octet()
    };
    let (message, _) = codec.decode(body)?;
    Ok(Bgp4mpMessage {
        peer_as: artemis_bgp::Asn(peer_as),
        local_as: artemis_bgp::Asn(local_as),
        peer_ip,
        local_ip,
        message,
    })
}

fn read_ip(bytes: &[u8]) -> IpAddr {
    match bytes.len() {
        4 => IpAddr::V4(std::net::Ipv4Addr::new(
            bytes[0], bytes[1], bytes[2], bytes[3],
        )),
        _ => {
            let mut b = [0u8; 16];
            b.copy_from_slice(bytes);
            IpAddr::V6(std::net::Ipv6Addr::from(b))
        }
    }
}

/// Streaming reader over an MRT byte slice.
pub struct MrtReader<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> MrtReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        MrtReader { data, offset: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Parse the next record, or `Ok(None)` at clean EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.remaining() < 12 {
            return Err(MrtError::Truncated("MRT common header"));
        }
        let mut hdr = &self.data[self.offset..self.offset + 12];
        let timestamp = hdr.get_u32();
        let mrt_type = hdr.get_u16();
        let subtype = hdr.get_u16();
        let length = hdr.get_u32() as usize;
        if self.remaining() < 12 + length {
            return Err(MrtError::Truncated("MRT record body"));
        }
        let mut body = &self.data[self.offset + 12..self.offset + 12 + length];
        self.offset += 12 + length;

        let record = match (mrt_type, subtype) {
            (TYPE_BGP4MP, st) => MrtRecord::Bgp4mp {
                timestamp,
                microseconds: None,
                message: decode_bgp4mp_body(body, st)?,
            },
            (TYPE_BGP4MP_ET, st) => {
                if body.len() < 4 {
                    return Err(MrtError::Truncated("BGP4MP_ET microseconds"));
                }
                let micros = body.get_u32();
                MrtRecord::Bgp4mp {
                    timestamp,
                    microseconds: Some(micros),
                    message: decode_bgp4mp_body(body, st)?,
                }
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => MrtRecord::PeerIndex {
                timestamp,
                table: PeerIndexTable::decode(body)?,
            },
            (TYPE_TABLE_DUMP_V2, st @ (SUBTYPE_RIB_IPV4_UNICAST | SUBTYPE_RIB_IPV6_UNICAST)) => {
                let afi = if st == SUBTYPE_RIB_IPV4_UNICAST {
                    artemis_bgp::prefix::Afi::Ipv4
                } else {
                    artemis_bgp::prefix::Afi::Ipv6
                };
                MrtRecord::Rib {
                    timestamp,
                    rib: RibRecord::decode(body, afi)?,
                }
            }
            (t, s) => {
                return Err(MrtError::Unsupported {
                    mrt_type: t,
                    subtype: s,
                })
            }
        };
        Ok(Some(record))
    }

    /// Collect all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<MrtRecord>, MrtError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<'a> Iterator for MrtReader<'a> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
    use std::str::FromStr;

    fn sample_update() -> BgpMessage {
        let attrs = PathAttributes::with_path(
            AsPath::from_sequence([174u32, 65001]),
            "192.0.2.1".parse().unwrap(),
        );
        BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec![Prefix::from_str("10.0.0.0/23").unwrap()],
        ))
    }

    fn sample_bgp4mp(ts: u32, micros: Option<u32>) -> MrtRecord {
        MrtRecord::Bgp4mp {
            timestamp: ts,
            microseconds: micros,
            message: Bgp4mpMessage {
                peer_as: Asn(174),
                local_as: Asn(64999),
                peer_ip: "192.0.2.10".parse().unwrap(),
                local_ip: "192.0.2.1".parse().unwrap(),
                message: sample_update(),
            },
        }
    }

    #[test]
    fn bgp4mp_roundtrip() {
        let rec = sample_bgp4mp(1_234, None);
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        let mut r = MrtReader::new(&bytes);
        assert_eq!(r.next_record().unwrap().unwrap(), rec);
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn bgp4mp_et_roundtrip_keeps_microseconds() {
        let rec = sample_bgp4mp(99, Some(456_789));
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        let got = MrtReader::new(&bytes).read_all().unwrap();
        assert_eq!(got, vec![rec]);
    }

    #[test]
    fn multiple_records_stream() {
        let mut w = MrtWriter::new();
        for i in 0..10u32 {
            w.write(&sample_bgp4mp(i, None)).unwrap();
        }
        let bytes = w.into_bytes();
        let all = MrtReader::new(&bytes).read_all().unwrap();
        assert_eq!(all.len(), 10);
        let stamps: Vec<u32> = all.iter().map(MrtRecord::timestamp).collect();
        assert_eq!(stamps, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iterator_interface() {
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(5, None)).unwrap();
        let bytes = w.into_bytes();
        let count = MrtReader::new(&bytes).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn v6_session_addresses() {
        let rec = MrtRecord::Bgp4mp {
            timestamp: 7,
            microseconds: None,
            message: Bgp4mpMessage {
                peer_as: Asn(6939),
                local_as: Asn(64999),
                peer_ip: "2001:db8::a".parse().unwrap(),
                local_ip: "2001:db8::1".parse().unwrap(),
                message: sample_update(),
            },
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn mixed_family_session_rejected() {
        let rec = MrtRecord::Bgp4mp {
            timestamp: 7,
            microseconds: None,
            message: Bgp4mpMessage {
                peer_as: Asn(1),
                local_as: Asn(2),
                peer_ip: "2001:db8::a".parse().unwrap(),
                local_ip: "192.0.2.1".parse().unwrap(),
                message: sample_update(),
            },
        };
        assert!(MrtWriter::new().write(&rec).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(1, None)).unwrap();
        let bytes = w.into_bytes();
        // header cut
        let mut r = MrtReader::new(&bytes[..8]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated("MRT common header"))
        ));
        // body cut
        let mut r = MrtReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated("MRT record body"))
        ));
    }

    #[test]
    fn unsupported_type_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u16(99); // unknown type
        buf.put_u16(1);
        buf.put_u32(0);
        let mut r = MrtReader::new(&buf);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Unsupported {
                mrt_type: 99,
                subtype: 1
            })
        ));
    }

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = MrtReader::new(&[]);
        assert_eq!(r.next_record().unwrap(), None);
    }
}
