//! MRT common header, BGP4MP records, reader/writer.

use crate::rib::{PeerIndexTable, RibRecord};
use artemis_bgp::{BgpError, BgpMessage, Codec};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;
use std::net::IpAddr;

/// MRT type codes (RFC 6396 §4).
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// BGP4MP type code.
pub const TYPE_BGP4MP: u16 = 16;
/// BGP4MP with extended (microsecond) timestamps.
pub const TYPE_BGP4MP_ET: u16 = 17;

/// BGP4MP subtypes.
pub const SUBTYPE_BGP4MP_MESSAGE: u16 = 1;
/// Four-octet-AS message subtype.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;

/// TABLE_DUMP_V2 subtypes.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// IPv4 unicast RIB subtype.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// IPv6 unicast RIB subtype.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

/// Errors produced by the MRT codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// Input ended inside a record.
    Truncated(&'static str),
    /// A record advertises an unsupported type/subtype pair.
    Unsupported {
        /// MRT type.
        mrt_type: u16,
        /// MRT subtype.
        subtype: u16,
    },
    /// The wrapped BGP message failed to parse.
    Bgp(BgpError),
    /// Structural problem in a record body.
    Malformed(&'static str),
    /// A variable-length field does not fit its wire-format counter
    /// (e.g. a PEER_INDEX_TABLE with more than 65535 peers). Raised at
    /// *encode* time: silently truncating the counter would produce a
    /// record that round-trips wrong.
    FieldOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The unencodable length.
        len: usize,
        /// The wire format's maximum for this field.
        max: usize,
    },
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated(what) => write!(f, "truncated MRT record: {what}"),
            MrtError::Unsupported { mrt_type, subtype } => {
                write!(f, "unsupported MRT record type {mrt_type}/{subtype}")
            }
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            MrtError::Malformed(what) => write!(f, "malformed MRT record: {what}"),
            MrtError::FieldOverflow { field, len, max } => {
                write!(f, "{field} length {len} exceeds wire maximum {max}")
            }
        }
    }
}

impl std::error::Error for MrtError {}

impl From<BgpError> for MrtError {
    fn from(e: BgpError) -> Self {
        MrtError::Bgp(e)
    }
}

/// A BGP4MP_MESSAGE(_AS4) record: one BGP message seen on a collector
/// session, with peer metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Peer (sender) ASN.
    pub peer_as: artemis_bgp::Asn,
    /// Collector-side ASN.
    pub local_as: artemis_bgp::Asn,
    /// Peer address.
    pub peer_ip: IpAddr,
    /// Collector address.
    pub local_ip: IpAddr,
    /// The BGP message itself.
    pub message: BgpMessage,
}

/// Any supported MRT record with its timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum MrtRecord {
    /// A BGP4MP message record. `microseconds` is `Some` for the ET
    /// (extended-timestamp) flavour.
    Bgp4mp {
        /// Seconds since the UNIX epoch (simulation epoch here).
        timestamp: u32,
        /// Extended microseconds (BGP4MP_ET).
        microseconds: Option<u32>,
        /// Payload.
        message: Bgp4mpMessage,
    },
    /// TABLE_DUMP_V2 peer index table.
    PeerIndex {
        /// Snapshot timestamp.
        timestamp: u32,
        /// The table.
        table: PeerIndexTable,
    },
    /// TABLE_DUMP_V2 RIB record (one prefix, N entries).
    Rib {
        /// Snapshot timestamp.
        timestamp: u32,
        /// The per-prefix RIB data.
        rib: RibRecord,
    },
}

impl MrtRecord {
    /// The record's timestamp in whole seconds.
    pub fn timestamp(&self) -> u32 {
        match self {
            MrtRecord::Bgp4mp { timestamp, .. }
            | MrtRecord::PeerIndex { timestamp, .. }
            | MrtRecord::Rib { timestamp, .. } => *timestamp,
        }
    }
}

/// Serializes MRT records to bytes.
#[derive(Debug, Default)]
pub struct MrtWriter {
    buf: BytesMut,
}

impl MrtWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        MrtWriter::default()
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the archive bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Append one record.
    pub fn write(&mut self, record: &MrtRecord) -> Result<(), MrtError> {
        let (mrt_type, subtype, micros, body) = match record {
            MrtRecord::Bgp4mp {
                microseconds,
                message,
                ..
            } => {
                let body = encode_bgp4mp_body(message)?;
                let t = if microseconds.is_some() {
                    TYPE_BGP4MP_ET
                } else {
                    TYPE_BGP4MP
                };
                (t, SUBTYPE_BGP4MP_MESSAGE_AS4, *microseconds, body)
            }
            MrtRecord::PeerIndex { table, .. } => (
                TYPE_TABLE_DUMP_V2,
                SUBTYPE_PEER_INDEX_TABLE,
                None,
                table.encode()?,
            ),
            MrtRecord::Rib { rib, .. } => {
                let subtype = if rib.prefix.afi() == artemis_bgp::prefix::Afi::Ipv4 {
                    SUBTYPE_RIB_IPV4_UNICAST
                } else {
                    SUBTYPE_RIB_IPV6_UNICAST
                };
                (TYPE_TABLE_DUMP_V2, subtype, None, rib.encode()?)
            }
        };
        let extra = if micros.is_some() { 4 } else { 0 };
        self.buf.put_u32(record.timestamp());
        self.buf.put_u16(mrt_type);
        self.buf.put_u16(subtype);
        self.buf.put_u32((body.len() + extra) as u32);
        if let Some(us) = micros {
            self.buf.put_u32(us);
        }
        self.buf.put_slice(&body);
        Ok(())
    }
}

fn encode_bgp4mp_body(msg: &Bgp4mpMessage) -> Result<Vec<u8>, MrtError> {
    let mut out = BytesMut::new();
    out.put_u32(msg.peer_as.value());
    out.put_u32(msg.local_as.value());
    out.put_u16(0); // interface index
    match (msg.peer_ip, msg.local_ip) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            out.put_u16(1); // AFI v4
            out.put_slice(&p.octets());
            out.put_slice(&l.octets());
        }
        (IpAddr::V6(p), IpAddr::V6(l)) => {
            out.put_u16(2);
            out.put_slice(&p.octets());
            out.put_slice(&l.octets());
        }
        _ => return Err(MrtError::Malformed("mixed-family peer/local addresses")),
    }
    let codec = Codec::four_octet();
    let bgp = codec.encode(&msg.message)?;
    out.put_slice(&bgp);
    Ok(out.to_vec())
}

fn decode_bgp4mp_body(mut body: &[u8], subtype: u16) -> Result<Bgp4mpMessage, MrtError> {
    let as_size = match subtype {
        SUBTYPE_BGP4MP_MESSAGE => 2usize,
        SUBTYPE_BGP4MP_MESSAGE_AS4 => 4,
        _ => {
            return Err(MrtError::Unsupported {
                mrt_type: TYPE_BGP4MP,
                subtype,
            })
        }
    };
    if body.len() < as_size * 2 + 4 {
        return Err(MrtError::Truncated("BGP4MP header"));
    }
    let (peer_as, local_as) = if as_size == 4 {
        (body.get_u32(), body.get_u32())
    } else {
        (body.get_u16() as u32, body.get_u16() as u32)
    };
    let _ifindex = body.get_u16();
    let afi = body.get_u16();
    let addr_len = match afi {
        1 => 4usize,
        2 => 16,
        _ => return Err(MrtError::Malformed("unknown AFI in BGP4MP")),
    };
    if body.len() < addr_len * 2 {
        return Err(MrtError::Truncated("BGP4MP addresses"));
    }
    let peer_ip = read_ip(&body[..addr_len]);
    let local_ip = read_ip(&body[addr_len..addr_len * 2]);
    body = &body[addr_len * 2..];
    let codec = if as_size == 4 {
        Codec::four_octet()
    } else {
        Codec::two_octet()
    };
    let (message, _) = codec.decode(body)?;
    Ok(Bgp4mpMessage {
        peer_as: artemis_bgp::Asn(peer_as),
        local_as: artemis_bgp::Asn(local_as),
        peer_ip,
        local_ip,
        message,
    })
}

fn read_ip(bytes: &[u8]) -> IpAddr {
    match bytes.len() {
        4 => IpAddr::V4(std::net::Ipv4Addr::new(
            bytes[0], bytes[1], bytes[2], bytes[3],
        )),
        _ => {
            let mut b = [0u8; 16];
            b.copy_from_slice(bytes);
            IpAddr::V6(std::net::Ipv6Addr::from(b))
        }
    }
}

/// A raw MRT record: parsed common header plus a **borrowed** body
/// slice, produced by [`MrtScanner`] without allocating or touching the
/// payload (bgpkit-parser's chunk-then-parse shape). Call
/// [`RawMrtRecord::decode`] for the full owned [`MrtRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawMrtRecord<'a> {
    /// Byte offset of the record's common header within the archive —
    /// the stable identifier for per-record diagnostics.
    pub offset: usize,
    /// Seconds since the epoch (common header).
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// Extended microseconds, already split off the body for
    /// `BGP4MP_ET` records. `None` for an ET record whose body was too
    /// short to hold the field — [`RawMrtRecord::decode`] reports that
    /// as a per-record truncation.
    pub microseconds: Option<u32>,
    /// The record body (after the common header and, for ET records,
    /// the microsecond field) — borrowed straight from the archive.
    pub body: &'a [u8],
}

impl<'a> RawMrtRecord<'a> {
    /// True for `BGP4MP` / `BGP4MP_ET` update records — the hot kind
    /// during replay; lets scanners filter before paying for a decode.
    pub fn is_bgp4mp(&self) -> bool {
        matches!(self.mrt_type, TYPE_BGP4MP | TYPE_BGP4MP_ET)
    }

    /// True for `TABLE_DUMP_V2` snapshot records.
    pub fn is_table_dump(&self) -> bool {
        self.mrt_type == TYPE_TABLE_DUMP_V2
    }

    /// Fully decode the record body into an owned [`MrtRecord`].
    pub fn decode(&self) -> Result<MrtRecord, MrtError> {
        let record = match (self.mrt_type, self.subtype) {
            (TYPE_BGP4MP | TYPE_BGP4MP_ET, st) => {
                if self.mrt_type == TYPE_BGP4MP_ET && self.microseconds.is_none() {
                    // The scanner could not split the microsecond field
                    // (body shorter than 4 bytes): a per-record defect,
                    // reported here so the scan itself resyncs.
                    return Err(MrtError::Truncated("BGP4MP_ET microseconds"));
                }
                MrtRecord::Bgp4mp {
                    timestamp: self.timestamp,
                    microseconds: self.microseconds,
                    message: decode_bgp4mp_body(self.body, st)?,
                }
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => MrtRecord::PeerIndex {
                timestamp: self.timestamp,
                table: PeerIndexTable::decode(self.body)?,
            },
            (TYPE_TABLE_DUMP_V2, st @ (SUBTYPE_RIB_IPV4_UNICAST | SUBTYPE_RIB_IPV6_UNICAST)) => {
                let afi = if st == SUBTYPE_RIB_IPV4_UNICAST {
                    artemis_bgp::prefix::Afi::Ipv4
                } else {
                    artemis_bgp::prefix::Afi::Ipv6
                };
                MrtRecord::Rib {
                    timestamp: self.timestamp,
                    rib: RibRecord::decode(self.body, afi)?,
                }
            }
            (t, s) => {
                return Err(MrtError::Unsupported {
                    mrt_type: t,
                    subtype: s,
                })
            }
        };
        Ok(record)
    }

    /// Attach an error to this record's identity for reporting.
    pub fn diagnostic(&self, error: MrtError) -> MrtDiagnostic {
        MrtDiagnostic {
            offset: self.offset,
            timestamp: self.timestamp,
            mrt_type: self.mrt_type,
            subtype: self.subtype,
            error,
        }
    }
}

/// A per-record parse failure: which record (by archive offset and
/// header fields) failed and why. Streaming consumers collect these and
/// keep going instead of aborting the whole archive on one bad record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtDiagnostic {
    /// Byte offset of the failing record's common header.
    pub offset: usize,
    /// The record's timestamp (from the common header, always
    /// readable even when the body is not).
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// What went wrong.
    pub error: MrtError,
}

impl fmt::Display for MrtDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record at byte {} (type {}/{}, ts {}): {}",
            self.offset, self.mrt_type, self.subtype, self.timestamp, self.error
        )
    }
}

/// Zero-copy streaming scanner over an MRT byte slice.
///
/// [`MrtScanner::next_raw`] reads only the 12-byte common header (plus
/// the 4-byte microsecond field for `BGP4MP_ET`) and yields the body as
/// a borrowed slice — no per-record allocation, no payload parse. The
/// record *length* field lets the scanner hop to the next boundary, so
/// a consumer that fails to decode one body can keep scanning: this is
/// the resync property per-record diagnostics are built on.
///
/// Header-level corruption (a truncated header, or a length field
/// pointing past the end of the input) is unrecoverable — there is no
/// next boundary to resync to. The scanner reports it **once** (with
/// the failing record's start offset still readable via
/// [`MrtScanner::offset`]) and then fuses: every subsequent call is a
/// clean EOF, so error-skipping consumers terminate instead of
/// spinning on the same error forever.
pub struct MrtScanner<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> MrtScanner<'a> {
    /// Scan from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        MrtScanner { data, offset: 0 }
    }

    /// Byte offset of the next unread record header — or, immediately
    /// after an unrecoverable error, of the record that failed.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Chunk the next record, or `Ok(None)` at clean EOF.
    ///
    /// An `Err` is unrecoverable (corrupt common header): it is
    /// returned once and the scanner then reports EOF. Defects
    /// *inside* a record body — including a `BGP4MP_ET` body too short
    /// for its microsecond field — surface from
    /// [`RawMrtRecord::decode`] instead, so the scan itself continues
    /// at the next length-delimited boundary.
    pub fn next_raw(&mut self) -> Result<Option<RawMrtRecord<'a>>, MrtError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.remaining() < 12 {
            return self.fail(MrtError::Truncated("MRT common header"));
        }
        let start = self.offset;
        let mut hdr = &self.data[start..start + 12];
        let timestamp = hdr.get_u32();
        let mrt_type = hdr.get_u16();
        let subtype = hdr.get_u16();
        let length = hdr.get_u32() as usize;
        if self.remaining() < 12 + length {
            return self.fail(MrtError::Truncated("MRT record body"));
        }
        let mut body = &self.data[start + 12..start + 12 + length];
        self.offset = start + 12 + length;

        // Split the ET microsecond field when present; a too-short
        // body yields `None` and errors at decode time (per-record).
        let microseconds = if mrt_type == TYPE_BGP4MP_ET && body.len() >= 4 {
            Some(body.get_u32())
        } else {
            None
        };
        Ok(Some(RawMrtRecord {
            offset: start,
            timestamp,
            mrt_type,
            subtype,
            microseconds,
            body,
        }))
    }

    /// Report an unrecoverable error once, then fuse to EOF. The
    /// failing offset stays readable until the next (EOF) call.
    fn fail(&mut self, error: MrtError) -> Result<Option<RawMrtRecord<'a>>, MrtError> {
        self.data = &self.data[..self.offset];
        Err(error)
    }
}

impl<'a> Iterator for MrtScanner<'a> {
    type Item = Result<RawMrtRecord<'a>, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_raw().transpose()
    }
}

/// Streaming reader over an MRT byte slice: [`MrtScanner`] plus a full
/// per-record decode. Any record failing to decode aborts the stream;
/// consumers that prefer to skip bad records and keep going should
/// drive the scanner directly and collect [`MrtDiagnostic`]s.
pub struct MrtReader<'a> {
    scanner: MrtScanner<'a>,
}

impl<'a> MrtReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        MrtReader {
            scanner: MrtScanner::new(data),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.scanner.remaining()
    }

    /// Parse the next record, or `Ok(None)` at clean EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        match self.scanner.next_raw()? {
            Some(raw) => Ok(Some(raw.decode()?)),
            None => Ok(None),
        }
    }

    /// Collect all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<MrtRecord>, MrtError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<'a> Iterator for MrtReader<'a> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::{AsPath, Asn, PathAttributes, Prefix, UpdateMessage};
    use std::str::FromStr;

    fn sample_update() -> BgpMessage {
        let attrs = PathAttributes::with_path(
            AsPath::from_sequence([174u32, 65001]),
            "192.0.2.1".parse().unwrap(),
        );
        BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec![Prefix::from_str("10.0.0.0/23").unwrap()],
        ))
    }

    fn sample_bgp4mp(ts: u32, micros: Option<u32>) -> MrtRecord {
        MrtRecord::Bgp4mp {
            timestamp: ts,
            microseconds: micros,
            message: Bgp4mpMessage {
                peer_as: Asn(174),
                local_as: Asn(64999),
                peer_ip: "192.0.2.10".parse().unwrap(),
                local_ip: "192.0.2.1".parse().unwrap(),
                message: sample_update(),
            },
        }
    }

    #[test]
    fn bgp4mp_roundtrip() {
        let rec = sample_bgp4mp(1_234, None);
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        let mut r = MrtReader::new(&bytes);
        assert_eq!(r.next_record().unwrap().unwrap(), rec);
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn bgp4mp_et_roundtrip_keeps_microseconds() {
        let rec = sample_bgp4mp(99, Some(456_789));
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        let got = MrtReader::new(&bytes).read_all().unwrap();
        assert_eq!(got, vec![rec]);
    }

    #[test]
    fn multiple_records_stream() {
        let mut w = MrtWriter::new();
        for i in 0..10u32 {
            w.write(&sample_bgp4mp(i, None)).unwrap();
        }
        let bytes = w.into_bytes();
        let all = MrtReader::new(&bytes).read_all().unwrap();
        assert_eq!(all.len(), 10);
        let stamps: Vec<u32> = all.iter().map(MrtRecord::timestamp).collect();
        assert_eq!(stamps, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iterator_interface() {
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(5, None)).unwrap();
        let bytes = w.into_bytes();
        let count = MrtReader::new(&bytes).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn v6_session_addresses() {
        let rec = MrtRecord::Bgp4mp {
            timestamp: 7,
            microseconds: None,
            message: Bgp4mpMessage {
                peer_as: Asn(6939),
                local_as: Asn(64999),
                peer_ip: "2001:db8::a".parse().unwrap(),
                local_ip: "2001:db8::1".parse().unwrap(),
                message: sample_update(),
            },
        };
        let mut w = MrtWriter::new();
        w.write(&rec).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(MrtReader::new(&bytes).read_all().unwrap(), vec![rec]);
    }

    #[test]
    fn mixed_family_session_rejected() {
        let rec = MrtRecord::Bgp4mp {
            timestamp: 7,
            microseconds: None,
            message: Bgp4mpMessage {
                peer_as: Asn(1),
                local_as: Asn(2),
                peer_ip: "2001:db8::a".parse().unwrap(),
                local_ip: "192.0.2.1".parse().unwrap(),
                message: sample_update(),
            },
        };
        assert!(MrtWriter::new().write(&rec).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(1, None)).unwrap();
        let bytes = w.into_bytes();
        // header cut
        let mut r = MrtReader::new(&bytes[..8]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated("MRT common header"))
        ));
        // body cut
        let mut r = MrtReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated("MRT record body"))
        ));
    }

    #[test]
    fn unsupported_type_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u16(99); // unknown type
        buf.put_u16(1);
        buf.put_u32(0);
        let mut r = MrtReader::new(&buf);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Unsupported {
                mrt_type: 99,
                subtype: 1
            })
        ));
    }

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = MrtReader::new(&[]);
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn scanner_chunks_without_decoding() {
        let mut w = MrtWriter::new();
        for i in 0..5u32 {
            w.write(&sample_bgp4mp(i, Some(i * 10))).unwrap();
        }
        let bytes = w.into_bytes();
        let raws: Vec<RawMrtRecord<'_>> =
            MrtScanner::new(&bytes).collect::<Result<_, _>>().unwrap();
        assert_eq!(raws.len(), 5);
        assert_eq!(raws[0].offset, 0);
        for (i, raw) in raws.iter().enumerate() {
            assert!(raw.is_bgp4mp());
            assert!(!raw.is_table_dump());
            assert_eq!(raw.timestamp, i as u32);
            assert_eq!(raw.microseconds, Some(i as u32 * 10));
            // The body is a borrowed slice into the archive itself.
            let body_ptr = raw.body.as_ptr() as usize;
            let base = bytes.as_ptr() as usize;
            assert!(body_ptr >= base && body_ptr < base + bytes.len());
            assert_eq!(
                raw.decode().unwrap(),
                sample_bgp4mp(i as u32, Some(i as u32 * 10))
            );
        }
    }

    #[test]
    fn scanner_resyncs_past_a_corrupt_body() {
        // Three records; corrupt the *body* of the middle one. The
        // scanner still chunks all three (lengths are intact); only the
        // middle decode fails, and its diagnostic names the offset.
        let mut w = MrtWriter::new();
        for i in 0..3u32 {
            w.write(&sample_bgp4mp(i, None)).unwrap();
        }
        let mut bytes = w.into_bytes();
        let record_len = bytes.len() / 3;
        // Clobber the AFI field of record 1 (offset 12 header + 10 into body).
        bytes[record_len + 12 + 10] = 0xff;
        bytes[record_len + 12 + 11] = 0xff;

        let mut ok = Vec::new();
        let mut diags = Vec::new();
        for raw in MrtScanner::new(&bytes) {
            let raw = raw.unwrap();
            match raw.decode() {
                Ok(rec) => ok.push(rec),
                Err(e) => diags.push(raw.diagnostic(e)),
            }
        }
        assert_eq!(ok.len(), 2, "records 0 and 2 still decode");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].offset, record_len);
        assert_eq!(diags[0].timestamp, 1);
        assert!(diags[0].to_string().contains("malformed"));
        // The strict reader aborts at the same record.
        assert!(MrtReader::new(&bytes).read_all().is_err());
    }

    #[test]
    fn scanner_reports_unrecoverable_header_corruption() {
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(1, None)).unwrap();
        let mut bytes = w.into_bytes();
        // Length field claims more bytes than the archive holds.
        bytes[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut s = MrtScanner::new(&bytes);
        assert!(matches!(
            s.next_raw(),
            Err(MrtError::Truncated("MRT record body"))
        ));
        // The failing record's start offset is still readable…
        assert_eq!(s.offset(), 0);
        // …and the scanner fuses: the error is reported once, then EOF.
        assert!(matches!(s.next_raw(), Ok(None)));
    }

    #[test]
    fn scanner_iterator_terminates_on_unrecoverable_corruption() {
        // Regression: a consumer that skips errors (filter_map,
        // log-and-continue loops) must terminate, not spin forever on
        // the same header-level error.
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(1, None)).unwrap();
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]); // truncated tail
        let items: Vec<Result<RawMrtRecord<'_>, MrtError>> = MrtScanner::new(&bytes).collect();
        assert_eq!(items.len(), 2, "one record, one error, then EOF");
        assert!(items[0].is_ok());
        assert!(matches!(
            items[1],
            Err(MrtError::Truncated("MRT common header"))
        ));
        assert_eq!(MrtScanner::new(&bytes).filter_map(Result::ok).count(), 1);
    }

    #[test]
    fn et_record_with_short_body_is_a_per_record_defect() {
        // Regression: a BGP4MP_ET record whose body cannot hold the
        // microsecond field must not kill the scan — the stream
        // resyncs at the next boundary and the defect surfaces from
        // decode() with the right offset.
        let mut bytes = BytesMut::new();
        bytes.put_u32(7); // timestamp
        bytes.put_u16(TYPE_BGP4MP_ET);
        bytes.put_u16(SUBTYPE_BGP4MP_MESSAGE_AS4);
        bytes.put_u32(2); // body too short for the 4-byte micros field
        bytes.put_slice(&[0, 0]);
        let mut w = MrtWriter::new();
        w.write(&sample_bgp4mp(8, Some(5))).unwrap();
        let bad_len = bytes.len();
        bytes.put_slice(&w.into_bytes());

        let mut scanner = MrtScanner::new(&bytes);
        let bad = scanner.next_raw().unwrap().expect("chunked despite defect");
        assert_eq!(bad.offset, 0);
        assert_eq!(bad.microseconds, None);
        assert!(matches!(
            bad.decode(),
            Err(MrtError::Truncated("BGP4MP_ET microseconds"))
        ));
        // The next record is intact and fully decodable.
        let good = scanner.next_raw().unwrap().expect("stream resynced");
        assert_eq!(good.offset, bad_len);
        assert_eq!(good.decode().unwrap(), sample_bgp4mp(8, Some(5)));
        assert!(matches!(scanner.next_raw(), Ok(None)));
    }
}
