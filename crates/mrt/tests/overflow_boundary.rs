//! Boundary property: variable-length PEER_INDEX_TABLE fields either
//! round-trip exactly or error at encode time — never a silently
//! truncated counter that decodes into a different table.

use artemis_mrt::{MrtError, MrtReader, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable};
use proptest::prelude::*;

fn table_with(view_len: usize, peer_count: usize) -> PeerIndexTable {
    PeerIndexTable {
        collector_id: "198.51.100.1".parse().unwrap(),
        view_name: "v".repeat(view_len),
        peers: vec![
            PeerEntry {
                bgp_id: "10.0.0.1".parse().unwrap(),
                addr: "192.0.2.10".parse().unwrap(),
                asn: artemis_bgp::Asn(174),
            };
            peer_count
        ],
    }
}

fn roundtrip(table: PeerIndexTable) -> Result<PeerIndexTable, MrtError> {
    let rec = MrtRecord::PeerIndex {
        timestamp: 7,
        table,
    };
    let mut w = MrtWriter::new();
    w.write(&rec)?;
    let bytes = w.into_bytes();
    let got = MrtReader::new(&bytes).read_all()?;
    match got.into_iter().next() {
        Some(MrtRecord::PeerIndex { table, .. }) => Ok(table),
        other => panic!("expected a peer index record, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Around the u16 boundary: lengths that fit round-trip exactly;
    /// lengths that do not fit are an encode-time `FieldOverflow`.
    #[test]
    fn view_name_boundary(view_len in (u16::MAX as usize - 2)..=(u16::MAX as usize + 2)) {
        let table = table_with(view_len, 1);
        match roundtrip(table.clone()) {
            Ok(back) => {
                prop_assert!(view_len <= u16::MAX as usize);
                prop_assert_eq!(back, table);
            }
            Err(MrtError::FieldOverflow { field, len, max }) => {
                prop_assert!(view_len > u16::MAX as usize);
                prop_assert_eq!(field, "peer index view name");
                prop_assert_eq!(len, view_len);
                prop_assert_eq!(max, u16::MAX as usize);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn peer_count_boundary(peer_count in (u16::MAX as usize - 1)..=(u16::MAX as usize + 1)) {
        let table = table_with(4, peer_count);
        match roundtrip(table.clone()) {
            Ok(back) => {
                prop_assert!(peer_count <= u16::MAX as usize);
                prop_assert_eq!(back.peers.len(), peer_count);
            }
            Err(MrtError::FieldOverflow { field, len, .. }) => {
                prop_assert!(peer_count > u16::MAX as usize);
                prop_assert_eq!(field, "peer index peer count");
                prop_assert_eq!(len, peer_count);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}
