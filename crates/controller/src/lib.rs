//! # artemis-controller — ONOS-like route-intent controller
//!
//! ARTEMIS assumes "permissions for sending BGP advertisements for the
//! owned prefixes from the BGP routers of the network … effectively
//! accomplished by running ARTEMIS, as an application-level module,
//! over a network controller that supports BGP, like ONOS or
//! OpenDayLight" (paper §2).
//!
//! This crate models that controller as an *intent* system: the
//! mitigation service submits route intents (announce/withdraw a
//! prefix from the operator's AS); the controller compiles and installs
//! each intent after a configurable delay (the paper measures ≈ 15 s
//! from detection to the de-aggregated announcements leaving the AS);
//! installed intents become originations on the simulated BGP speakers.
//!
//! The controller is deliberately engine-agnostic: it emits
//! [`ControllerAction`]s that the pipeline driver applies to the
//! simulation engine (`artemis_bgpsim::Engine`, not a dependency of
//! this crate), keeping the layering honest — a real deployment would
//! apply them to router configs instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use artemis_bgp::{Asn, Prefix};
use artemis_simnet::{LatencyModel, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lifecycle of a route intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntentState {
    /// Accepted, compilation/installation in progress.
    Installing,
    /// Live on the routers.
    Installed,
    /// Withdrawn (terminal).
    Withdrawn,
}

/// What an installed intent does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntentKind {
    /// Originate `prefix` from the AS.
    Announce,
    /// Stop originating `prefix`.
    Withdraw,
}

/// A route intent (announce or withdraw one prefix).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteIntent {
    /// Controller-assigned identifier.
    pub id: u64,
    /// Announce or withdraw.
    pub kind: IntentKind,
    /// The prefix concerned.
    pub prefix: Prefix,
    /// The AS the intent acts for.
    pub origin_as: Asn,
    /// Current state.
    pub state: IntentState,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Installation instant (once installed).
    pub installed_at: Option<SimTime>,
}

/// An action ready to be applied to the routing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerAction {
    /// The intent that produced this action.
    pub intent_id: u64,
    /// When the routers execute it.
    pub effective_at: SimTime,
    /// Announce or withdraw.
    pub kind: IntentKind,
    /// Acting AS.
    pub origin_as: Asn,
    /// Prefix.
    pub prefix: Prefix,
}

/// The BGP-speaking SDN controller for one operator AS.
pub struct Controller {
    origin_as: Asn,
    install_delay: LatencyModel,
    rng: SimRng,
    intents: BTreeMap<u64, RouteIntent>,
    queue: Vec<ControllerAction>,
    next_id: u64,
}

impl Controller {
    /// A controller for `origin_as`. `install_delay` models intent
    /// compilation + router session programming; the paper's ≈ 15 s is
    /// `LatencyModel::uniform_secs(10, 20)`.
    pub fn new(origin_as: Asn, install_delay: LatencyModel, rng: SimRng) -> Self {
        Controller {
            origin_as,
            install_delay,
            rng,
            intents: BTreeMap::new(),
            queue: Vec::new(),
            next_id: 1,
        }
    }

    /// The paper's configuration: 10–20 s install delay.
    pub fn paper_calibrated(origin_as: Asn, rng: SimRng) -> Self {
        Controller::new(origin_as, LatencyModel::uniform_secs(10, 20), rng)
    }

    /// The AS this controller speaks for.
    pub fn origin_as(&self) -> Asn {
        self.origin_as
    }

    /// Submit an announce intent at `now`; returns its id.
    pub fn submit_announce(&mut self, prefix: Prefix, now: SimTime) -> u64 {
        self.submit(IntentKind::Announce, prefix, now)
    }

    /// Submit a withdraw intent at `now`; returns its id.
    pub fn submit_withdraw(&mut self, prefix: Prefix, now: SimTime) -> u64 {
        self.submit(IntentKind::Withdraw, prefix, now)
    }

    fn submit(&mut self, kind: IntentKind, prefix: Prefix, now: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let delay = self.install_delay.sample(&mut self.rng);
        self.intents.insert(
            id,
            RouteIntent {
                id,
                kind,
                prefix,
                origin_as: self.origin_as,
                state: IntentState::Installing,
                submitted_at: now,
                installed_at: None,
            },
        );
        self.queue.push(ControllerAction {
            intent_id: id,
            effective_at: now + delay,
            kind,
            origin_as: self.origin_as,
            prefix,
        });
        self.queue.sort_by_key(|a| a.effective_at);
        id
    }

    /// Time of the next pending action.
    pub fn next_action_time(&self) -> Option<SimTime> {
        self.queue.first().map(|a| a.effective_at)
    }

    /// Pop every action due at or before `now`, marking the intents
    /// installed. The caller applies them to the routing layer.
    pub fn due_actions(&mut self, now: SimTime) -> Vec<ControllerAction> {
        let split = self
            .queue
            .iter()
            .position(|a| a.effective_at > now)
            .unwrap_or(self.queue.len());
        let due: Vec<ControllerAction> = self.queue.drain(..split).collect();
        for action in &due {
            if let Some(intent) = self.intents.get_mut(&action.intent_id) {
                intent.state = match action.kind {
                    IntentKind::Announce => IntentState::Installed,
                    IntentKind::Withdraw => IntentState::Withdrawn,
                };
                intent.installed_at = Some(action.effective_at);
            }
        }
        due
    }

    /// Look up an intent.
    pub fn intent(&self, id: u64) -> Option<&RouteIntent> {
        self.intents.get(&id)
    }

    /// All intents (audit log), ordered by id.
    pub fn intents(&self) -> impl Iterator<Item = &RouteIntent> {
        self.intents.values()
    }

    /// Count of intents in a given state.
    pub fn count_state(&self, state: IntentState) -> usize {
        self.intents.values().filter(|i| i.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_simnet::SimDuration;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn controller(delay_secs: u64) -> Controller {
        Controller::new(
            Asn(65001),
            LatencyModel::const_secs(delay_secs),
            SimRng::new(1),
        )
    }

    #[test]
    fn submit_and_install_lifecycle() {
        let mut c = controller(15);
        let now = SimTime::from_secs(100);
        let id = c.submit_announce(pfx("10.0.0.0/24"), now);
        assert_eq!(c.intent(id).unwrap().state, IntentState::Installing);
        assert_eq!(c.next_action_time(), Some(now + SimDuration::from_secs(15)));
        // Too early: nothing due.
        assert!(c.due_actions(now + SimDuration::from_secs(10)).is_empty());
        // Due at the install instant.
        let due = c.due_actions(now + SimDuration::from_secs(15));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].prefix, pfx("10.0.0.0/24"));
        assert_eq!(due[0].origin_as, Asn(65001));
        let intent = c.intent(id).unwrap();
        assert_eq!(intent.state, IntentState::Installed);
        assert_eq!(intent.installed_at, Some(now + SimDuration::from_secs(15)));
    }

    #[test]
    fn withdraw_intents_terminal_state() {
        let mut c = controller(5);
        let id = c.submit_withdraw(pfx("10.0.0.0/24"), SimTime::ZERO);
        c.due_actions(SimTime::from_secs(5));
        assert_eq!(c.intent(id).unwrap().state, IntentState::Withdrawn);
        assert_eq!(c.count_state(IntentState::Withdrawn), 1);
    }

    #[test]
    fn actions_pop_in_time_order() {
        let mut c = Controller::new(
            Asn(65001),
            LatencyModel::uniform_secs(5, 30),
            SimRng::new(7),
        );
        for i in 0..10 {
            c.submit_announce(pfx(&format!("10.0.{i}.0/24")), SimTime::ZERO);
        }
        let due = c.due_actions(SimTime::from_secs(3_600));
        assert_eq!(due.len(), 10);
        let times: Vec<SimTime> = due.iter().map(|a| a.effective_at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn paper_calibration_range() {
        let mut c = Controller::paper_calibrated(Asn(65001), SimRng::new(3));
        for _ in 0..50 {
            c.submit_announce(pfx("10.0.0.0/24"), SimTime::ZERO);
        }
        let due = c.due_actions(SimTime::from_secs(60));
        assert_eq!(due.len(), 50);
        for a in due {
            let d = a.effective_at.since(SimTime::ZERO);
            assert!(
                d >= SimDuration::from_secs(10) && d <= SimDuration::from_secs(20),
                "install delay {d} outside 10–20 s"
            );
        }
    }

    #[test]
    fn partial_drain_keeps_remainder() {
        let mut c = controller(10);
        c.submit_announce(pfx("10.0.0.0/24"), SimTime::ZERO);
        c.submit_announce(pfx("10.0.1.0/24"), SimTime::from_secs(100));
        assert_eq!(c.due_actions(SimTime::from_secs(10)).len(), 1);
        assert_eq!(c.next_action_time(), Some(SimTime::from_secs(110)));
        assert_eq!(c.intents().count(), 2);
    }
}
