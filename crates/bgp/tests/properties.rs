//! Property-based tests for the BGP foundation types: prefix algebra,
//! trie-vs-naive equivalence, and wire-codec round-trips.

use artemis_bgp::prefix::Afi;
use artemis_bgp::{
    aspath::Segment, AsPath, Asn, BgpMessage, Codec, Community, Origin, PathAttributes, Prefix,
    PrefixTrie, UpdateMessage,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(addr, len)| Prefix::v4(std::net::Ipv4Addr::from(addr), len).expect("len <= 32"))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
        Prefix::v6(std::net::Ipv6Addr::from(addr), len).expect("len <= 128")
    })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![arb_v4_prefix(), arb_v6_prefix()]
}

fn arb_asn() -> impl Strategy<Value = Asn> {
    prop_oneof![
        (1u32..65536).prop_map(Asn),
        (65536u32..4_000_000_000).prop_map(Asn),
    ]
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_asn(), 1..8).prop_map(AsPath::from_sequence)
}

fn arb_as_path_with_sets() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(arb_asn(), 1..5).prop_map(Segment::Sequence),
            prop::collection::vec(arb_asn(), 1..4).prop_map(Segment::Set),
        ],
        1..4,
    )
    .prop_map(AsPath::from_segments)
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_as_path(),
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        prop::collection::vec(any::<u32>().prop_map(Community), 0..4),
        any::<bool>(),
    )
        .prop_map(
            |(path, origin, nh, med, lp, communities, atomic)| PathAttributes {
                origin,
                as_path: path,
                next_hop: std::net::IpAddr::V4(std::net::Ipv4Addr::from(nh)),
                med,
                local_pref: lp,
                atomic_aggregate: atomic,
                aggregator: None,
                communities,
            },
        )
}

// ---------------------------------------------------------------------
// Prefix algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let text = p.to_string();
        let back: Prefix = text.parse().expect("canonical text reparses");
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_is_reflexive(p in arb_prefix()) {
        prop_assert!(p.contains(p));
    }

    #[test]
    fn split_partitions_exactly(p in arb_v4_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.contains(lo));
            prop_assert!(p.contains(hi));
            prop_assert!(!lo.overlaps(hi));
            prop_assert_eq!(lo.len(), p.len() + 1);
            prop_assert_eq!(hi.len(), p.len() + 1);
            prop_assert_eq!(
                lo.address_count() + hi.address_count(),
                p.address_count()
            );
        } else {
            prop_assert_eq!(p.len(), 32);
        }
    }

    #[test]
    fn deaggregate_covers_parent_and_nothing_else(
        p in (any::<u32>(), 8u8..=22).prop_map(|(a, l)| Prefix::v4(a.into(), l).unwrap()),
        extra in 1u8..=3,
    ) {
        let target = p.len() + extra;
        let subs = p.deaggregate(target);
        prop_assert_eq!(subs.len(), 1usize << extra);
        let mut total: u128 = 0;
        for (i, s) in subs.iter().enumerate() {
            prop_assert_eq!(s.len(), target);
            prop_assert!(p.contains(*s), "{} must contain {}", p, s);
            total += s.address_count();
            // Ordered and pairwise disjoint.
            if i > 0 {
                prop_assert!(subs[i - 1] < *s);
                prop_assert!(!subs[i - 1].overlaps(*s));
            }
        }
        prop_assert_eq!(total, p.address_count());
    }

    #[test]
    fn supernet_inverts_split(p in arb_v4_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert_eq!(lo.supernet().unwrap(), p);
            prop_assert_eq!(hi.supernet().unwrap(), p);
            prop_assert_eq!(lo.sibling().unwrap(), hi);
            prop_assert_eq!(hi.sibling().unwrap(), lo);
        }
    }

    #[test]
    fn containment_transitivity(a in arb_v4_prefix(), b in arb_v4_prefix(), c in arb_v4_prefix()) {
        if a.contains(b) && b.contains(c) {
            prop_assert!(a.contains(c));
        }
    }
}

// ---------------------------------------------------------------------
// Trie vs naive scan
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_longest_match_equals_naive(
        entries in prop::collection::hash_set((any::<u32>(), 0u8..=28), 1..40),
        probe in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        let prefixes: Vec<Prefix> = entries
            .iter()
            .map(|(a, l)| Prefix::v4((*a).into(), *l).unwrap())
            .collect();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        let probe = Prefix::v4(probe.into(), 32).unwrap();
        let trie_hit = trie.longest_match(probe).map(|(p, _)| p);
        let naive_hit = prefixes
            .iter()
            .filter(|p| p.contains(probe))
            .max_by_key(|p| p.len())
            .copied();
        // Dup prefixes in `prefixes` collapse in the trie; compare prefixes only.
        prop_assert_eq!(trie_hit, naive_hit);
    }

    #[test]
    fn trie_covered_equals_naive(
        entries in prop::collection::hash_set((any::<u32>(), 0u8..=24), 1..40),
        root_addr in any::<u32>(),
        root_len in 0u8..=16,
    ) {
        let mut trie = PrefixTrie::new();
        let prefixes: Vec<Prefix> = entries
            .iter()
            .map(|(a, l)| Prefix::v4((*a).into(), *l).unwrap())
            .collect();
        for p in &prefixes {
            trie.insert(*p, ());
        }
        let root = Prefix::v4(root_addr.into(), root_len).unwrap();
        let mut from_trie: Vec<Prefix> = trie.covered(root).into_iter().map(|(p, _)| p).collect();
        let mut naive: Vec<Prefix> = prefixes
            .iter()
            .filter(|p| root.contains(**p))
            .copied()
            .collect();
        naive.sort();
        naive.dedup();
        from_trie.sort();
        prop_assert_eq!(from_trie, naive);
    }

    #[test]
    fn trie_insert_remove_is_identity(
        entries in prop::collection::vec((any::<u32>(), 0u8..=32), 1..30),
    ) {
        let mut trie = PrefixTrie::new();
        let prefixes: Vec<Prefix> = entries
            .iter()
            .map(|(a, l)| Prefix::v4((*a).into(), *l).unwrap())
            .collect();
        for p in &prefixes {
            trie.insert(*p, *p);
        }
        let mut uniq = prefixes.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(trie.len(), uniq.len());
        for p in &uniq {
            prop_assert_eq!(trie.remove(*p), Some(*p));
        }
        prop_assert!(trie.is_empty());
    }

    /// `collect()` (FromIterator) then `iter()` is the identity on the
    /// deduplicated entry set, and yields address order within each
    /// family with v4 before v6.
    #[test]
    fn trie_insert_iter_roundtrip(
        v4 in prop::collection::hash_set((any::<u32>(), 0u8..=32), 0..30),
        v6 in prop::collection::hash_set((any::<u128>(), 0u8..=64), 0..20),
    ) {
        let entries: Vec<(Prefix, u64)> = v4
            .iter()
            .map(|(a, l)| Prefix::v4((*a).into(), *l).unwrap())
            .chain(
                v6.iter()
                    .map(|(a, l)| Prefix::v6((*a).into(), *l).unwrap()),
            )
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let trie: PrefixTrie<u64> = entries.iter().copied().collect();

        // FromIterator keeps the *last* value for duplicate prefixes
        // (distinct (addr, len) pairs can mask to the same prefix), and
        // `Prefix: Ord` is (family, bits, len) — exactly iteration
        // order — so a BTreeMap models both.
        let expected: Vec<(Prefix, u64)> = entries
            .iter()
            .copied()
            .collect::<std::collections::BTreeMap<Prefix, u64>>()
            .into_iter()
            .collect();

        prop_assert_eq!(trie.len(), expected.len());
        let yielded: Vec<(Prefix, u64)> = trie.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(yielded, expected);
    }

    /// A trie built via FromIterator agrees with a naive linear scan on
    /// longest-prefix-match for arbitrary host probes.
    #[test]
    fn trie_from_iter_lpm_equals_naive_scan(
        entries in prop::collection::hash_set((any::<u32>(), 0u8..=30), 1..40),
        probes in prop::collection::vec(any::<u32>(), 1..16),
    ) {
        let prefixes: Vec<(Prefix, usize)> = entries
            .iter()
            .map(|(a, l)| Prefix::v4((*a).into(), *l).unwrap())
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        let trie: PrefixTrie<usize> = prefixes.iter().copied().collect();
        for probe in probes {
            let host = Prefix::v4(probe.into(), 32).unwrap();
            let trie_hit = trie.longest_match(host).map(|(p, _)| p);
            let naive_hit = prefixes
                .iter()
                .map(|(p, _)| *p)
                .filter(|p| p.contains(host))
                .max_by_key(|p| p.len());
            prop_assert_eq!(trie_hit, naive_hit, "probe {}", host);
        }
    }
}

// ---------------------------------------------------------------------
// AS path
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn prepend_increases_len_and_sets_neighbor(path in arb_as_path(), asn in arb_asn(), n in 1usize..5) {
        let out = path.prepend_n(asn, n);
        prop_assert_eq!(out.decision_len(), path.decision_len() + n);
        prop_assert_eq!(out.neighbor(), Some(asn));
        prop_assert_eq!(out.origin(), path.origin());
    }
}

// ---------------------------------------------------------------------
// Wire codec round-trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn update_roundtrips_four_octet(
        attrs in arb_attrs(),
        nlri in prop::collection::vec(arb_v4_prefix(), 1..6),
        withdrawn in prop::collection::vec(arb_v4_prefix(), 0..4),
    ) {
        let codec = Codec::four_octet();
        let update = UpdateMessage { withdrawn, attrs: Some(attrs), nlri };
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (decoded, used) = codec.decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, BgpMessage::Update(update));
    }

    #[test]
    fn update_roundtrips_two_octet_with_as4(
        path in arb_as_path(),
        nlri in prop::collection::vec(arb_v4_prefix(), 1..4),
    ) {
        let codec = Codec::two_octet();
        let attrs = PathAttributes::with_path(path, "192.0.2.1".parse().unwrap());
        let update = UpdateMessage::announce(attrs, nlri);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (decoded, _) = codec.decode(&bytes).unwrap();
        // The reconciled AS_PATH must equal the original.
        match decoded {
            BgpMessage::Update(u) => {
                prop_assert_eq!(u.attrs.unwrap().as_path, update.attrs.unwrap().as_path);
                prop_assert_eq!(u.nlri, update.nlri);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn mixed_segment_paths_roundtrip(path in arb_as_path_with_sets(), nlri in prop::collection::vec(arb_v4_prefix(), 1..3)) {
        let codec = Codec::four_octet();
        let attrs = PathAttributes::with_path(path, "192.0.2.1".parse().unwrap());
        let update = UpdateMessage::announce(attrs, nlri);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (decoded, _) = codec.decode(&bytes).unwrap();
        prop_assert_eq!(decoded, BgpMessage::Update(update));
    }

    #[test]
    fn v6_updates_roundtrip(
        path in arb_as_path(),
        nlri in prop::collection::vec(arb_v6_prefix(), 1..5),
        withdrawn in prop::collection::vec(arb_v6_prefix(), 0..3),
    ) {
        let codec = Codec::four_octet();
        let attrs = PathAttributes::with_path(path, "2001:db8::1".parse().unwrap());
        let update = UpdateMessage { withdrawn, attrs: Some(attrs), nlri };
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (decoded, _) = codec.decode(&bytes).unwrap();
        prop_assert_eq!(decoded, BgpMessage::Update(update));
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let codec = Codec::four_octet();
        let _ = codec.decode(&data); // must return, never panic
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_message(
        attrs in arb_attrs(),
        nlri in prop::collection::vec(arb_v4_prefix(), 1..4),
        flip in any::<(usize, u8)>(),
    ) {
        let codec = Codec::four_octet();
        let update = UpdateMessage::announce(attrs, nlri);
        let mut bytes = codec.encode(&BgpMessage::Update(update)).unwrap().to_vec();
        let idx = flip.0 % bytes.len();
        bytes[idx] ^= flip.1;
        let _ = codec.decode(&bytes); // Result either way; no panic
    }
}

// ---------------------------------------------------------------------
// Deterministic smoke checks that complement the proptest suites
// ---------------------------------------------------------------------

#[test]
fn afi_scoping_of_tries_under_heavy_mixing() {
    let mut trie = PrefixTrie::new();
    for i in 0..512u32 {
        let v4 = Prefix::v4(std::net::Ipv4Addr::from(i << 12), 24).unwrap();
        let v6 = Prefix::v6(std::net::Ipv6Addr::from((i as u128) << 100), 28).unwrap();
        trie.insert(v4, i);
        trie.insert(v6, i + 10_000);
    }
    let v4_all = trie.covered(Prefix::default_v4());
    let v6_all = trie.covered(Prefix::default_v6());
    assert!(v4_all.iter().all(|(p, _)| p.afi() == Afi::Ipv4));
    assert!(v6_all.iter().all(|(p, _)| p.afi() == Afi::Ipv6));
    assert_eq!(v4_all.len() + v6_all.len(), trie.len());
}
