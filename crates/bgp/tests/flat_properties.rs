//! Cross-structure property tests: [`FlatTrie`] must be an exact,
//! query-for-query stand-in for the boxed [`PrefixTrie`] it is built
//! from — longest-prefix match, exact lookup and iteration order all
//! identical — including across offboard-then-readd churn,
//! nested/adjacent prefix sets, and on either side of the stride-16
//! root-table threshold. Incremental in-place patching (the detector's
//! epoch path) must additionally be indistinguishable from a wholesale
//! `from_trie` rebuild after every single operation.

use artemis_bgp::{FlatTrie, Prefix, PrefixTrie};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

// ---------------------------------------------------------------------
// Generators — deliberately clustered so nesting and adjacency are the
// norm, not a rare accident.
// ---------------------------------------------------------------------

/// V4 prefixes drawn from a handful of /8s with short-ish masks:
/// collisions, covering prefixes and adjacent siblings are frequent.
fn clustered_v4() -> impl Strategy<Value = Prefix> {
    (0u8..4, any::<u32>(), 4u8..=32).prop_map(|(net, addr, len)| {
        let addr = Ipv4Addr::from((u32::from(net) << 24) | (addr & 0x00FF_FFFF));
        Prefix::v4(addr, len).expect("len <= 32")
    })
}

/// V6 prefixes clustered under 2001:db8::/32.
fn clustered_v6() -> impl Strategy<Value = Prefix> {
    (any::<u64>(), 8u8..=64).prop_map(|(low, len)| {
        let addr = Ipv6Addr::from((0x2001_0db8u128 << 96) | u128::from(low));
        Prefix::v6(addr, len).expect("len <= 128")
    })
}

fn arb_prefix_set(max: usize) -> impl Strategy<Value = Vec<Prefix>> {
    prop::collection::vec(
        prop_oneof![
            clustered_v4(),
            clustered_v4(),
            clustered_v4(),
            clustered_v6()
        ],
        1..max,
    )
}

/// Rebuild a prefix of the same family from left-aligned bits (the
/// constructors zero host bits, so derived queries stay canonical).
fn mk(template: Prefix, bits: u128, len: u8) -> Prefix {
    match template.afi() {
        artemis_bgp::prefix::Afi::Ipv4 => {
            Prefix::v4(Ipv4Addr::from((bits >> 96) as u32), len).expect("len <= 32")
        }
        artemis_bgp::prefix::Afi::Ipv6 => {
            Prefix::v6(Ipv6Addr::from(bits), len).expect("len <= 128")
        }
    }
}

/// Queries derived from an inserted prefix: itself, a covering parent,
/// a more-specific child, the host route and the adjacent sibling —
/// the relationships a longest-prefix match has to arbitrate.
fn related_queries(p: Prefix) -> Vec<Prefix> {
    let mut queries = vec![p];
    if p.len() > 0 {
        queries.push(mk(p, p.bits(), p.len() - 1));
        // Sibling: flip the last masked bit.
        let flipped = p.bits() ^ (1u128 << (128 - u32::from(p.len())));
        queries.push(mk(p, flipped, p.len()));
    }
    let host_len = p.afi().max_len();
    if p.len() < host_len {
        queries.push(mk(p, p.bits(), p.len() + 1));
        queries.push(mk(p, p.bits(), host_len));
    }
    queries
}

/// Assert FlatTrie and PrefixTrie agree on every probe we can derive.
fn assert_identical(trie: &PrefixTrie<u32>, flat: &FlatTrie<u32>, queries: &[Prefix]) {
    assert_eq!(flat.len(), trie.len());
    assert_eq!(flat.is_empty(), trie.is_empty());
    let flat_iter: Vec<(Prefix, u32)> = flat.iter().map(|(p, v)| (p, *v)).collect();
    let trie_iter: Vec<(Prefix, u32)> = trie.iter().map(|(p, v)| (p, *v)).collect();
    assert_eq!(flat_iter, trie_iter, "iteration order and contents");
    for &q in queries {
        assert_eq!(
            flat.longest_match(q).map(|(p, v)| (p, *v)),
            trie.longest_match(q).map(|(p, v)| (p, *v)),
            "longest_match({q})"
        );
        assert_eq!(flat.get(q).copied(), trie.get(q).copied(), "get({q})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any clustered prefix set: identical views, identical matches.
    #[test]
    fn flat_matches_boxed_on_clustered_sets(
        prefixes in arb_prefix_set(120),
        extra_queries in prop::collection::vec(
            prop_oneof![clustered_v4(), clustered_v6()], 0..32),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i as u32);
        }
        let flat = FlatTrie::from_trie(&trie);
        let mut queries: Vec<Prefix> =
            prefixes.iter().flat_map(|p| related_queries(*p)).collect();
        queries.extend(extra_queries);
        assert_identical(&trie, &flat, &queries);
    }

    /// Offboard-then-readd churn: remove a subset, rebuild, check;
    /// re-add the removed prefixes (fresh values), rebuild, check.
    /// This is exactly the detector's shard onboard/offboard life
    /// cycle, where every mutation is a wholesale rebuild.
    #[test]
    fn flat_survives_offboard_then_readd_churn(
        prefixes in arb_prefix_set(80),
        removal_seed in any::<u64>(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut live: BTreeMap<Prefix, u32> = BTreeMap::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i as u32);
            live.insert(*p, i as u32);
        }
        let queries: Vec<Prefix> =
            prefixes.iter().flat_map(|p| related_queries(*p)).collect();

        // Offboard roughly half, chosen by a cheap deterministic hash.
        let removed: Vec<Prefix> = live
            .keys()
            .filter(|p| (p.bits().wrapping_mul(removal_seed as u128)) & 1 == 1)
            .copied()
            .collect();
        for p in &removed {
            trie.remove(*p);
        }
        let flat = FlatTrie::from_trie(&trie);
        assert_identical(&trie, &flat, &queries);

        // Re-add with fresh shard indices (offboard → onboard again).
        for (j, p) in removed.iter().enumerate() {
            trie.insert(*p, 10_000 + j as u32);
        }
        let flat = FlatTrie::from_trie(&trie);
        assert_identical(&trie, &flat, &queries);
    }

    /// Incremental patching must be indistinguishable from a wholesale
    /// rebuild: apply a randomized insert/remove churn sequence to one
    /// `FlatTrie` in place, and after every operation compare it to a
    /// fresh `from_trie` rebuild of the boxed model — return values,
    /// lengths, iteration order and every derived probe must agree.
    /// This is the contract the incremental detector epochs stand on.
    #[test]
    fn incremental_patching_matches_wholesale_rebuild(
        pool in arb_prefix_set(48),
        ops in prop::collection::vec(
            (any::<bool>(), any::<usize>(), any::<u32>()),
            1..160),
    ) {
        let mut trie = PrefixTrie::new();
        let mut flat: FlatTrie<u32> = FlatTrie::new();
        for (step, (is_insert, which, value)) in ops.iter().enumerate() {
            let p = pool[which % pool.len()];
            if *is_insert {
                let was = trie.insert(p, *value);
                prop_assert_eq!(
                    flat.insert(p, *value), was,
                    "insert({}) return at step {}", p, step
                );
            } else {
                let was = trie.remove(p);
                prop_assert_eq!(
                    flat.remove(p), was,
                    "remove({}) return at step {}", p, step
                );
            }
            let rebuilt = FlatTrie::from_trie(&trie);
            prop_assert_eq!(flat.len(), rebuilt.len());
            let queries = related_queries(p);
            assert_identical(&trie, &flat, &queries);
            assert_identical(&trie, &rebuilt, &queries);
        }
        // Full sweep at the end: the patched structure answers every
        // probe derivable from the whole pool, not just the last op.
        let queries: Vec<Prefix> =
            pool.iter().flat_map(|p| related_queries(*p)).collect();
        assert_identical(&trie, &flat, &queries);
    }

    /// Draining the churned structure back to empty via incremental
    /// removes leaves no residue: it answers like a brand-new trie.
    #[test]
    fn incremental_drain_to_empty_leaves_no_residue(
        pool in arb_prefix_set(40),
        probes in prop::collection::vec(
            prop_oneof![clustered_v4(), clustered_v6()], 0..24),
    ) {
        let mut flat: FlatTrie<u32> = FlatTrie::new();
        for (i, p) in pool.iter().enumerate() {
            flat.insert(*p, i as u32);
        }
        for p in &pool {
            flat.remove(*p);
        }
        prop_assert!(flat.is_empty());
        prop_assert_eq!(flat.iter().count(), 0);
        for &q in pool.iter().chain(probes.iter()) {
            prop_assert!(flat.longest_match(q).is_none(), "longest_match({})", q);
            prop_assert!(flat.get(q).is_none(), "get({})", q);
        }
    }

    /// The stride-16 root table must be behaviorally invisible: a set
    /// just below the table threshold and the same set grown past it
    /// answer every query identically (each vs its own boxed trie).
    #[test]
    fn root_table_threshold_is_invisible(
        base in prop::collection::vec(clustered_v4(), 8..24),
        filler_seed in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in base.iter().enumerate() {
            trie.insert(*p, i as u32);
        }
        let queries: Vec<Prefix> =
            base.iter().flat_map(|p| related_queries(*p)).collect();
        // Below threshold (≤ 24 v4 entries): no root table.
        let flat = FlatTrie::from_trie(&trie);
        assert_identical(&trie, &flat, &queries);

        // Push past the 32-entry threshold with distinct /24 filler.
        for i in 0..40u32 {
            let addr = Ipv4Addr::from(
                0xC000_0000u32 | (filler_seed.wrapping_add(i * 251) & 0x00FF_FF00),
            );
            trie.insert(Prefix::v4(addr, 24).expect("/24"), 50_000 + i);
        }
        let flat = FlatTrie::from_trie(&trie);
        assert!(flat.node_count() > 0);
        assert_identical(&trie, &flat, &queries);
    }
}
