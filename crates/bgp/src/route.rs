//! Routes and route updates — the lingua franca between simulator,
//! feeds and detector.

use crate::{AsPath, Asn, PathAttributes, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// Where a route observation came from (vantage point provenance).
///
/// ARTEMIS's detection delay is `min` over sources; keeping provenance on
/// every observation is what lets the experiments attribute wins to
/// specific feeds (Periscope vs RIS vs BGPmon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteSource {
    /// Locally originated by the AS itself.
    Local,
    /// Learned over an eBGP session from the given neighbor AS.
    Ebgp(Asn),
    /// Learned over iBGP.
    Ibgp,
}

impl fmt::Display for RouteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteSource::Local => write!(f, "local"),
            RouteSource::Ebgp(asn) => write!(f, "eBGP({asn})"),
            RouteSource::Ibgp => write!(f, "iBGP"),
        }
    }
}

/// A single route: a prefix plus the attributes it was announced with.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Path attributes.
    pub attrs: PathAttributes,
    /// How the holder of this route learned it.
    pub source: RouteSource,
}

impl Route {
    /// Construct a locally originated route.
    pub fn originate(prefix: Prefix, origin_as: Asn, next_hop: IpAddr) -> Self {
        Route {
            prefix,
            attrs: PathAttributes::originate(origin_as, next_hop),
            source: RouteSource::Local,
        }
    }

    /// Construct from an explicit path (convenient in tests and feeds).
    pub fn with_path(prefix: Prefix, as_path: AsPath, next_hop: IpAddr) -> Self {
        Route {
            prefix,
            attrs: PathAttributes::with_path(as_path, next_hop),
            source: RouteSource::Ibgp,
        }
    }

    /// The origin AS of the route's path, if well defined.
    pub fn origin_as(&self) -> Option<Asn> {
        self.attrs.origin_as()
    }

    /// The AS path.
    pub fn as_path(&self) -> &AsPath {
        &self.attrs.as_path
    }
}

/// An announce/withdraw event for a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteUpdate {
    /// A new or replacement path for the prefix (implicit withdraw of
    /// any previous path from the same peer).
    Announce(Route),
    /// The prefix is no longer reachable via the sending peer.
    Withdraw {
        /// Withdrawn prefix.
        prefix: Prefix,
    },
}

impl RouteUpdate {
    /// The prefix the update concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            RouteUpdate::Announce(r) => r.prefix,
            RouteUpdate::Withdraw { prefix } => *prefix,
        }
    }

    /// True for announcements.
    pub fn is_announce(&self) -> bool {
        matches!(self, RouteUpdate::Announce(_))
    }

    /// The announced route, if any.
    pub fn route(&self) -> Option<&Route> {
        match self {
            RouteUpdate::Announce(r) => Some(r),
            RouteUpdate::Withdraw { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    #[test]
    fn originate_builds_single_hop_path() {
        let r = Route::originate(pfx("10.0.0.0/23"), Asn(65001), "10.0.0.1".parse().unwrap());
        assert_eq!(r.origin_as(), Some(Asn(65001)));
        assert_eq!(r.source, RouteSource::Local);
        assert_eq!(r.as_path().decision_len(), 1);
    }

    #[test]
    fn update_prefix_accessor() {
        let r = Route::originate(pfx("10.0.0.0/23"), Asn(65001), "10.0.0.1".parse().unwrap());
        let a = RouteUpdate::Announce(r.clone());
        let w = RouteUpdate::Withdraw {
            prefix: pfx("10.0.0.0/23"),
        };
        assert_eq!(a.prefix(), pfx("10.0.0.0/23"));
        assert_eq!(w.prefix(), pfx("10.0.0.0/23"));
        assert!(a.is_announce());
        assert!(!w.is_announce());
        assert_eq!(a.route(), Some(&r));
        assert_eq!(w.route(), None);
    }

    #[test]
    fn route_source_display() {
        assert_eq!(RouteSource::Ebgp(Asn(174)).to_string(), "eBGP(AS174)");
        assert_eq!(RouteSource::Local.to_string(), "local");
    }
}
