//! Error types for BGP message construction and wire parsing.

use std::fmt;

/// Errors raised while encoding or decoding BGP wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// The 16-byte marker was not all-ones (RFC 4271 §4.1).
    BadMarker,
    /// Header length field out of the [19, 4096] range or inconsistent
    /// with the available bytes.
    BadLength {
        /// The length claimed by the header.
        claimed: usize,
        /// The bytes actually available.
        available: usize,
    },
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// The message body ended before a required field.
    Truncated(&'static str),
    /// An UPDATE path attribute was malformed.
    MalformedAttribute {
        /// Attribute type code.
        type_code: u8,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An NLRI prefix had an invalid length for its family.
    InvalidNlri {
        /// The bad bit length.
        bit_len: u8,
    },
    /// An OPEN message carried an unsupported BGP version.
    UnsupportedVersion(u8),
    /// A well-known mandatory attribute was missing from an UPDATE that
    /// announces NLRI.
    MissingMandatoryAttribute(&'static str),
    /// A value did not fit the wire encoding (e.g. 4-byte ASN on a
    /// 2-byte session without AS_TRANS handling).
    EncodingOverflow(&'static str),
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::BadMarker => write!(f, "BGP header marker is not all-ones"),
            BgpError::BadLength { claimed, available } => write!(
                f,
                "bad BGP message length: header claims {claimed} bytes, {available} available"
            ),
            BgpError::UnknownMessageType(t) => write!(f, "unknown BGP message type {t}"),
            BgpError::Truncated(what) => write!(f, "truncated BGP message while reading {what}"),
            BgpError::MalformedAttribute { type_code, reason } => {
                write!(f, "malformed path attribute {type_code}: {reason}")
            }
            BgpError::InvalidNlri { bit_len } => {
                write!(f, "invalid NLRI prefix bit length {bit_len}")
            }
            BgpError::UnsupportedVersion(v) => write!(f, "unsupported BGP version {v}"),
            BgpError::MissingMandatoryAttribute(name) => {
                write!(f, "UPDATE with NLRI lacks mandatory attribute {name}")
            }
            BgpError::EncodingOverflow(what) => write!(f, "value does not fit encoding: {what}"),
        }
    }
}

impl std::error::Error for BgpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BgpError::BadLength {
            claimed: 5000,
            available: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("5000") && msg.contains("100"));
        assert!(BgpError::BadMarker.to_string().contains("marker"));
        assert!(BgpError::UnknownMessageType(9).to_string().contains('9'));
    }
}
