//! Flattened, array-backed companion to [`PrefixTrie`].
//!
//! [`FlatTrie`] stores the same prefix → value mapping as a
//! [`PrefixTrie`], but in contiguous arrays — a node pool linked by
//! `u32` indices instead of `[Option<Box<Node>>; 2]` pointers, and a
//! value slab indexed from the nodes. Longest-prefix match becomes a
//! cache-friendly walk over a dense array, and for IPv4 lookups a
//! precomputed stride-16 root table skips the first sixteen branches in
//! one indexed load.
//!
//! Unlike its first incarnation the structure is **incrementally
//! mutable**: [`FlatTrie::insert`] and [`FlatTrie::remove`] patch the
//! node pool and the stride table in place, touching only the affected
//! subtree and the `2^(16-len)` stride slots a changed IPv4 prefix can
//! influence. Onboarding or offboarding a prefix therefore costs
//! O(affected subtree) instead of a wholesale rebuild, which is what
//! lets the ARTEMIS detector keep a single epoch-stamped flat routing
//! structure across configuration churn.
//!
//! Lookup results are bit-for-bit identical to the boxed trie:
//! [`FlatTrie::longest_match`], [`FlatTrie::get`] and
//! [`FlatTrie::iter`] agree with their [`PrefixTrie`] counterparts on
//! every input, and a trie mutated incrementally is indistinguishable
//! from one rebuilt from scratch (property-locked in
//! `tests/flat_properties.rs`).

use crate::prefix::{Afi, Prefix};
use crate::trie::PrefixTrie;

/// Sentinel for "no node" / "no value" links in the flat arrays.
const NONE: u32 = u32::MAX;
/// Index of the IPv4 root node in the node pool.
const V4_ROOT: u32 = 0;
/// Index of the IPv6 root node in the node pool.
const V6_ROOT: u32 = 1;
/// Number of leading IPv4 bits resolved by the stride table.
const TABLE_BITS: u8 = 16;
/// Minimum number of IPv4 entries before the 65536-slot stride table
/// is materialized. Below this the plain walk is already cheap and the
/// 512 KiB table would dominate the structure's footprint. Once built
/// the table is kept (and patched) even if the count later drops.
const TABLE_MIN_V4: usize = 32;

/// One node of the flattened trie: two child links and an optional
/// index into the value slab.
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    children: [u32; 2],
    value: u32,
}

impl FlatNode {
    const EMPTY: FlatNode = FlatNode {
        children: [NONE, NONE],
        value: NONE,
    };
}

/// Precomputed state after consuming the first [`TABLE_BITS`] bits of
/// an IPv4 lookup: the node reached (or [`NONE`]) and the best value
/// index seen on the way down.
#[derive(Debug, Clone, Copy)]
struct RootSlot {
    node: u32,
    best: u32,
}

/// A level-compressed, array-backed prefix trie supporting in-place
/// incremental updates.
///
/// See the [module docs](self) for the design rationale. `FlatTrie` is
/// cheap to share (`Arc<FlatTrie<T>>`) and cheap to query; mutation
/// patches the node pool and IPv4 stride table in place so callers
/// holding an `Arc` can use copy-on-write (`Arc::make_mut`) for epoch
/// snapshots.
#[derive(Debug, Clone)]
pub struct FlatTrie<T> {
    nodes: Vec<FlatNode>,
    /// Recycled node-pool indices available for reuse.
    free_nodes: Vec<u32>,
    /// `(prefix, value)` slab; `None` entries are free slots.
    values: Vec<Option<(Prefix, T)>>,
    /// Recycled value-slab indices available for reuse.
    free_values: Vec<u32>,
    /// Stride-16 IPv4 root table (empty until [`TABLE_MIN_V4`] IPv4
    /// prefixes have been inserted).
    v4_table: Vec<RootSlot>,
    /// Live IPv4 prefix count (drives stride-table materialization).
    v4_len: usize,
}

impl<T: Clone> FlatTrie<T> {
    /// Build a flat snapshot of `trie`. Lookups on the result are
    /// identical to lookups on `trie` at the time of the call.
    pub fn from_trie(trie: &PrefixTrie<T>) -> Self {
        let mut flat = FlatTrie::new();
        flat.values.reserve(trie.len());
        for (prefix, value) in trie.iter() {
            flat.insert_inner(prefix, value.clone(), false);
        }
        if flat.v4_len >= TABLE_MIN_V4 {
            flat.build_v4_table();
        }
        flat
    }
}

impl<T> FlatTrie<T> {
    /// An empty flat trie (no prefixes, lookups all miss).
    pub fn new() -> Self {
        FlatTrie {
            nodes: vec![FlatNode::EMPTY, FlatNode::EMPTY],
            free_nodes: Vec::new(),
            values: Vec::new(),
            free_values: Vec::new(),
            v4_table: Vec::new(),
            v4_len: 0,
        }
    }

    /// Insert `value` for `prefix`, returning the previous value if the
    /// prefix was already present. Patches the node pool and (for IPv4)
    /// the stride-16 root table in place: only the path to `prefix` and
    /// the stride slots covered by `prefix` are touched.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        self.insert_inner(prefix, value, true)
    }

    fn insert_inner(&mut self, prefix: Prefix, value: T, patch: bool) -> Option<T> {
        let mut cur = root_of(prefix.afi());
        for i in 0..prefix.len() {
            let b = usize::from(prefix.bit(i));
            let next = self.nodes[cur as usize].children[b];
            cur = if next == NONE {
                let idx = self.alloc_node();
                self.nodes[cur as usize].children[b] = idx;
                idx
            } else {
                next
            };
        }
        let node = &mut self.nodes[cur as usize];
        if node.value != NONE {
            // Replace in place: the value index is unchanged, so every
            // stride slot referencing it stays valid — no patch needed.
            let vidx = node.value as usize;
            let (_, old) = self.values[vidx]
                .replace((prefix, value))
                .expect("occupied value slot");
            return Some(old);
        }
        let vidx = self.alloc_value(prefix, value);
        self.nodes[cur as usize].value = vidx;
        if prefix.afi() == Afi::Ipv4 {
            self.v4_len += 1;
            if patch {
                if self.v4_table.is_empty() {
                    if self.v4_len >= TABLE_MIN_V4 {
                        self.build_v4_table();
                    }
                } else {
                    self.patch_v4_table(prefix);
                }
            }
        }
        None
    }

    /// Remove `prefix`, returning its value if it was present. Prunes
    /// now-empty chain nodes back toward the root and patches the
    /// affected IPv4 stride slots in place.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let root = root_of(prefix.afi());
        let mut cur = root;
        let mut path = Vec::with_capacity(usize::from(prefix.len()));
        for i in 0..prefix.len() {
            let b = usize::from(prefix.bit(i));
            let next = self.nodes[cur as usize].children[b];
            if next == NONE {
                return None;
            }
            path.push((cur, b));
            cur = next;
        }
        let vidx = self.nodes[cur as usize].value;
        if vidx == NONE {
            return None;
        }
        self.nodes[cur as usize].value = NONE;
        let (_, value) = self.values[vidx as usize]
            .take()
            .expect("occupied value slot");
        self.free_values.push(vidx);
        // Prune valueless leaf chains back toward the root.
        let mut child = cur;
        while child != root {
            let n = self.nodes[child as usize];
            if n.value != NONE || n.children[0] != NONE || n.children[1] != NONE {
                break;
            }
            let (parent, b) = path.pop().expect("path covers all non-root nodes");
            self.nodes[parent as usize].children[b] = NONE;
            self.nodes[child as usize] = FlatNode::EMPTY;
            self.free_nodes.push(child);
            child = parent;
        }
        if prefix.afi() == Afi::Ipv4 {
            self.v4_len -= 1;
            self.patch_v4_table(prefix);
        }
        Some(value)
    }

    /// Mutable access to the value stored for exactly `prefix`.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let mut cur = root_of(prefix.afi());
        for i in 0..prefix.len() {
            let next = self.nodes[cur as usize].children[usize::from(prefix.bit(i))];
            if next == NONE {
                return None;
            }
            cur = next;
        }
        let vidx = self.nodes[cur as usize].value;
        if vidx == NONE {
            return None;
        }
        self.values[vidx as usize].as_mut().map(|(_, v)| v)
    }

    fn alloc_node(&mut self) -> u32 {
        if let Some(idx) = self.free_nodes.pop() {
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("node pool fits in u32");
            self.nodes.push(FlatNode::EMPTY);
            idx
        }
    }

    fn alloc_value(&mut self, prefix: Prefix, value: T) -> u32 {
        if let Some(idx) = self.free_values.pop() {
            self.values[idx as usize] = Some((prefix, value));
            idx
        } else {
            let idx = u32::try_from(self.values.len()).expect("value slab fits in u32");
            self.values.push(Some((prefix, value)));
            idx
        }
    }

    /// Recompute the stride slots whose 16-bit head is covered by
    /// `prefix` (all of them when `len < 16`, exactly one otherwise).
    /// Heads outside that range cannot observe the change: the
    /// inserted/pruned chain nodes off `prefix`'s path are valueless
    /// and single-child, so their walks terminate with the same
    /// `(node, best)` as before.
    fn patch_v4_table(&mut self, prefix: Prefix) {
        if self.v4_table.is_empty() {
            return;
        }
        let head = (prefix.bits() >> (128 - u32::from(TABLE_BITS))) as usize;
        let span = if prefix.len() >= TABLE_BITS {
            1
        } else {
            1usize << (TABLE_BITS - prefix.len())
        };
        for h in head..head + span {
            self.v4_table[h] = self.compute_slot(h);
        }
    }

    fn compute_slot(&self, head: usize) -> RootSlot {
        let mut cur = V4_ROOT;
        let mut best = self.nodes[cur as usize].value;
        for i in 0..TABLE_BITS {
            let b = (head >> (TABLE_BITS - 1 - i)) & 1;
            let next = self.nodes[cur as usize].children[b];
            if next == NONE {
                return RootSlot { node: NONE, best };
            }
            cur = next;
            if self.nodes[cur as usize].value != NONE {
                best = self.nodes[cur as usize].value;
            }
        }
        RootSlot { node: cur, best }
    }

    fn build_v4_table(&mut self) {
        let slots = 1usize << TABLE_BITS;
        let mut table = Vec::with_capacity(slots);
        for head in 0..slots {
            table.push(self.compute_slot(head));
        }
        self.v4_table = table;
    }

    /// Longest stored prefix covering `prefix`, with its value.
    /// Agrees exactly with [`PrefixTrie::longest_match`].
    pub fn longest_match(&self, prefix: Prefix) -> Option<(Prefix, &T)> {
        let (mut cur, mut best, start) = match prefix.afi() {
            Afi::Ipv4 if !self.v4_table.is_empty() && prefix.len() >= TABLE_BITS => {
                let head = (prefix.bits() >> (128 - u32::from(TABLE_BITS))) as usize;
                let slot = self.v4_table[head];
                if slot.node == NONE {
                    return self.value_at(slot.best);
                }
                (slot.node, slot.best, TABLE_BITS)
            }
            Afi::Ipv4 => (V4_ROOT, self.nodes[V4_ROOT as usize].value, 0),
            Afi::Ipv6 => (V6_ROOT, self.nodes[V6_ROOT as usize].value, 0),
        };
        for i in start..prefix.len() {
            let b = usize::from(prefix.bit(i));
            let next = self.nodes[cur as usize].children[b];
            if next == NONE {
                break;
            }
            cur = next;
            let v = self.nodes[cur as usize].value;
            if v != NONE {
                best = v;
            }
        }
        self.value_at(best)
    }

    /// Value stored for exactly `prefix`, if any. Agrees with
    /// [`PrefixTrie::get`].
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut cur = root_of(prefix.afi());
        for i in 0..prefix.len() {
            let next = self.nodes[cur as usize].children[usize::from(prefix.bit(i))];
            if next == NONE {
                return None;
            }
            cur = next;
        }
        self.value_at(self.nodes[cur as usize].value)
            .map(|(_, v)| v)
    }

    fn value_at(&self, idx: u32) -> Option<(Prefix, &T)> {
        if idx == NONE {
            None
        } else {
            let (p, v) = self.values[idx as usize]
                .as_ref()
                .expect("live value index");
            Some((*p, v))
        }
    }

    /// All `(prefix, value)` pairs in [`PrefixTrie::iter`] order (IPv4
    /// before IPv6, pre-order address order within each family).
    pub fn iter(&self) -> FlatIter<'_, T> {
        FlatIter {
            trie: self,
            stack: vec![V6_ROOT, V4_ROOT],
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.values.len() - self.free_values.len()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live nodes in the flat pool (including the two roots).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free_nodes.len()
    }

    /// Approximate heap footprint in bytes: node pool, value slab, free
    /// lists and the IPv4 stride table. Per-value payload is counted by
    /// `size_of::<T>()`; heap owned by `T` itself is not followed.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FlatNode>()
            + self.values.capacity() * std::mem::size_of::<Option<(Prefix, T)>>()
            + self.v4_table.capacity() * std::mem::size_of::<RootSlot>()
            + (self.free_nodes.capacity() + self.free_values.capacity())
                * std::mem::size_of::<u32>()
    }
}

fn root_of(afi: Afi) -> u32 {
    match afi {
        Afi::Ipv4 => V4_ROOT,
        Afi::Ipv6 => V6_ROOT,
    }
}

/// Pre-order iterator over a [`FlatTrie`], yielding pairs in exactly
/// [`PrefixTrie::iter`] order.
#[derive(Debug)]
pub struct FlatIter<'a, T> {
    trie: &'a FlatTrie<T>,
    stack: Vec<u32>,
}

impl<'a, T> Iterator for FlatIter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(idx) = self.stack.pop() {
            let node = self.trie.nodes[idx as usize];
            if node.children[1] != NONE {
                self.stack.push(node.children[1]);
            }
            if node.children[0] != NONE {
                self.stack.push(node.children[0]);
            }
            if node.value != NONE {
                let (p, v) = self.trie.values[node.value as usize]
                    .as_ref()
                    .expect("live value index");
                return Some((*p, v));
            }
        }
        None
    }
}

impl<T> Default for FlatTrie<T> {
    fn default() -> Self {
        FlatTrie::new()
    }
}

impl<T: Clone> From<&PrefixTrie<T>> for FlatTrie<T> {
    fn from(trie: &PrefixTrie<T>) -> Self {
        FlatTrie::from_trie(trie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn empty_trie_misses_everything() {
        let flat: FlatTrie<u32> = FlatTrie::new();
        assert!(flat.longest_match(p("10.0.0.0/24")).is_none());
        assert!(flat.get(p("::/0")).is_none());
        assert_eq!(flat.len(), 0);
        assert!(flat.is_empty());
        assert_eq!(flat.node_count(), 2);
    }

    #[test]
    fn matches_boxed_trie_on_nested_prefixes() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("10.0.0.0/8"), 8u32);
        trie.insert(p("10.0.0.0/24"), 24);
        trie.insert(p("10.0.1.0/24"), 124);
        trie.insert(p("0.0.0.0/0"), 0);
        trie.insert(p("2001:db8::/32"), 632);
        let flat = FlatTrie::from_trie(&trie);
        for q in [
            "10.0.0.0/25",
            "10.0.0.0/24",
            "10.0.1.7/32",
            "10.9.0.0/16",
            "11.0.0.0/8",
            "0.0.0.0/0",
            "2001:db8:1::/48",
            "2001:db9::/32",
        ] {
            let q = p(q);
            assert_eq!(
                flat.longest_match(q).map(|(pr, v)| (pr, *v)),
                trie.longest_match(q).map(|(pr, v)| (pr, *v)),
                "longest_match({q})"
            );
            assert_eq!(flat.get(q), trie.get(q), "get({q})");
        }
        let flat_pairs: Vec<_> = flat.iter().map(|(pr, v)| (pr, *v)).collect();
        let boxed_pairs: Vec<_> = trie.iter().map(|(pr, v)| (pr, *v)).collect();
        assert_eq!(flat_pairs, boxed_pairs);
    }

    #[test]
    fn stride_table_kicks_in_above_threshold_and_stays_identical() {
        let mut trie = PrefixTrie::new();
        for i in 0..64u32 {
            let octets = [10, (i >> 8) as u8, i as u8, 0];
            let pr = Prefix::v4(octets.into(), 24).expect("valid");
            trie.insert(pr, i);
        }
        trie.insert(p("10.0.0.0/12"), 9000);
        let flat = FlatTrie::from_trie(&trie);
        assert!(!flat.v4_table.is_empty(), "table built above threshold");
        for i in 0..128u32 {
            let octets = [10, (i >> 8) as u8, i as u8, 1];
            let q = Prefix::v4(octets.into(), 32).expect("valid");
            assert_eq!(
                flat.longest_match(q).map(|(pr, v)| (pr, *v)),
                trie.longest_match(q).map(|(pr, v)| (pr, *v)),
                "query {q}"
            );
        }
        // Short queries bypass the table but still agree.
        let q = p("10.128.0.0/9");
        assert_eq!(
            flat.longest_match(q).map(|(pr, v)| (pr, *v)),
            trie.longest_match(q).map(|(pr, v)| (pr, *v)),
        );
    }

    #[test]
    fn footprint_accessors_report_plausible_sizes() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("192.0.2.0/24"), 1u32);
        let flat = FlatTrie::from_trie(&trie);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat.node_count(), 2 + 24);
        assert!(flat.approx_bytes() >= flat.node_count() * std::mem::size_of::<FlatNode>());
    }

    #[test]
    fn incremental_insert_remove_matches_rebuild() {
        let mut trie = PrefixTrie::new();
        let mut flat: FlatTrie<u32> = FlatTrie::new();
        let prefixes: Vec<Prefix> = (0..48u32)
            .map(|i| {
                let octets = [10, (i >> 4) as u8, (i << 4) as u8, 0];
                Prefix::v4(octets.into(), 24).expect("valid")
            })
            .chain([p("10.0.0.0/8"), p("0.0.0.0/0"), p("2001:db8::/32")])
            .collect();
        for (i, pr) in prefixes.iter().enumerate() {
            trie.insert(*pr, i as u32);
            assert_eq!(flat.insert(*pr, i as u32), None);
        }
        // Replacement returns the old value and keeps lookups intact.
        assert_eq!(flat.insert(prefixes[0], 999), Some(0));
        trie.insert(prefixes[0], 999);
        // Remove roughly half, including table-covered and short ones.
        for pr in prefixes.iter().step_by(2) {
            assert_eq!(flat.remove(*pr), trie.remove(*pr));
        }
        assert_eq!(flat.remove(p("10.255.0.0/24")), None);
        let rebuilt = FlatTrie::from_trie(&trie);
        assert_eq!(flat.len(), rebuilt.len());
        let inc: Vec<_> = flat.iter().map(|(pr, v)| (pr, *v)).collect();
        let reb: Vec<_> = rebuilt.iter().map(|(pr, v)| (pr, *v)).collect();
        assert_eq!(inc, reb);
        for pr in &prefixes {
            assert_eq!(flat.get(*pr), trie.get(*pr), "get({pr})");
            assert_eq!(
                flat.longest_match(*pr).map(|(m, v)| (m, *v)),
                trie.longest_match(*pr).map(|(m, v)| (m, *v)),
                "longest_match({pr})"
            );
        }
    }

    #[test]
    fn remove_prunes_chain_nodes_and_recycles_them() {
        let mut flat: FlatTrie<u32> = FlatTrie::new();
        flat.insert(p("192.0.2.0/24"), 1);
        assert_eq!(flat.node_count(), 2 + 24);
        assert_eq!(flat.remove(p("192.0.2.0/24")), Some(1));
        assert_eq!(flat.node_count(), 2, "chain pruned back to the root");
        assert!(flat.is_empty());
        // Reinsertion reuses the freed pool slots.
        flat.insert(p("198.51.100.0/24"), 2);
        assert_eq!(flat.node_count(), 2 + 24);
        assert_eq!(flat.nodes.len(), 2 + 24, "no pool growth on reuse");
    }

    #[test]
    fn stride_table_stays_patched_under_churn() {
        let mut flat: FlatTrie<u32> = FlatTrie::new();
        let mut trie = PrefixTrie::new();
        for i in 0..40u32 {
            let octets = [10, i as u8, 0, 0];
            let pr = Prefix::v4(octets.into(), 16).expect("valid");
            flat.insert(pr, i);
            trie.insert(pr, i);
        }
        assert!(!flat.v4_table.is_empty());
        // Short prefix insert patches a wide slot range.
        flat.insert(p("10.0.0.0/8"), 800);
        trie.insert(p("10.0.0.0/8"), 800);
        // Long prefix insert patches a single slot.
        flat.insert(p("10.3.7.0/24"), 2437);
        trie.insert(p("10.3.7.0/24"), 2437);
        // Removal under the table, including a pruning one.
        flat.remove(p("10.5.0.0/16"));
        trie.remove(p("10.5.0.0/16"));
        for i in 0..40u32 {
            for host in [[10, i as u8, 0, 1], [10, i as u8, 255, 255]] {
                let q = Prefix::v4(host.into(), 32).expect("valid");
                assert_eq!(
                    flat.longest_match(q).map(|(pr, v)| (pr, *v)),
                    trie.longest_match(q).map(|(pr, v)| (pr, *v)),
                    "query {q}"
                );
            }
        }
        let q = p("10.5.1.2/32");
        assert_eq!(
            flat.longest_match(q).map(|(pr, v)| (pr, *v)),
            trie.longest_match(q).map(|(pr, v)| (pr, *v)),
        );
    }
}
