//! Flattened, array-backed companion to [`PrefixTrie`].
//!
//! [`FlatTrie`] stores the same prefix → value mapping as a
//! [`PrefixTrie`], but in two contiguous arrays — a node pool linked by
//! `u32` indices instead of `[Option<Box<Node>>; 2]` pointers, and a
//! value table ordered exactly like [`PrefixTrie::iter`]. Longest-prefix
//! match becomes a cache-friendly walk over a dense array, and for IPv4
//! lookups a precomputed stride-16 root table skips the first sixteen
//! branches in one indexed load.
//!
//! The structure is immutable: it is built from a [`PrefixTrie`]
//! snapshot with [`FlatTrie::from_trie`] and rebuilt wholesale whenever
//! the source trie changes. That trade is deliberate — the ARTEMIS
//! detector mutates its routing table only when a prefix is onboarded
//! or offboarded, while every incoming feed event performs a lookup, so
//! the read path gets the flat layout and the rare write path pays the
//! rebuild.
//!
//! Lookup results are bit-for-bit identical to the boxed trie:
//! [`FlatTrie::longest_match`], [`FlatTrie::get`] and
//! [`FlatTrie::iter`] agree with their [`PrefixTrie`] counterparts on
//! every input (property-locked in `tests/flat_properties.rs`).

use crate::prefix::{Afi, Prefix};
use crate::trie::PrefixTrie;

/// Sentinel for "no node" / "no value" links in the flat arrays.
const NONE: u32 = u32::MAX;
/// Index of the IPv4 root node in the node pool.
const V4_ROOT: u32 = 0;
/// Index of the IPv6 root node in the node pool.
const V6_ROOT: u32 = 1;
/// Number of leading IPv4 bits resolved by the stride table.
const TABLE_BITS: u8 = 16;
/// Minimum number of IPv4 entries before the 65536-slot stride table
/// is materialized. Below this the plain walk is already cheap and the
/// 512 KiB table would dominate the structure's footprint.
const TABLE_MIN_V4: usize = 32;

/// One node of the flattened trie: two child links and an optional
/// index into the value table.
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    children: [u32; 2],
    value: u32,
}

impl FlatNode {
    const EMPTY: FlatNode = FlatNode {
        children: [NONE, NONE],
        value: NONE,
    };
}

/// Precomputed state after consuming the first [`TABLE_BITS`] bits of
/// an IPv4 lookup: the node reached (or [`NONE`]) and the best value
/// index seen on the way down.
#[derive(Debug, Clone, Copy)]
struct RootSlot {
    node: u32,
    best: u32,
}

/// A level-compressed, array-backed snapshot of a [`PrefixTrie`].
///
/// See the [module docs](self) for the design rationale. `FlatTrie` is
/// cheap to share (`Arc<FlatTrie<T>>`) and cheap to query; it cannot be
/// mutated in place — rebuild it from the source trie instead.
#[derive(Debug, Clone)]
pub struct FlatTrie<T> {
    nodes: Vec<FlatNode>,
    /// `(prefix, value)` pairs in [`PrefixTrie::iter`] order (IPv4
    /// before IPv6, address order within each family).
    values: Vec<(Prefix, T)>,
    /// Stride-16 IPv4 root table (empty when below [`TABLE_MIN_V4`]).
    v4_table: Vec<RootSlot>,
}

impl<T: Clone> FlatTrie<T> {
    /// Build a flat snapshot of `trie`. Lookups on the result are
    /// identical to lookups on `trie` at the time of the call.
    pub fn from_trie(trie: &PrefixTrie<T>) -> Self {
        let mut flat = FlatTrie {
            nodes: vec![FlatNode::EMPTY, FlatNode::EMPTY],
            values: Vec::with_capacity(trie.len()),
            v4_table: Vec::new(),
        };
        let mut v4_values = 0usize;
        for (prefix, value) in trie.iter() {
            if prefix.afi() == Afi::Ipv4 {
                v4_values += 1;
            }
            flat.insert(prefix, value.clone());
        }
        if v4_values >= TABLE_MIN_V4 {
            flat.build_v4_table();
        }
        flat
    }

    fn insert(&mut self, prefix: Prefix, value: T) {
        let mut cur = match prefix.afi() {
            Afi::Ipv4 => V4_ROOT,
            Afi::Ipv6 => V6_ROOT,
        };
        for i in 0..prefix.len() {
            let b = usize::from(prefix.bit(i));
            let next = self.nodes[cur as usize].children[b];
            cur = if next == NONE {
                let idx = u32::try_from(self.nodes.len()).expect("node pool fits in u32");
                self.nodes.push(FlatNode::EMPTY);
                self.nodes[cur as usize].children[b] = idx;
                idx
            } else {
                next
            };
        }
        let vidx = u32::try_from(self.values.len()).expect("value table fits in u32");
        self.nodes[cur as usize].value = vidx;
        self.values.push((prefix, value));
    }

    fn build_v4_table(&mut self) {
        let slots = 1usize << TABLE_BITS;
        let mut table = Vec::with_capacity(slots);
        for head in 0..slots {
            let mut cur = V4_ROOT;
            let mut best = self.nodes[cur as usize].value;
            let mut reached = Some(cur);
            for i in 0..TABLE_BITS {
                let b = (head >> (TABLE_BITS - 1 - i)) & 1;
                let next = self.nodes[cur as usize].children[b];
                if next == NONE {
                    reached = None;
                    break;
                }
                cur = next;
                if self.nodes[cur as usize].value != NONE {
                    best = self.nodes[cur as usize].value;
                }
            }
            table.push(RootSlot {
                node: reached.map_or(NONE, |_| cur),
                best,
            });
        }
        self.v4_table = table;
    }
}

impl<T> FlatTrie<T> {
    /// An empty flat trie (no prefixes, lookups all miss).
    pub fn new() -> Self {
        FlatTrie {
            nodes: vec![FlatNode::EMPTY, FlatNode::EMPTY],
            values: Vec::new(),
            v4_table: Vec::new(),
        }
    }

    /// Longest stored prefix covering `prefix`, with its value.
    /// Agrees exactly with [`PrefixTrie::longest_match`].
    pub fn longest_match(&self, prefix: Prefix) -> Option<(Prefix, &T)> {
        let (mut cur, mut best, start) = match prefix.afi() {
            Afi::Ipv4 if !self.v4_table.is_empty() && prefix.len() >= TABLE_BITS => {
                let head = (prefix.bits() >> (128 - u32::from(TABLE_BITS))) as usize;
                let slot = self.v4_table[head];
                if slot.node == NONE {
                    return self.value_at(slot.best);
                }
                (slot.node, slot.best, TABLE_BITS)
            }
            Afi::Ipv4 => (V4_ROOT, self.nodes[V4_ROOT as usize].value, 0),
            Afi::Ipv6 => (V6_ROOT, self.nodes[V6_ROOT as usize].value, 0),
        };
        for i in start..prefix.len() {
            let b = usize::from(prefix.bit(i));
            let next = self.nodes[cur as usize].children[b];
            if next == NONE {
                break;
            }
            cur = next;
            let v = self.nodes[cur as usize].value;
            if v != NONE {
                best = v;
            }
        }
        self.value_at(best)
    }

    /// Value stored for exactly `prefix`, if any. Agrees with
    /// [`PrefixTrie::get`].
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut cur = match prefix.afi() {
            Afi::Ipv4 => V4_ROOT,
            Afi::Ipv6 => V6_ROOT,
        };
        for i in 0..prefix.len() {
            let next = self.nodes[cur as usize].children[usize::from(prefix.bit(i))];
            if next == NONE {
                return None;
            }
            cur = next;
        }
        self.value_at(self.nodes[cur as usize].value)
            .map(|(_, v)| v)
    }

    fn value_at(&self, idx: u32) -> Option<(Prefix, &T)> {
        if idx == NONE {
            None
        } else {
            let (p, v) = &self.values[idx as usize];
            Some((*p, v))
        }
    }

    /// All `(prefix, value)` pairs in [`PrefixTrie::iter`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        self.values.iter().map(|(p, v)| (*p, v))
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of nodes in the flat pool (including the two roots).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint in bytes: node pool, value table and
    /// the IPv4 stride table. Per-value payload is counted by
    /// `size_of::<T>()`; heap owned by `T` itself is not followed.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FlatNode>()
            + self.values.capacity() * std::mem::size_of::<(Prefix, T)>()
            + self.v4_table.capacity() * std::mem::size_of::<RootSlot>()
    }
}

impl<T: Clone> Default for FlatTrie<T> {
    fn default() -> Self {
        FlatTrie::new()
    }
}

impl<T: Clone> From<&PrefixTrie<T>> for FlatTrie<T> {
    fn from(trie: &PrefixTrie<T>) -> Self {
        FlatTrie::from_trie(trie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn empty_trie_misses_everything() {
        let flat: FlatTrie<u32> = FlatTrie::new();
        assert!(flat.longest_match(p("10.0.0.0/24")).is_none());
        assert!(flat.get(p("::/0")).is_none());
        assert_eq!(flat.len(), 0);
        assert!(flat.is_empty());
        assert_eq!(flat.node_count(), 2);
    }

    #[test]
    fn matches_boxed_trie_on_nested_prefixes() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("10.0.0.0/8"), 8u32);
        trie.insert(p("10.0.0.0/24"), 24);
        trie.insert(p("10.0.1.0/24"), 124);
        trie.insert(p("0.0.0.0/0"), 0);
        trie.insert(p("2001:db8::/32"), 632);
        let flat = FlatTrie::from_trie(&trie);
        for q in [
            "10.0.0.0/25",
            "10.0.0.0/24",
            "10.0.1.7/32",
            "10.9.0.0/16",
            "11.0.0.0/8",
            "0.0.0.0/0",
            "2001:db8:1::/48",
            "2001:db9::/32",
        ] {
            let q = p(q);
            assert_eq!(
                flat.longest_match(q).map(|(pr, v)| (pr, *v)),
                trie.longest_match(q).map(|(pr, v)| (pr, *v)),
                "longest_match({q})"
            );
            assert_eq!(flat.get(q), trie.get(q), "get({q})");
        }
        let flat_pairs: Vec<_> = flat.iter().map(|(pr, v)| (pr, *v)).collect();
        let boxed_pairs: Vec<_> = trie.iter().map(|(pr, v)| (pr, *v)).collect();
        assert_eq!(flat_pairs, boxed_pairs);
    }

    #[test]
    fn stride_table_kicks_in_above_threshold_and_stays_identical() {
        let mut trie = PrefixTrie::new();
        for i in 0..64u32 {
            let octets = [10, (i >> 8) as u8, i as u8, 0];
            let pr = Prefix::v4(octets.into(), 24).expect("valid");
            trie.insert(pr, i);
        }
        trie.insert(p("10.0.0.0/12"), 9000);
        let flat = FlatTrie::from_trie(&trie);
        assert!(!flat.v4_table.is_empty(), "table built above threshold");
        for i in 0..128u32 {
            let octets = [10, (i >> 8) as u8, i as u8, 1];
            let q = Prefix::v4(octets.into(), 32).expect("valid");
            assert_eq!(
                flat.longest_match(q).map(|(pr, v)| (pr, *v)),
                trie.longest_match(q).map(|(pr, v)| (pr, *v)),
                "query {q}"
            );
        }
        // Short queries bypass the table but still agree.
        let q = p("10.128.0.0/9");
        assert_eq!(
            flat.longest_match(q).map(|(pr, v)| (pr, *v)),
            trie.longest_match(q).map(|(pr, v)| (pr, *v)),
        );
    }

    #[test]
    fn footprint_accessors_report_plausible_sizes() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("192.0.2.0/24"), 1u32);
        let flat = FlatTrie::from_trie(&trie);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat.node_count(), 2 + 24);
        assert!(flat.approx_bytes() >= flat.node_count() * std::mem::size_of::<FlatNode>());
    }
}
