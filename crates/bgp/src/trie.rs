//! Binary radix trie keyed by [`Prefix`] with longest-prefix-match,
//! covering- and covered-prefix queries.
//!
//! Both the simulated routers (Loc-RIB indexing) and the ARTEMIS
//! detector (matching observed announcements against the operator's
//! owned prefixes, including *more-specific* announcements — the
//! sub-prefix hijack case) are built on this structure.

use crate::prefix::{Afi, Prefix};

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<T> Node<T> {
    fn is_empty_leaf(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A map from [`Prefix`] to `T` supporting the prefix-algebra queries
/// BGP needs. IPv4 and IPv6 occupy disjoint sub-tries.
///
/// Complexity: all point operations are `O(len)` (≤ 32 / 128 bit steps);
/// subtree queries are output-sensitive.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    v4: Node<T>,
    v6: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            v4: Node::default(),
            v6: Node::default(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn root(&self, afi: Afi) -> &Node<T> {
        match afi {
            Afi::Ipv4 => &self.v4,
            Afi::Ipv6 => &self.v6,
        }
    }

    fn root_mut(&mut self, afi: Afi) -> &mut Node<T> {
        match afi {
            Afi::Ipv4 => &mut self.v4,
            Afi::Ipv6 => &mut self.v6,
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = self.root_mut(prefix.afi());
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = self.root(prefix.afi());
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let mut node = self.root_mut(prefix.afi());
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// True if `prefix` is stored exactly.
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Remove an exact prefix, returning its value. Prunes empty
    /// branches so memory does not grow monotonically.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        fn rec<T>(node: &mut Node<T>, prefix: Prefix, depth: u8) -> Option<T> {
            if depth == prefix.len() {
                return node.value.take();
            }
            let bit = prefix.bit(depth) as usize;
            let child = node.children[bit].as_deref_mut()?;
            let out = rec(child, prefix, depth + 1)?;
            if child.is_empty_leaf() {
                node.children[bit] = None;
            }
            Some(out)
        }
        let root = self.root_mut(prefix.afi());
        let out = rec(root, prefix, 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Longest-prefix match for an exact prefix key: the most-specific
    /// stored prefix that covers `prefix` (possibly `prefix` itself).
    pub fn longest_match(&self, prefix: Prefix) -> Option<(Prefix, &T)> {
        let mut node = self.root(prefix.afi());
        let mut best: Option<(Prefix, &T)> = None;
        if let Some(v) = node.value.as_ref() {
            let p = Prefix::from_bits(prefix.afi(), prefix.bits(), 0).expect("valid /0");
            best = Some((p, v));
        }
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        let p = Prefix::from_bits(prefix.afi(), prefix.bits(), i + 1)
                            .expect("depth <= prefix.len() <= max_len");
                        best = Some((p, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Longest-prefix match for a single address.
    pub fn longest_match_addr(&self, addr: std::net::IpAddr) -> Option<(Prefix, &T)> {
        let host = match addr {
            std::net::IpAddr::V4(_) => Prefix::new(addr, 32),
            std::net::IpAddr::V6(_) => Prefix::new(addr, 128),
        }
        .ok()?;
        self.longest_match(host)
    }

    /// Every stored prefix that covers `prefix` (all less-specifics on
    /// the path, including exact), ordered shortest-first.
    pub fn covering(&self, prefix: Prefix) -> Vec<(Prefix, &T)> {
        let mut out: Vec<(Prefix, &T)> = Vec::new();
        let mut node = self.root(prefix.afi());
        if let Some(v) = node.value.as_ref() {
            let p = Prefix::from_bits(prefix.afi(), prefix.bits(), 0).expect("valid /0");
            out.push((p, v));
        }
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        let p = Prefix::from_bits(prefix.afi(), prefix.bits(), i + 1)
                            .expect("valid depth");
                        out.push((p, v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Every stored prefix covered by `prefix` (all equal-or-more-
    /// specifics), in address order.
    pub fn covered(&self, prefix: Prefix) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        // Descend to the node exactly at `prefix`…
        let mut node = self.root(prefix.afi());
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => return out,
            }
        }
        // …then collect the whole subtree.
        fn dfs<'a, T>(
            node: &'a Node<T>,
            afi: Afi,
            bits: u128,
            depth: u8,
            out: &mut Vec<(Prefix, &'a T)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                let p = Prefix::from_bits(afi, bits, depth).expect("valid depth");
                out.push((p, v));
            }
            if depth >= afi.max_len() {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                dfs(child, afi, bits, depth + 1, out);
            }
            if let Some(child) = node.children[1].as_deref() {
                let set = bits | (1u128 << (127 - depth as u32));
                dfs(child, afi, set, depth + 1, out);
            }
        }
        dfs(node, prefix.afi(), prefix.bits(), prefix.len(), &mut out);
        out
    }

    /// Visit every stored prefix *relevant* to `prefix` under the
    /// containment relation — every stored prefix that covers it,
    /// equals it, or is covered by it — without allocating.
    ///
    /// This is [`PrefixTrie::covering`] ∪ [`PrefixTrie::covered`] in a
    /// single walk: the callback sees the strict less-specifics on the
    /// path shortest-first, then the subtree at `prefix` (the exact
    /// prefix first, then more-specifics in address order). Each
    /// relevant prefix is visited exactly once. Hot paths that run one
    /// containment query per feed event (the monitor-routing index)
    /// use this instead of the allocating pair of queries.
    pub fn visit_relevant<'a, F>(&'a self, prefix: Prefix, mut f: F)
    where
        F: FnMut(Prefix, &'a T),
    {
        let mut node = self.root(prefix.afi());
        // Strict less-specifics along the path (depths 0..len).
        if let Some(v) = node.value.as_ref() {
            if prefix.len() > 0 {
                let p = Prefix::from_bits(prefix.afi(), prefix.bits(), 0).expect("valid /0");
                f(p, v);
            }
        }
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if i + 1 < prefix.len() {
                        if let Some(v) = node.value.as_ref() {
                            let p = Prefix::from_bits(prefix.afi(), prefix.bits(), i + 1)
                                .expect("valid depth");
                            f(p, v);
                        }
                    }
                }
                None => return,
            }
        }
        // The subtree at `prefix`: exact match plus more-specifics.
        fn dfs<'a, T, F>(node: &'a Node<T>, afi: Afi, bits: u128, depth: u8, f: &mut F)
        where
            F: FnMut(Prefix, &'a T),
        {
            if let Some(v) = node.value.as_ref() {
                let p = Prefix::from_bits(afi, bits, depth).expect("valid depth");
                f(p, v);
            }
            if depth >= afi.max_len() {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                dfs(child, afi, bits, depth + 1, f);
            }
            if let Some(child) = node.children[1].as_deref() {
                let set = bits | (1u128 << (127 - depth as u32));
                dfs(child, afi, set, depth + 1, f);
            }
        }
        dfs(node, prefix.afi(), prefix.bits(), prefix.len(), &mut f);
    }

    /// Lazy iterator over all `(prefix, value)` pairs, v4 first then
    /// v6, in address order (the same order [`PrefixTrie::covered`]
    /// uses). Walks the trie with an explicit stack — no intermediate
    /// `Vec` is materialized.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            // Pushed v6 first so v4 pops (and therefore yields) first.
            stack: vec![(&self.v6, Afi::Ipv6, 0, 0), (&self.v4, Afi::Ipv4, 0, 0)],
        }
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.v4 = Node::default();
        self.v6 = Node::default();
        self.len = 0;
    }
}

/// Lazy depth-first traversal of a [`PrefixTrie`], yielding
/// `(prefix, &value)` in address order (see [`PrefixTrie::iter`]).
pub struct Iter<'a, T> {
    /// Pending subtrees: `(node, family, path bits, depth)`. Children
    /// are pushed right-then-left so the left (0) branch pops first,
    /// preserving address order.
    stack: Vec<(&'a Node<T>, Afi, u128, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, afi, bits, depth)) = self.stack.pop() {
            if depth < afi.max_len() {
                if let Some(child) = node.children[1].as_deref() {
                    let set = bits | (1u128 << (127 - depth as u32));
                    self.stack.push((child, afi, set, depth + 1));
                }
                if let Some(child) = node.children[0].as_deref() {
                    self.stack.push((child, afi, bits, depth + 1));
                }
            }
            if let Some(v) = node.value.as_ref() {
                let p = Prefix::from_bits(afi, bits, depth).expect("depth <= family max");
                return Some((p, v));
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> Extend<(Prefix, T)> for PrefixTrie<T> {
    fn extend<I: IntoIterator<Item = (Prefix, T)>>(&mut self, iter: I) {
        for (prefix, value) in iter {
            self.insert(prefix, value);
        }
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    /// Build a trie from `(prefix, value)` pairs. Later duplicates
    /// replace earlier ones, exactly like repeated
    /// [`PrefixTrie::insert`] calls.
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        trie.extend(iter);
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn p(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/23"), "a"), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/23")), Some(&"a"));
        assert_eq!(t.insert(p("10.0.0.0/23"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(p("10.0.0.0/23")), Some("b"));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.0.0.0/23")), None);
    }

    #[test]
    fn visit_relevant_is_covering_union_covered() {
        let mut t = PrefixTrie::new();
        for (s, v) in [
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 8),
            ("10.0.0.0/23", 23),
            ("10.0.0.0/24", 24),
            ("10.0.1.0/24", 124),
            ("10.0.0.0/25", 25),
            ("10.0.2.0/24", 224),
            ("172.16.0.0/12", 12),
        ] {
            t.insert(p(s), v);
        }
        for query in [
            "10.0.0.0/24",
            "10.0.0.0/23",
            "10.0.0.0/8",
            "10.0.0.128/25",
            "10.0.3.0/24",
            "192.0.2.0/24",
            "0.0.0.0/0",
        ] {
            let q = p(query);
            let mut expected: Vec<(Prefix, i32)> = t
                .covering(q)
                .into_iter()
                .chain(t.covered(q))
                .map(|(pfx, v)| (pfx, *v))
                .collect();
            // `covering` and `covered` both report an exact match.
            expected.dedup();
            let mut got = Vec::new();
            t.visit_relevant(q, |pfx, v| got.push((pfx, *v)));
            assert_eq!(got, expected, "query {query}");
            // Exactly once per relevant prefix, even the exact match.
            let mut sorted = got.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), got.len(), "no double visit for {query}");
        }
    }

    #[test]
    fn exact_match_does_not_cross_lengths() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/23"), 23);
        assert_eq!(t.get(p("10.0.0.0/24")), None);
        assert_eq!(t.get(p("10.0.0.0/22")), None);
        assert!(t.contains(p("10.0.0.0/23")));
    }

    #[test]
    fn default_route_storable() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::default_v4(), "default");
        assert_eq!(t.get(Prefix::default_v4()), Some(&"default"));
        assert_eq!(
            t.longest_match(p("203.0.113.0/24")).map(|(q, v)| (q, *v)),
            Some((Prefix::default_v4(), "default"))
        );
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.0.0.0/16"), 16);
        t.insert(p("10.0.0.0/24"), 24);
        let (q, v) = t.longest_match(p("10.0.0.0/26")).unwrap();
        assert_eq!((q, *v), (p("10.0.0.0/24"), 24));
        let (q, v) = t.longest_match(p("10.0.1.0/24")).unwrap();
        assert_eq!((q, *v), (p("10.0.0.0/16"), 16));
        let (q, v) = t.longest_match(p("10.9.0.0/16")).unwrap();
        assert_eq!((q, *v), (p("10.0.0.0/8"), 8));
        assert!(t.longest_match(p("11.0.0.0/8")).is_none());
    }

    #[test]
    fn longest_match_addr() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), "doc");
        let (q, v) = t.longest_match_addr("192.0.2.55".parse().unwrap()).unwrap();
        assert_eq!((q, *v), (p("192.0.2.0/24"), "doc"));
        assert!(t
            .longest_match_addr("198.51.100.1".parse().unwrap())
            .is_none());
    }

    #[test]
    fn covering_lists_less_specifics() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.0.0.0/16"), ());
        t.insert(p("10.0.0.0/24"), ());
        t.insert(p("10.1.0.0/16"), ());
        let cov: Vec<Prefix> = t
            .covering(p("10.0.0.0/24"))
            .into_iter()
            .map(|(q, _)| q)
            .collect();
        assert_eq!(
            cov,
            vec![p("10.0.0.0/8"), p("10.0.0.0/16"), p("10.0.0.0/24")]
        );
    }

    #[test]
    fn covered_lists_more_specifics_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/24"), ());
        t.insert(p("10.0.1.0/24"), ());
        t.insert(p("10.0.0.0/23"), ());
        t.insert(p("10.0.2.0/24"), ());
        t.insert(p("10.1.0.0/16"), ());
        let cov: Vec<Prefix> = t
            .covered(p("10.0.0.0/23"))
            .into_iter()
            .map(|(q, _)| q)
            .collect();
        assert_eq!(
            cov,
            vec![p("10.0.0.0/23"), p("10.0.0.0/24"), p("10.0.1.0/24")]
        );
    }

    #[test]
    fn covered_on_absent_branch_is_empty() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/24"), ());
        assert!(t.covered(p("11.0.0.0/8")).is_empty());
    }

    #[test]
    fn families_are_disjoint() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "v4");
        t.insert(p("a00::/8"), "v6");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&"v4"));
        assert_eq!(t.get(p("a00::/8")), Some(&"v6"));
        assert_eq!(t.covering(p("10.0.0.0/24")).len(), 1);
    }

    #[test]
    fn iter_returns_everything_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), 1);
        t.insert(p("10.0.0.0/8"), 2);
        t.insert(p("2001:db8::/32"), 3);
        let all: Vec<Prefix> = t.iter().map(|(q, _)| q).collect();
        assert_eq!(
            all,
            vec![p("10.0.0.0/8"), p("192.0.2.0/24"), p("2001:db8::/32")]
        );
    }

    #[test]
    fn remove_prunes_branches() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/24"), ());
        t.remove(p("10.0.0.0/24"));
        // After pruning, longest_match walks nothing.
        assert!(t.longest_match(p("10.0.0.0/32")).is_none());
        assert!(t.v4.is_empty_leaf());
    }

    #[test]
    fn remove_keeps_other_branch() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/24"), 1);
        t.insert(p("10.0.1.0/24"), 2);
        t.remove(p("10.0.0.0/24"));
        assert_eq!(t.get(p("10.0.1.0/24")), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_mutates() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        *t.get_mut(p("10.0.0.0/8")).unwrap() = 42;
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&42));
    }

    #[test]
    fn clear_empties() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("2001:db8::/32"), ());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().next(), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: PrefixTrie<i32> = [(p("10.0.0.0/8"), 1), (p("10.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 1, "later duplicates replace earlier ones");
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        t.extend([(p("192.0.2.0/24"), 3)]);
        assert_eq!(t.len(), 2);
        // `&trie` is iterable directly.
        let sum: i32 = (&t).into_iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, 5);
    }

    #[test]
    fn iter_is_lazy_and_ordered_within_subtrees() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/23"), 0);
        t.insert(p("10.0.1.0/24"), 1);
        t.insert(p("10.0.0.0/24"), 2);
        let mut it = t.iter();
        // Less-specific parent first, then children in address order.
        assert_eq!(it.next().map(|(q, _)| q), Some(p("10.0.0.0/23")));
        assert_eq!(it.next().map(|(q, _)| q), Some(p("10.0.0.0/24")));
        assert_eq!(it.next().map(|(q, _)| q), Some(p("10.0.1.0/24")));
        assert_eq!(it.next(), None);
    }
}
