//! # artemis-bgp — BGP core types and wire formats
//!
//! Foundation crate of the ARTEMIS reproduction. It provides everything
//! the rest of the workspace needs to talk *about* (and *in*) BGP:
//!
//! * [`Asn`] — 32-bit autonomous system numbers (RFC 6793) with the
//!   classification helpers (`is_private`, `is_reserved`, …) the detector
//!   uses to flag bogus origins.
//! * [`Prefix`] — IPv4/IPv6 CIDR prefixes with containment tests and the
//!   *de-aggregation* operations at the heart of ARTEMIS mitigation
//!   ([`Prefix::split`], [`Prefix::deaggregate`]).
//! * [`AsPath`] — AS_PATH with SEQUENCE/SET segments, origin extraction,
//!   prepending and loop detection.
//! * [`attrs`] — the BGP path attributes used by the decision process.
//! * [`BgpMessage`] / [`wire`] — the RFC 4271 wire codec (OPEN / UPDATE /
//!   NOTIFICATION / KEEPALIVE) including RFC 6793 four-octet AS support
//!   and RFC 4760 multiprotocol NLRI for IPv6.
//! * [`PrefixTrie`] — a binary radix (Patricia) trie keyed by prefix with
//!   longest-prefix-match, exact-match, covering- and covered-prefix
//!   queries. This is the data structure both the simulated routers and
//!   the ARTEMIS detector index routes with.
//! * [`FlatTrie`] — an immutable, array-backed snapshot of a
//!   [`PrefixTrie`] (contiguous nodes linked by `u32` indices plus a
//!   stride-16 IPv4 root table) for cache-friendly longest-prefix match
//!   on the detector's hot path.
//! * [`Route`] / [`RouteUpdate`] — announced paths and announce/withdraw
//!   events exchanged between the simulator, the feeds and the detector.
//!
//! The crate is deliberately free of any simulation or I/O concerns so it
//! can be reused verbatim by a real deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspath;
pub mod attrs;
pub mod error;
pub mod flat;
pub mod message;
pub mod prefix;
pub mod route;
pub mod trie;
pub mod wire;

mod asn;

pub use asn::Asn;
pub use aspath::{AsPath, Segment};
pub use attrs::{Community, Origin, PathAttributes};
pub use error::BgpError;
pub use flat::FlatTrie;
pub use message::{
    BgpMessage, NotificationMessage, OpenMessage, UpdateMessage, KEEPALIVE_TYPE, NOTIFICATION_TYPE,
    OPEN_TYPE, UPDATE_TYPE,
};
pub use prefix::{Afi, Prefix, PrefixParseError};
pub use route::{Route, RouteSource, RouteUpdate};
pub use trie::PrefixTrie;
pub use wire::Codec;
