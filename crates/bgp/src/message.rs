//! BGP message types (RFC 4271 §4).

use crate::{PathAttributes, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Wire type code for OPEN.
pub const OPEN_TYPE: u8 = 1;
/// Wire type code for UPDATE.
pub const UPDATE_TYPE: u8 = 2;
/// Wire type code for NOTIFICATION.
pub const NOTIFICATION_TYPE: u8 = 3;
/// Wire type code for KEEPALIVE.
pub const KEEPALIVE_TYPE: u8 = 4;

/// An OPEN message (RFC 4271 §4.2) with the capabilities the workspace
/// cares about (four-octet AS, RFC 6793).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenMessage {
    /// BGP version; always 4.
    pub version: u8,
    /// The sender's ASN. Encoded as AS_TRANS in the two-octet field when
    /// it does not fit; the true value travels in the capability.
    pub asn: crate::Asn,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// BGP identifier (router ID).
    pub bgp_id: Ipv4Addr,
    /// Whether the four-octet-AS capability (code 65) is advertised.
    pub four_octet_capable: bool,
}

/// An UPDATE message (RFC 4271 §4.3).
///
/// IPv4 reachability uses the classic withdrawn/NLRI fields; IPv6 routes
/// ride in MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760). This struct is
/// family-agnostic — the [`crate::wire::Codec`] splits/merges families
/// on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateMessage {
    /// Prefixes withdrawn from service.
    pub withdrawn: Vec<Prefix>,
    /// Attributes for the announced NLRI (`None` on pure withdrawals).
    pub attrs: Option<PathAttributes>,
    /// Announced prefixes sharing `attrs`.
    pub nlri: Vec<Prefix>,
}

impl UpdateMessage {
    /// A pure-withdrawal UPDATE.
    pub fn withdraw(prefixes: Vec<Prefix>) -> Self {
        UpdateMessage {
            withdrawn: prefixes,
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// An announcement UPDATE.
    pub fn announce(attrs: PathAttributes, nlri: Vec<Prefix>) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            nlri,
        }
    }

    /// True when the message neither announces nor withdraws anything.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }
}

/// A NOTIFICATION message (RFC 4271 §4.5); closes the session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotificationMessage {
    /// Error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl NotificationMessage {
    /// Cease / administrative shutdown (RFC 4486).
    pub fn cease_admin_shutdown() -> Self {
        NotificationMessage {
            code: 6,
            subcode: 2,
            data: Vec::new(),
        }
    }
}

impl fmt::Display for NotificationMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NOTIFICATION code={} subcode={}",
            self.code, self.subcode
        )
    }
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpMessage {
    /// Session establishment.
    Open(OpenMessage),
    /// Reachability change.
    Update(UpdateMessage),
    /// Fatal error / teardown.
    Notification(NotificationMessage),
    /// Liveness probe.
    Keepalive,
}

impl BgpMessage {
    /// The wire type code of this message.
    pub fn type_code(&self) -> u8 {
        match self {
            BgpMessage::Open(_) => OPEN_TYPE,
            BgpMessage::Update(_) => UPDATE_TYPE,
            BgpMessage::Notification(_) => NOTIFICATION_TYPE,
            BgpMessage::Keepalive => KEEPALIVE_TYPE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asn;
    use std::str::FromStr;

    #[test]
    fn type_codes() {
        assert_eq!(BgpMessage::Keepalive.type_code(), 4);
        let open = BgpMessage::Open(OpenMessage {
            version: 4,
            asn: Asn(65001),
            hold_time: 90,
            bgp_id: Ipv4Addr::new(10, 0, 0, 1),
            four_octet_capable: true,
        });
        assert_eq!(open.type_code(), 1);
    }

    #[test]
    fn update_constructors() {
        let w = UpdateMessage::withdraw(vec![Prefix::from_str("10.0.0.0/24").unwrap()]);
        assert!(w.attrs.is_none());
        assert!(!w.is_empty());
        let empty = UpdateMessage::withdraw(vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn notification_helpers() {
        let n = NotificationMessage::cease_admin_shutdown();
        assert_eq!((n.code, n.subcode), (6, 2));
        assert!(n.to_string().contains("code=6"));
    }
}
