//! AS_PATH attribute: segments, origin extraction, prepending, loops.

use crate::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One AS_PATH segment (RFC 4271 §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// AS_SEQUENCE: ordered list of traversed ASes.
    Sequence(Vec<Asn>),
    /// AS_SET: unordered set produced by aggregation.
    Set(Vec<Asn>),
}

impl Segment {
    /// Path-length contribution per the decision process: a sequence
    /// counts every ASN, a set counts as one hop (RFC 4271 §9.1.2.2 a).
    pub fn decision_len(&self) -> usize {
        match self {
            Segment::Sequence(asns) => asns.len(),
            Segment::Set(asns) => usize::from(!asns.is_empty()),
        }
    }

    /// All ASNs mentioned in the segment.
    pub fn asns(&self) -> &[Asn] {
        match self {
            Segment::Sequence(a) | Segment::Set(a) => a,
        }
    }
}

/// A full AS_PATH: a list of segments, leftmost = most recent hop.
///
/// The empty path is valid (an iBGP-originated route before any eBGP
/// hop). The *origin* of the path — the AS that first announced the
/// route, and the value ARTEMIS validates against the operator's
/// configuration — is the rightmost ASN of the final `Sequence` segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<Segment>,
}

impl AsPath {
    /// The empty path.
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// Build a pure-sequence path from ASNs ordered neighbor→origin.
    pub fn from_sequence<I, A>(asns: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Asn>,
    {
        let seq: Vec<Asn> = asns.into_iter().map(Into::into).collect();
        if seq.is_empty() {
            AsPath::empty()
        } else {
            AsPath {
                segments: vec![Segment::Sequence(seq)],
            }
        }
    }

    /// Build from explicit segments. The path is canonicalized: empty
    /// segments are dropped and adjacent `Sequence` segments are merged
    /// (the wire format chunks long sequences at 255 ASNs, so adjacent
    /// sequences carry no information).
    pub fn from_segments<I: IntoIterator<Item = Segment>>(segments: I) -> Self {
        let mut merged: Vec<Segment> = Vec::new();
        for seg in segments.into_iter().filter(|s| !s.asns().is_empty()) {
            match (merged.last_mut(), seg) {
                (Some(Segment::Sequence(tail)), Segment::Sequence(more)) => tail.extend(more),
                (_, seg) => merged.push(seg),
            }
        }
        AsPath { segments: merged }
    }

    /// Segments, leftmost (most recent) first.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// True when no segment is present.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Path length as used by the BGP decision process.
    pub fn decision_len(&self) -> usize {
        self.segments.iter().map(Segment::decision_len).sum()
    }

    /// Total number of ASNs mentioned (prepends counted).
    pub fn asn_count(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// The origin AS: rightmost ASN of the last segment, provided that
    /// segment is a `Sequence`. Aggregated routes ending in an AS_SET
    /// have no well-defined origin and yield `None` — ARTEMIS treats
    /// those as suspicious rather than matching them against the config.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            Segment::Sequence(asns) => asns.last().copied(),
            Segment::Set(_) => None,
        }
    }

    /// The neighbor AS: leftmost ASN of the first segment if it is a
    /// `Sequence`. This is the AS the observing router heard the route
    /// from, used for Type-1 (fake first-hop) detection.
    pub fn neighbor(&self) -> Option<Asn> {
        match self.segments.first()? {
            Segment::Sequence(asns) => asns.first().copied(),
            Segment::Set(_) => None,
        }
    }

    /// The AS adjacent to the origin (second-to-last ASN), if any —
    /// used for Type-1 hijack classification at the origin end.
    pub fn origin_neighbor(&self) -> Option<Asn> {
        let mut all: Vec<Asn> = Vec::new();
        for seg in &self.segments {
            match seg {
                Segment::Sequence(a) => all.extend_from_slice(a),
                Segment::Set(_) => return None,
            }
        }
        if all.len() >= 2 {
            Some(all[all.len() - 2])
        } else {
            None
        }
    }

    /// Prepend `asn` once at the front (what a router does on eBGP
    /// export). Merges into an existing front sequence.
    pub fn prepend(&self, asn: Asn) -> AsPath {
        self.prepend_n(asn, 1)
    }

    /// Prepend `asn` `n` times (traffic-engineering style prepending).
    pub fn prepend_n(&self, asn: Asn, n: usize) -> AsPath {
        if n == 0 {
            return self.clone();
        }
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(Segment::Sequence(seq)) => {
                let mut new_seq = vec![asn; n];
                new_seq.append(seq);
                *seq = new_seq;
            }
            _ => segments.insert(0, Segment::Sequence(vec![asn; n])),
        }
        AsPath { segments }
    }

    /// True if `asn` appears anywhere in the path — the RFC 4271 §9.1.2
    /// loop-prevention test a router applies before accepting a route.
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Whether any ASN appears in two different positions of the
    /// *sequence* portion (a routing loop indicator; prepending does not
    /// count because repeats are adjacent).
    pub fn has_nonadjacent_repeat(&self) -> bool {
        let mut flat: Vec<Asn> = Vec::new();
        for seg in &self.segments {
            if let Segment::Sequence(a) = seg {
                flat.extend_from_slice(a);
            }
        }
        // Collapse adjacent repeats (prepending), then look for dups.
        flat.dedup();
        let mut seen = std::collections::HashSet::new();
        flat.iter().any(|a| !seen.insert(*a))
    }

    /// Iterate over every ASN in order, sequences flattened, sets in
    /// their stored order.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }
}

impl fmt::Display for AsPath {
    /// Conventional `show ip bgp` rendering: `174 3356 {1299,2914}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                Segment::Sequence(asns) => {
                    let parts: Vec<String> = asns.iter().map(|a| a.value().to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                Segment::Set(asns) => {
                    let parts: Vec<String> = asns.iter().map(|a| a.value().to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().copied())
    }

    #[test]
    fn origin_is_rightmost() {
        assert_eq!(seq(&[174, 3356, 65001]).origin(), Some(Asn(65001)));
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn origin_of_trailing_set_is_none() {
        let path = AsPath::from_segments([
            Segment::Sequence(vec![Asn(174)]),
            Segment::Set(vec![Asn(1), Asn(2)]),
        ]);
        assert_eq!(path.origin(), None);
    }

    #[test]
    fn neighbor_is_leftmost() {
        assert_eq!(seq(&[174, 3356, 65001]).neighbor(), Some(Asn(174)));
        assert_eq!(AsPath::empty().neighbor(), None);
    }

    #[test]
    fn origin_neighbor_extraction() {
        assert_eq!(seq(&[174, 3356, 65001]).origin_neighbor(), Some(Asn(3356)));
        assert_eq!(seq(&[65001]).origin_neighbor(), None);
        let with_set = AsPath::from_segments([
            Segment::Sequence(vec![Asn(174)]),
            Segment::Set(vec![Asn(1)]),
        ]);
        assert_eq!(with_set.origin_neighbor(), None);
    }

    #[test]
    fn decision_len_counts_sets_as_one() {
        let path = AsPath::from_segments([
            Segment::Sequence(vec![Asn(1), Asn(2), Asn(3)]),
            Segment::Set(vec![Asn(4), Asn(5)]),
        ]);
        assert_eq!(path.decision_len(), 4);
        assert_eq!(path.asn_count(), 5);
    }

    #[test]
    fn prepend_merges_into_front_sequence() {
        let path = seq(&[3356, 65001]).prepend(Asn(174));
        assert_eq!(path, seq(&[174, 3356, 65001]));
        assert_eq!(path.decision_len(), 3);
    }

    #[test]
    fn prepend_n_repeats() {
        let path = seq(&[65001]).prepend_n(Asn(174), 3);
        assert_eq!(path, seq(&[174, 174, 174, 65001]));
        assert_eq!(path.decision_len(), 4);
    }

    #[test]
    fn prepend_onto_empty_and_set_front() {
        assert_eq!(AsPath::empty().prepend(Asn(7)), seq(&[7]));
        let set_front = AsPath::from_segments([Segment::Set(vec![Asn(1)])]);
        let prepended = set_front.prepend(Asn(7));
        assert_eq!(prepended.segments().len(), 2);
        assert_eq!(prepended.neighbor(), Some(Asn(7)));
    }

    #[test]
    fn prepend_zero_is_identity() {
        let path = seq(&[1, 2]);
        assert_eq!(path.prepend_n(Asn(9), 0), path);
    }

    #[test]
    fn loop_detection() {
        assert!(seq(&[1, 2, 3]).contains(Asn(2)));
        assert!(!seq(&[1, 2, 3]).contains(Asn(4)));
    }

    #[test]
    fn nonadjacent_repeat_detection() {
        assert!(!seq(&[1, 1, 1, 2]).has_nonadjacent_repeat()); // prepending
        assert!(seq(&[1, 2, 1]).has_nonadjacent_repeat()); // loop
        assert!(!seq(&[1, 2, 3]).has_nonadjacent_repeat());
    }

    #[test]
    fn display_formats() {
        let path = AsPath::from_segments([
            Segment::Sequence(vec![Asn(174), Asn(3356)]),
            Segment::Set(vec![Asn(1299), Asn(2914)]),
        ]);
        assert_eq!(path.to_string(), "174 3356 {1299,2914}");
        assert_eq!(AsPath::empty().to_string(), "");
    }

    #[test]
    fn from_segments_drops_empties() {
        let path = AsPath::from_segments([Segment::Sequence(vec![]), Segment::Set(vec![])]);
        assert!(path.is_empty());
    }

    #[test]
    fn iter_flattens() {
        let path = AsPath::from_segments([
            Segment::Sequence(vec![Asn(1), Asn(2)]),
            Segment::Set(vec![Asn(3)]),
        ]);
        let all: Vec<Asn> = path.iter().collect();
        assert_eq!(all, vec![Asn(1), Asn(2), Asn(3)]);
    }
}
