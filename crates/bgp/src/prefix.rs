//! CIDR prefixes and the de-aggregation operations used for mitigation.

use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Address family of a [`Prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Afi {
    /// IPv4 (AFI 1).
    Ipv4,
    /// IPv6 (AFI 2).
    Ipv6,
}

impl Afi {
    /// Maximum prefix length for this family (32 or 128).
    pub const fn max_len(self) -> u8 {
        match self {
            Afi::Ipv4 => 32,
            Afi::Ipv6 => 128,
        }
    }

    /// IANA address-family identifier as used on the wire (RFC 4760).
    pub const fn iana_code(self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }
}

/// An IP prefix in CIDR notation, IPv4 or IPv6.
///
/// Internally the network address is stored *left-aligned* in a `u128`
/// (the most-significant address bit sits at bit 127 regardless of
/// family), which gives the radix trie and all containment tests a single
/// uniform bit-string view. Host bits are always zero — the type upholds
/// this as an invariant.
///
/// The two mitigation primitives of ARTEMIS live here:
/// [`Prefix::split`] (one level of de-aggregation, e.g. a /23 into two
/// /24s) and [`Prefix::deaggregate`] (to an arbitrary target length).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    afi: Afi,
    /// Network bits, left-aligned at bit 127; host bits zero.
    bits: u128,
    len: u8,
}

/// Error produced when constructing or parsing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The prefix length exceeds the family maximum.
    LengthOutOfRange {
        /// Offending length.
        len: u8,
        /// Family maximum (32 or 128).
        max: u8,
    },
    /// Bits were set beyond the prefix length (e.g. `10.0.0.1/23`).
    HostBitsSet,
    /// The textual form could not be parsed at all.
    Malformed(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length /{len} out of range (max /{max})")
            }
            PrefixParseError::HostBitsSet => write!(f, "host bits set below the prefix length"),
            PrefixParseError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// Mask with the top `len` bits set (left-aligned in a u128).
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else if len >= 128 {
        u128::MAX
    } else {
        !(u128::MAX >> len)
    }
}

impl Prefix {
    /// Build an IPv4 prefix, silently zeroing any host bits.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixParseError> {
        if len > 32 {
            return Err(PrefixParseError::LengthOutOfRange { len, max: 32 });
        }
        let bits = (u32::from(addr) as u128) << 96;
        Ok(Prefix {
            afi: Afi::Ipv4,
            bits: bits & mask(len),
            len,
        })
    }

    /// Build an IPv6 prefix, silently zeroing any host bits.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixParseError> {
        if len > 128 {
            return Err(PrefixParseError::LengthOutOfRange { len, max: 128 });
        }
        let bits = u128::from(addr);
        Ok(Prefix {
            afi: Afi::Ipv6,
            bits: bits & mask(len),
            len,
        })
    }

    /// Build from any [`IpAddr`], zeroing host bits.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixParseError> {
        match addr {
            IpAddr::V4(a) => Self::v4(a, len),
            IpAddr::V6(a) => Self::v6(a, len),
        }
    }

    /// Build from any [`IpAddr`]; errors with
    /// [`PrefixParseError::HostBitsSet`] if bits below `len` are set.
    pub fn new_strict(addr: IpAddr, len: u8) -> Result<Self, PrefixParseError> {
        let p = Self::new(addr, len)?;
        let raw = match addr {
            IpAddr::V4(a) => (u32::from(a) as u128) << 96,
            IpAddr::V6(a) => u128::from(a),
        };
        if raw != p.bits {
            return Err(PrefixParseError::HostBitsSet);
        }
        Ok(p)
    }

    /// Construct directly from left-aligned bits (host bits are masked).
    pub fn from_bits(afi: Afi, bits: u128, len: u8) -> Result<Self, PrefixParseError> {
        if len > afi.max_len() {
            return Err(PrefixParseError::LengthOutOfRange {
                len,
                max: afi.max_len(),
            });
        }
        // Masking to `len` bits also guarantees an IPv4 prefix can never
        // carry data outside the top 32 bits (len <= 32 is checked above).
        Ok(Prefix {
            afi,
            bits: bits & mask(len),
            len,
        })
    }

    /// The default IPv4 route `0.0.0.0/0`.
    pub fn default_v4() -> Self {
        Prefix {
            afi: Afi::Ipv4,
            bits: 0,
            len: 0,
        }
    }

    /// The default IPv6 route `::/0`.
    pub fn default_v6() -> Self {
        Prefix {
            afi: Afi::Ipv6,
            bits: 0,
            len: 0,
        }
    }

    /// Address family.
    pub const fn afi(self) -> Afi {
        self.afi
    }

    /// Prefix length.
    // `len` here is CIDR mask length, not a collection size — there is
    // no meaningful `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True for the zero-length (default) route.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Left-aligned network bits.
    pub const fn bits(self) -> u128 {
        self.bits
    }

    /// Network address as an [`IpAddr`].
    pub fn addr(self) -> IpAddr {
        match self.afi {
            Afi::Ipv4 => IpAddr::V4(Ipv4Addr::from((self.bits >> 96) as u32)),
            Afi::Ipv6 => IpAddr::V6(Ipv6Addr::from(self.bits)),
        }
    }

    /// The `i`-th bit (0 = most significant). Panics if `i >= len`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < self.len, "bit index {i} out of range for /{}", self.len);
        (self.bits >> (127 - i)) & 1 == 1
    }

    /// Number of host addresses covered (saturating; 2^(max_len - len)).
    pub fn address_count(self) -> u128 {
        let host_bits = (self.afi.max_len() - self.len) as u32;
        if host_bits >= 128 {
            u128::MAX
        } else {
            1u128 << host_bits
        }
    }

    /// True if `self` covers `other` (same family, `self` is equal or
    /// less specific, and the network bits agree on `self.len` bits).
    pub fn contains(self, other: Prefix) -> bool {
        self.afi == other.afi
            && self.len <= other.len
            && (self.bits ^ other.bits) & mask(self.len) == 0
    }

    /// True if `self` covers the single address `addr`.
    pub fn contains_addr(self, addr: IpAddr) -> bool {
        match Prefix::new(
            addr,
            match addr {
                IpAddr::V4(_) => 32,
                IpAddr::V6(_) => 128,
            },
        ) {
            Ok(host) => self.contains(host),
            Err(_) => false,
        }
    }

    /// True if the two prefixes share any address space.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Strictly more specific than `other` (contained and longer).
    pub fn is_subnet_of(self, other: Prefix) -> bool {
        other.contains(self) && self.len > other.len
    }

    /// The immediate parent (one bit shorter), or `None` for /0.
    pub fn supernet(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            afi: self.afi,
            bits: self.bits & mask(len),
            len,
        })
    }

    /// The other half of this prefix's parent (flip the last network
    /// bit), or `None` for /0.
    pub fn sibling(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let flip = 1u128 << (128 - self.len);
        Some(Prefix {
            afi: self.afi,
            bits: self.bits ^ flip,
            len: self.len,
        })
    }

    /// Split into the two equal halves one bit longer — the elementary
    /// de-aggregation step of ARTEMIS (a hijacked /23 becomes two /24s).
    /// Returns `None` when already at the family maximum length.
    pub fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len >= self.afi.max_len() {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            afi: self.afi,
            bits: self.bits,
            len,
        };
        let hi = Prefix {
            afi: self.afi,
            bits: self.bits | (1u128 << (128 - len as u32)),
            len,
        };
        Some((lo, hi))
    }

    /// De-aggregate into all sub-prefixes of exactly `target_len`.
    ///
    /// Returns an empty vec when `target_len < self.len` or exceeds the
    /// family maximum; returns `[self]` when `target_len == self.len`.
    /// The result is ordered by address and covers exactly the same
    /// address space as `self`.
    pub fn deaggregate(self, target_len: u8) -> Vec<Prefix> {
        if target_len < self.len || target_len > self.afi.max_len() {
            return Vec::new();
        }
        let extra = (target_len - self.len) as u32;
        // Cap the fan-out so a caller can't accidentally materialize 2^64
        // prefixes; mitigation never needs more than a few thousand.
        if extra > 16 {
            return Vec::new();
        }
        let count = 1u128 << extra;
        let step = 1u128 << (128 - target_len as u32);
        (0..count)
            .map(|i| Prefix {
                afi: self.afi,
                bits: self.bits | (i * step),
                len: target_len,
            })
            .collect()
    }

    /// All covering prefixes from `self.len` up to and including /`to_len`
    /// (less-specifics), ordered from most to least specific.
    pub fn supernets_until(self, to_len: u8) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = self;
        while cur.len > to_len {
            match cur.supernet() {
                Some(p) => {
                    out.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        out
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.afi
            .cmp(&other.afi)
            .then(self.bits.cmp(&other.bits))
            .then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    /// Parse strict CIDR text such as `10.0.0.0/23` or `2001:db8::/32`.
    /// Host bits below the mask are rejected ([`PrefixParseError::HostBitsSet`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::Malformed(s.to_string()))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        Prefix::new_strict(addr, len)
    }
}

impl Prefix {
    /// Parse like [`FromStr`] but canonicalize (mask) host bits instead of
    /// failing — useful when ingesting sloppy external feeds.
    pub fn from_str_lossy(s: &str) -> Result<Self, PrefixParseError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::Malformed(s.to_string()))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

impl Serialize for Prefix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for Prefix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Prefix::from_str(&s).map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip_v4() {
        let pfx = p("10.0.0.0/23");
        assert_eq!(pfx.to_string(), "10.0.0.0/23");
        assert_eq!(pfx.len(), 23);
        assert_eq!(pfx.afi(), Afi::Ipv4);
    }

    #[test]
    fn parse_and_display_roundtrip_v6() {
        let pfx = p("2001:db8::/32");
        assert_eq!(pfx.to_string(), "2001:db8::/32");
        assert_eq!(pfx.afi(), Afi::Ipv6);
    }

    #[test]
    fn strict_parse_rejects_host_bits() {
        assert_eq!(
            "10.0.0.1/23".parse::<Prefix>(),
            Err(PrefixParseError::HostBitsSet)
        );
        assert_eq!(
            Prefix::from_str_lossy("10.0.0.1/23").unwrap(),
            p("10.0.0.0/23")
        );
    }

    #[test]
    fn parse_rejects_bad_lengths() {
        assert!(matches!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(PrefixParseError::LengthOutOfRange { len: 33, max: 32 })
        ));
        assert!(matches!(
            "::/129".parse::<Prefix>(),
            Err(PrefixParseError::LengthOutOfRange { len: 129, max: 128 })
        ));
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment_basics() {
        let p23 = p("10.0.0.0/23");
        let p24a = p("10.0.0.0/24");
        let p24b = p("10.0.1.0/24");
        let other = p("10.0.2.0/24");
        assert!(p23.contains(p24a));
        assert!(p23.contains(p24b));
        assert!(!p23.contains(other));
        assert!(!p24a.contains(p23));
        assert!(p23.contains(p23));
        assert!(p24a.is_subnet_of(p23));
        assert!(!p23.is_subnet_of(p23));
    }

    #[test]
    fn containment_is_family_scoped() {
        let v4 = p("10.0.0.0/8");
        let v6 = p("a00::/8"); // same leading bits, different family
        assert!(!v4.contains(v6));
        assert!(!v6.contains(v4));
    }

    #[test]
    fn contains_addr_works() {
        let pfx = p("192.168.0.0/16");
        assert!(pfx.contains_addr("192.168.3.4".parse().unwrap()));
        assert!(!pfx.contains_addr("192.169.0.0".parse().unwrap()));
        assert!(!pfx.contains_addr("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn default_routes() {
        assert!(Prefix::default_v4().is_default());
        assert!(Prefix::default_v4().contains(p("1.2.3.0/24")));
        assert!(Prefix::default_v6().contains(p("2001:db8::/32")));
        assert!(!Prefix::default_v4().contains(p("2001:db8::/32")));
    }

    #[test]
    fn split_is_the_paper_example() {
        // The exact mitigation example from Section 3 of the paper:
        // 10.0.0.0/23 splits into 10.0.0.0/24 and 10.0.1.0/24.
        let (lo, hi) = p("10.0.0.0/23").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/24"));
        assert_eq!(hi, p("10.0.1.0/24"));
    }

    #[test]
    fn split_at_max_len_returns_none() {
        assert!(p("10.0.0.0/32").split().is_none());
        assert!(p("2001:db8::/128").split().is_none());
    }

    #[test]
    fn split_halves_partition_parent() {
        let parent = p("172.16.4.0/22");
        let (lo, hi) = parent.split().unwrap();
        assert!(parent.contains(lo) && parent.contains(hi));
        assert!(!lo.overlaps(hi));
        assert_eq!(
            lo.address_count() + hi.address_count(),
            parent.address_count()
        );
    }

    #[test]
    fn deaggregate_to_target() {
        let subs = p("10.0.0.0/22").deaggregate(24);
        assert_eq!(
            subs,
            vec![
                p("10.0.0.0/24"),
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
                p("10.0.3.0/24"),
            ]
        );
    }

    #[test]
    fn deaggregate_degenerate_cases() {
        assert_eq!(p("10.0.0.0/24").deaggregate(24), vec![p("10.0.0.0/24")]);
        assert!(p("10.0.0.0/24").deaggregate(23).is_empty());
        assert!(p("10.0.0.0/24").deaggregate(33).is_empty());
        // Fan-out cap: /8 -> /25 would be 2^17 prefixes.
        assert!(p("10.0.0.0/8").deaggregate(25).is_empty());
    }

    #[test]
    fn supernet_and_sibling() {
        let pfx = p("10.0.1.0/24");
        assert_eq!(pfx.supernet().unwrap(), p("10.0.0.0/23"));
        assert_eq!(pfx.sibling().unwrap(), p("10.0.0.0/24"));
        assert_eq!(p("10.0.0.0/24").sibling().unwrap(), p("10.0.1.0/24"));
        assert!(Prefix::default_v4().supernet().is_none());
        assert!(Prefix::default_v4().sibling().is_none());
    }

    #[test]
    fn supernets_until_walks_up() {
        let chain = p("10.0.0.0/26").supernets_until(24);
        assert_eq!(chain, vec![p("10.0.0.0/25"), p("10.0.0.0/24")]);
    }

    #[test]
    fn address_count() {
        assert_eq!(p("10.0.0.0/24").address_count(), 256);
        assert_eq!(p("10.0.0.0/31").address_count(), 2);
        assert_eq!(p("0.0.0.0/0").address_count(), 1u128 << 32);
    }

    #[test]
    fn bit_indexing() {
        let pfx = p("128.0.0.0/1");
        assert!(pfx.bit(0));
        let pfx = p("64.0.0.0/2");
        assert!(!pfx.bit(0));
        assert!(pfx.bit(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        p("10.0.0.0/8").bit(8);
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut v = vec![p("10.0.1.0/24"), p("10.0.0.0/23"), p("10.0.0.0/24")];
        v.sort();
        assert_eq!(
            v,
            vec![p("10.0.0.0/23"), p("10.0.0.0/24"), p("10.0.1.0/24")]
        );
    }

    #[test]
    fn serde_string_form() {
        let pfx = p("203.0.113.0/24");
        let json = serde_json_str(&pfx);
        assert_eq!(json, "\"203.0.113.0/24\"");
    }

    // Minimal JSON string serializer shim (serde_json is not a dependency
    // of this crate; Display-based serialization is what we assert).
    fn serde_json_str(p: &Prefix) -> String {
        format!("{:?}", p.to_string()).replace('\'', "\"")
    }

    #[test]
    fn from_bits_validates() {
        // Host bits (here bit 95, below the /32 network part) are masked.
        let masked = Prefix::from_bits(Afi::Ipv4, 1u128 << 95, 32).unwrap();
        assert_eq!(masked, p("0.0.0.0/32"));
        assert!(Prefix::from_bits(Afi::Ipv4, 0, 33).is_err());
        let ok = Prefix::from_bits(Afi::Ipv4, (10u128) << 120, 8).unwrap();
        assert_eq!(ok, p("10.0.0.0/8"));
    }
}
