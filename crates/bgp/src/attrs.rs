//! BGP path attributes consumed by the decision process (RFC 4271 §5).

use crate::{AsPath, Asn};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

/// ORIGIN attribute (RFC 4271 §5.1.1): how the route entered BGP.
/// Decision-process preference: IGP < EGP < Incomplete (lower wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Interior (network statement); wire code 0.
    Igp,
    /// Learned via (historic) EGP; wire code 1.
    Egp,
    /// Redistributed / unknown provenance; wire code 2.
    Incomplete,
}

impl Origin {
    /// Wire code (RFC 4271).
    pub const fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parse a wire code.
    pub const fn from_code(code: u8) -> Option<Origin> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "incomplete"),
        }
    }
}

/// A standard community (RFC 1997): `asn:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Community(pub u32);

impl Community {
    /// Well-known NO_EXPORT (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// Well-known NO_ADVERTISE (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// Well-known NO_EXPORT_SUBCONFED (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);
    /// GRACEFUL_SHUTDOWN (RFC 8326).
    pub const GRACEFUL_SHUTDOWN: Community = Community(0xFFFF_0000);

    /// Build from the conventional `asn:value` pair.
    pub const fn from_parts(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits (conventionally an ASN).
    pub const fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits.
    pub const fn value_part(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// True for the RFC 1997 well-known range `0xFFFFxxxx`.
    pub const fn is_well_known(self) -> bool {
        self.0 >> 16 == 0xFFFF
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

/// The set of path attributes carried with a route.
///
/// `local_pref` is only meaningful inside an AS (iBGP); the simulator
/// assigns it from the business relationship of the session the route
/// was learned over (Gao–Rexford), which is also how real operators
/// configure it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN (well-known mandatory).
    pub origin: Origin,
    /// AS_PATH (well-known mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (well-known mandatory). For simulated sessions this is a
    /// synthetic per-AS address.
    pub next_hop: IpAddr,
    /// MULTI_EXIT_DISC (optional non-transitive).
    pub med: Option<u32>,
    /// LOCAL_PREF (well-known, iBGP).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE marker.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (optional transitive): the AS and router that
    /// aggregated the route.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// Standard communities (RFC 1997).
    pub communities: Vec<Community>,
}

impl PathAttributes {
    /// Minimal attribute set for a locally originated route.
    pub fn originate(origin_as: Asn, next_hop: IpAddr) -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::from_sequence([origin_as]),
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
        }
    }

    /// Minimal attribute set with an explicit path (tests, feeds).
    pub fn with_path(as_path: AsPath, next_hop: IpAddr) -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
        }
    }

    /// The route's origin AS, if the path determines one.
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path.origin()
    }

    /// Effective LOCAL_PREF with the conventional default of 100.
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(100)
    }

    /// Effective MED with the lowest-preference default (`u32::MAX`
    /// ordering handled by the decision process; absent MED is treated
    /// as 0 per common router defaults).
    pub fn effective_med(&self) -> u32 {
        self.med.unwrap_or(0)
    }

    /// True if NO_EXPORT is attached.
    pub fn no_export(&self) -> bool {
        self.communities.contains(&Community::NO_EXPORT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn origin_display() {
        assert_eq!(Origin::Igp.to_string(), "IGP");
        assert_eq!(Origin::Incomplete.to_string(), "incomplete");
    }

    #[test]
    fn community_parts() {
        let c = Community::from_parts(65000, 120);
        assert_eq!(c.asn_part(), 65000);
        assert_eq!(c.value_part(), 120);
        assert_eq!(c.to_string(), "65000:120");
    }

    #[test]
    fn well_known_communities() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::NO_ADVERTISE.is_well_known());
        assert!(!Community::from_parts(65000, 1).is_well_known());
    }

    #[test]
    fn originate_sets_mandatory_attrs() {
        let attrs = PathAttributes::originate(Asn(65001), "10.0.0.1".parse().unwrap());
        assert_eq!(attrs.origin, Origin::Igp);
        assert_eq!(attrs.origin_as(), Some(Asn(65001)));
        assert_eq!(attrs.as_path.decision_len(), 1);
        assert!(!attrs.no_export());
    }

    #[test]
    fn effective_defaults() {
        let attrs = PathAttributes::originate(Asn(1), "10.0.0.1".parse().unwrap());
        assert_eq!(attrs.effective_local_pref(), 100);
        assert_eq!(attrs.effective_med(), 0);
    }

    #[test]
    fn no_export_detection() {
        let mut attrs = PathAttributes::originate(Asn(1), "10.0.0.1".parse().unwrap());
        attrs.communities.push(Community::NO_EXPORT);
        assert!(attrs.no_export());
    }
}
