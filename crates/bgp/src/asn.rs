//! Autonomous System Numbers (RFC 1930, RFC 6793).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit Autonomous System Number.
///
/// Two-octet ASNs (RFC 1930) embed naturally in the low 16 bits; RFC 6793
/// extended the number space to 32 bits. `Asn` always stores the full
/// 32-bit value and offers classification helpers used by the ARTEMIS
/// detector to spot announcements that can never be legitimate (private,
/// reserved or documentation ASNs appearing as origin on the public
/// Internet).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// AS_TRANS (RFC 6793): the two-octet stand-in used in OPEN messages and
/// AS_PATHs when a four-octet ASN must be represented to a two-octet peer.
pub const AS_TRANS: Asn = Asn(23456);

impl Asn {
    /// The reserved ASN 0 (RFC 7607) — must never appear in routing.
    pub const ZERO: Asn = Asn(0);

    /// Construct from a raw u32.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// Raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True if the ASN fits in two octets.
    pub const fn is_two_octet(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// True for the private-use ranges 64512–65534 (RFC 6996) and
    /// 4200000000–4294967294 (RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64_512 && self.0 <= 65_534)
            || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// True for ASNs reserved for documentation: 64496–64511 and
    /// 65536–65551 (RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64_496 && self.0 <= 64_511) || (self.0 >= 65_536 && self.0 <= 65_551)
    }

    /// True for values that must never be routed: 0 (RFC 7607),
    /// 65535 (RFC 7300) and 4294967295 (RFC 7300).
    pub const fn is_reserved(self) -> bool {
        self.0 == 0 || self.0 == 65_535 || self.0 == u32::MAX
    }

    /// True if this ASN is plausible as a public origin — i.e. none of
    /// private / documentation / reserved / AS_TRANS.
    pub const fn is_routable(self) -> bool {
        !(self.is_private() || self.is_documentation() || self.is_reserved())
            && self.0 != AS_TRANS.0
    }

    /// Render in `asdot` notation (RFC 5396), e.g. `Asn(65536)` → `1.0`.
    pub fn to_asdot(self) -> String {
        if self.is_two_octet() {
            format!("{}", self.0)
        } else {
            format!("{}.{}", self.0 >> 16, self.0 & 0xFFFF)
        }
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<u16> for Asn {
    fn from(value: u16) -> Self {
        Asn(value as u32)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> u32 {
        asn.0
    }
}

/// Error returned when parsing an [`Asn`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnParseError(String);

impl fmt::Display for AsnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {}", self.0)
    }
}

impl std::error::Error for AsnParseError {}

impl FromStr for Asn {
    type Err = AsnParseError;

    /// Accepts `64512`, `AS64512` (case-insensitive) and asdot `1.0`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .or_else(|| s.strip_prefix("aS"))
            .unwrap_or(s);
        if let Some((hi, lo)) = body.split_once('.') {
            let hi: u32 = hi.parse().map_err(|_| AsnParseError(s.to_string()))?;
            let lo: u32 = lo.parse().map_err(|_| AsnParseError(s.to_string()))?;
            if hi > u16::MAX as u32 || lo > u16::MAX as u32 {
                return Err(AsnParseError(s.to_string()));
            }
            Ok(Asn((hi << 16) | lo))
        } else {
            body.parse::<u32>()
                .map(Asn)
                .map_err(|_| AsnParseError(s.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_debug_use_as_prefix() {
        assert_eq!(Asn(65000).to_string(), "AS65000");
        assert_eq!(format!("{:?}", Asn(1)), "AS1");
    }

    #[test]
    fn two_octet_boundary() {
        assert!(Asn(65535).is_two_octet());
        assert!(!Asn(65536).is_two_octet());
    }

    #[test]
    fn private_ranges() {
        assert!(!Asn(64511).is_private());
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(4_294_967_294).is_private());
        assert!(!Asn(u32::MAX).is_private());
    }

    #[test]
    fn documentation_ranges() {
        assert!(Asn(64496).is_documentation());
        assert!(Asn(64511).is_documentation());
        assert!(Asn(65536).is_documentation());
        assert!(Asn(65551).is_documentation());
        assert!(!Asn(65552).is_documentation());
    }

    #[test]
    fn reserved_values() {
        assert!(Asn::ZERO.is_reserved());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(!Asn(1).is_reserved());
    }

    #[test]
    fn routability() {
        assert!(Asn(3333).is_routable());
        assert!(!Asn(64512).is_routable());
        assert!(!AS_TRANS.is_routable());
        assert!(!Asn::ZERO.is_routable());
    }

    #[test]
    fn asdot_rendering() {
        assert_eq!(Asn(65536).to_asdot(), "1.0");
        assert_eq!(Asn(327700).to_asdot(), "5.20");
        assert_eq!(Asn(1234).to_asdot(), "1234");
    }

    #[test]
    fn parse_plain_and_prefixed() {
        assert_eq!("64512".parse::<Asn>().unwrap(), Asn(64512));
        assert_eq!("AS3333".parse::<Asn>().unwrap(), Asn(3333));
        assert_eq!("as1".parse::<Asn>().unwrap(), Asn(1));
    }

    #[test]
    fn parse_asdot() {
        assert_eq!("1.0".parse::<Asn>().unwrap(), Asn(65536));
        assert_eq!("AS5.20".parse::<Asn>().unwrap(), Asn(327700));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("1.65536".parse::<Asn>().is_err());
        assert!("70000.1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn ordering_and_conversion() {
        assert!(Asn(1) < Asn(2));
        assert_eq!(u32::from(Asn(7)), 7);
        assert_eq!(Asn::from(7u16), Asn(7));
    }
}
