//! RFC 4271 wire codec with RFC 6793 (four-octet AS) and RFC 4760
//! (multiprotocol IPv6 NLRI) support.
//!
//! The [`Codec`] is parameterized on the session's four-octet-AS
//! capability: in two-octet mode, AS_PATHs containing 32-bit ASNs are
//! encoded with `AS_TRANS` substitutions plus an `AS4_PATH` attribute,
//! and reconstructed on decode — the same dance real routers perform.

use crate::aspath::{AsPath, Segment};
use crate::attrs::{Community, Origin, PathAttributes};
use crate::message::{
    BgpMessage, NotificationMessage, OpenMessage, UpdateMessage, KEEPALIVE_TYPE, NOTIFICATION_TYPE,
    OPEN_TYPE, UPDATE_TYPE,
};
use crate::prefix::{Afi, Prefix};
use crate::{asn::AS_TRANS, Asn, BgpError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Maximum BGP message size (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;
/// BGP header size.
pub const HEADER_LEN: usize = 19;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXTENDED_LEN: u8 = 0x10;

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_ATOMIC_AGGREGATE: u8 = 6;
const ATTR_AGGREGATOR: u8 = 7;
const ATTR_COMMUNITIES: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;
const ATTR_AS4_PATH: u8 = 17;

const SEG_SET: u8 = 1;
const SEG_SEQUENCE: u8 = 2;

const CAP_FOUR_OCTET_AS: u8 = 65;

/// Encoder/decoder for BGP messages on one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codec {
    /// Whether the session negotiated four-octet AS numbers. Modern
    /// sessions virtually always do; set `false` to exercise the
    /// AS_TRANS / AS4_PATH compatibility path.
    pub four_octet_as: bool,
}

impl Default for Codec {
    fn default() -> Self {
        Codec {
            four_octet_as: true,
        }
    }
}

impl Codec {
    /// A codec for a session that negotiated four-octet ASNs.
    pub const fn four_octet() -> Self {
        Codec {
            four_octet_as: true,
        }
    }

    /// A codec for a legacy two-octet session.
    pub const fn two_octet() -> Self {
        Codec {
            four_octet_as: false,
        }
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Encode a full message including the 19-byte header.
    pub fn encode(&self, msg: &BgpMessage) -> Result<Bytes, BgpError> {
        let mut body = BytesMut::with_capacity(64);
        match msg {
            BgpMessage::Open(open) => self.encode_open(open, &mut body)?,
            BgpMessage::Update(update) => self.encode_update(update, &mut body)?,
            BgpMessage::Notification(n) => {
                body.put_u8(n.code);
                body.put_u8(n.subcode);
                body.put_slice(&n.data);
            }
            BgpMessage::Keepalive => {}
        }
        let total = HEADER_LEN + body.len();
        if total > MAX_MESSAGE_LEN {
            return Err(BgpError::EncodingOverflow("message exceeds 4096 bytes"));
        }
        let mut out = BytesMut::with_capacity(total);
        out.put_bytes(0xFF, 16);
        out.put_u16(total as u16);
        out.put_u8(msg.type_code());
        out.extend_from_slice(&body);
        Ok(out.freeze())
    }

    fn encode_open(&self, open: &OpenMessage, out: &mut BytesMut) -> Result<(), BgpError> {
        out.put_u8(open.version);
        let two_octet_as: u16 = if open.asn.is_two_octet() {
            open.asn.value() as u16
        } else {
            AS_TRANS.value() as u16
        };
        out.put_u16(two_octet_as);
        out.put_u16(open.hold_time);
        out.put_slice(&open.bgp_id.octets());
        if open.four_octet_capable {
            // One optional parameter: capabilities (type 2) containing the
            // four-octet-AS capability (code 65, length 4).
            out.put_u8(8); // opt params len
            out.put_u8(2); // param type: capabilities
            out.put_u8(6); // param length
            out.put_u8(CAP_FOUR_OCTET_AS);
            out.put_u8(4);
            out.put_u32(open.asn.value());
        } else {
            if !open.asn.is_two_octet() {
                return Err(BgpError::EncodingOverflow(
                    "four-octet ASN without the capability",
                ));
            }
            out.put_u8(0);
        }
        Ok(())
    }

    fn encode_update(&self, update: &UpdateMessage, out: &mut BytesMut) -> Result<(), BgpError> {
        let (wd_v4, wd_v6): (Vec<Prefix>, Vec<Prefix>) = update
            .withdrawn
            .iter()
            .copied()
            .partition(|p| p.afi() == Afi::Ipv4);
        let (nlri_v4, nlri_v6): (Vec<Prefix>, Vec<Prefix>) = update
            .nlri
            .iter()
            .copied()
            .partition(|p| p.afi() == Afi::Ipv4);

        if (!nlri_v4.is_empty() || !nlri_v6.is_empty()) && update.attrs.is_none() {
            return Err(BgpError::MissingMandatoryAttribute("path attributes"));
        }

        // Withdrawn routes (IPv4 only in the classic field).
        let mut wd_buf = BytesMut::new();
        for p in &wd_v4 {
            encode_nlri_prefix(*p, &mut wd_buf);
        }
        out.put_u16(wd_buf.len() as u16);
        out.extend_from_slice(&wd_buf);

        // Path attributes.
        let mut attr_buf = BytesMut::new();
        if let Some(attrs) = &update.attrs {
            self.encode_attrs(attrs, &nlri_v4, &nlri_v6, &wd_v6, &mut attr_buf)?;
        } else if !wd_v6.is_empty() {
            // Pure v6 withdrawal still needs MP_UNREACH.
            encode_mp_unreach(&wd_v6, &mut attr_buf);
        }
        out.put_u16(attr_buf.len() as u16);
        out.extend_from_slice(&attr_buf);

        // Classic NLRI (IPv4).
        for p in &nlri_v4 {
            encode_nlri_prefix(*p, out);
        }
        Ok(())
    }

    fn encode_attrs(
        &self,
        attrs: &PathAttributes,
        nlri_v4: &[Prefix],
        nlri_v6: &[Prefix],
        wd_v6: &[Prefix],
        out: &mut BytesMut,
    ) -> Result<(), BgpError> {
        // ORIGIN
        put_attr(out, FLAG_TRANSITIVE, ATTR_ORIGIN, &[attrs.origin.code()]);

        // AS_PATH (and possibly AS4_PATH)
        let needs_as4 = !self.four_octet_as && attrs.as_path.iter().any(|a| !a.is_two_octet());
        let path_buf = encode_as_path(&attrs.as_path, self.four_octet_as, needs_as4);
        put_attr(out, FLAG_TRANSITIVE, ATTR_AS_PATH, &path_buf);

        // NEXT_HOP: required alongside classic v4 NLRI.
        if !nlri_v4.is_empty() {
            match attrs.next_hop {
                IpAddr::V4(a) => put_attr(out, FLAG_TRANSITIVE, ATTR_NEXT_HOP, &a.octets()),
                IpAddr::V6(_) => {
                    return Err(BgpError::EncodingOverflow("IPv6 next-hop with IPv4 NLRI"))
                }
            }
        }

        if let Some(med) = attrs.med {
            put_attr(out, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
        }
        if let Some(lp) = attrs.local_pref {
            put_attr(out, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &lp.to_be_bytes());
        }
        if attrs.atomic_aggregate {
            put_attr(out, FLAG_TRANSITIVE, ATTR_ATOMIC_AGGREGATE, &[]);
        }
        if let Some((asn, id)) = attrs.aggregator {
            let mut buf = Vec::with_capacity(8);
            if self.four_octet_as {
                buf.extend_from_slice(&asn.value().to_be_bytes());
            } else {
                let v: u16 = if asn.is_two_octet() {
                    asn.value() as u16
                } else {
                    AS_TRANS.value() as u16
                };
                buf.extend_from_slice(&v.to_be_bytes());
            }
            buf.extend_from_slice(&id.octets());
            put_attr(out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_AGGREGATOR, &buf);
        }
        if !attrs.communities.is_empty() {
            let mut buf = Vec::with_capacity(attrs.communities.len() * 4);
            for c in &attrs.communities {
                buf.extend_from_slice(&c.0.to_be_bytes());
            }
            put_attr(out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITIES, &buf);
        }
        if needs_as4 {
            let as4_buf = encode_as_path(&attrs.as_path, true, false);
            put_attr(
                out,
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_AS4_PATH,
                &as4_buf,
            );
        }

        // MP_REACH_NLRI for IPv6 announcements.
        if !nlri_v6.is_empty() {
            let next_hop_v6 = match attrs.next_hop {
                IpAddr::V6(a) => a,
                // Map a v4 next hop into the v4-mapped space so that a
                // mixed-family update stays encodable.
                IpAddr::V4(a) => a.to_ipv6_mapped(),
            };
            let mut buf = BytesMut::new();
            buf.put_u16(Afi::Ipv6.iana_code());
            buf.put_u8(1); // SAFI unicast
            buf.put_u8(16);
            buf.put_slice(&next_hop_v6.octets());
            buf.put_u8(0); // reserved
            for p in nlri_v6 {
                encode_nlri_prefix(*p, &mut buf);
            }
            put_attr(out, FLAG_OPTIONAL, ATTR_MP_REACH, &buf);
        }
        if !wd_v6.is_empty() {
            encode_mp_unreach(wd_v6, out);
        }
        Ok(())
    }

    /// Encode a bare path-attribute block (as stored in MRT
    /// TABLE_DUMP_V2 RIB entries). IPv6 next-hops are carried in an
    /// MP_REACH_NLRI attribute with an empty NLRI, mirroring real dumps.
    pub fn encode_path_attributes(&self, attrs: &PathAttributes) -> Result<Vec<u8>, BgpError> {
        let mut buf = BytesMut::new();
        match attrs.next_hop {
            IpAddr::V4(_) => {
                // Pretend there is v4 NLRI so NEXT_HOP is emitted.
                self.encode_attrs(attrs, &[Prefix::default_v4()], &[], &[], &mut buf)?
            }
            IpAddr::V6(_) => {
                // Emit MP_REACH with the v6 next hop and an empty NLRI.
                self.encode_attrs_v6_nonlri(attrs, &mut buf)?;
                return Ok(buf.to_vec());
            }
        }
        Ok(buf.to_vec())
    }

    fn encode_attrs_v6_nonlri(
        &self,
        attrs: &PathAttributes,
        out: &mut BytesMut,
    ) -> Result<(), BgpError> {
        put_attr(out, FLAG_TRANSITIVE, ATTR_ORIGIN, &[attrs.origin.code()]);
        let path_buf = encode_as_path(&attrs.as_path, true, false);
        put_attr(out, FLAG_TRANSITIVE, ATTR_AS_PATH, &path_buf);
        if let Some(med) = attrs.med {
            put_attr(out, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
        }
        if let Some(lp) = attrs.local_pref {
            put_attr(out, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &lp.to_be_bytes());
        }
        if !attrs.communities.is_empty() {
            let mut buf = Vec::with_capacity(attrs.communities.len() * 4);
            for c in &attrs.communities {
                buf.extend_from_slice(&c.0.to_be_bytes());
            }
            put_attr(out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITIES, &buf);
        }
        let IpAddr::V6(nh) = attrs.next_hop else {
            return Err(BgpError::EncodingOverflow("expected v6 next hop"));
        };
        let mut buf = BytesMut::new();
        buf.put_u16(Afi::Ipv6.iana_code());
        buf.put_u8(1);
        buf.put_u8(16);
        buf.put_slice(&nh.octets());
        buf.put_u8(0);
        put_attr(out, FLAG_OPTIONAL, ATTR_MP_REACH, &buf);
        Ok(())
    }

    /// Decode a bare path-attribute block (MRT RIB entries). Requires
    /// ORIGIN and AS_PATH; a missing NEXT_HOP falls back to `0.0.0.0`
    /// (some dumps omit it for iBGP-learned entries).
    pub fn decode_path_attributes(&self, bytes: &[u8]) -> Result<PathAttributes, BgpError> {
        let parsed = self.decode_attrs(bytes)?;
        let origin = parsed
            .origin
            .ok_or(BgpError::MissingMandatoryAttribute("ORIGIN"))?;
        let raw_path = parsed
            .as_path
            .ok_or(BgpError::MissingMandatoryAttribute("AS_PATH"))?;
        let as_path = reconcile_as4(raw_path, parsed.as4_path);
        let next_hop: IpAddr = match (parsed.next_hop, &parsed.mp_reach) {
            (Some(v4), _) => IpAddr::V4(v4),
            (None, Some((_, nh))) => IpAddr::V6(*nh),
            (None, None) => IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        };
        Ok(PathAttributes {
            origin,
            as_path,
            next_hop,
            med: parsed.med,
            local_pref: parsed.local_pref,
            atomic_aggregate: parsed.atomic_aggregate,
            aggregator: parsed.aggregator,
            communities: parsed.communities,
        })
    }

    // ------------------------------------------------------------------
    // Decoding
    // ------------------------------------------------------------------

    /// Decode one message from the front of `buf`. Returns the message
    /// and the number of bytes consumed.
    pub fn decode(&self, buf: &[u8]) -> Result<(BgpMessage, usize), BgpError> {
        if buf.len() < HEADER_LEN {
            return Err(BgpError::Truncated("header"));
        }
        if buf[..16].iter().any(|&b| b != 0xFF) {
            return Err(BgpError::BadMarker);
        }
        let claimed = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&claimed) || claimed > buf.len() {
            return Err(BgpError::BadLength {
                claimed,
                available: buf.len(),
            });
        }
        let msg_type = buf[18];
        let body = &buf[HEADER_LEN..claimed];
        let msg = match msg_type {
            OPEN_TYPE => BgpMessage::Open(self.decode_open(body)?),
            UPDATE_TYPE => BgpMessage::Update(self.decode_update(body)?),
            NOTIFICATION_TYPE => {
                if body.len() < 2 {
                    return Err(BgpError::Truncated("notification"));
                }
                BgpMessage::Notification(NotificationMessage {
                    code: body[0],
                    subcode: body[1],
                    data: body[2..].to_vec(),
                })
            }
            KEEPALIVE_TYPE => {
                if !body.is_empty() {
                    return Err(BgpError::BadLength {
                        claimed,
                        available: HEADER_LEN,
                    });
                }
                BgpMessage::Keepalive
            }
            t => return Err(BgpError::UnknownMessageType(t)),
        };
        Ok((msg, claimed))
    }

    fn decode_open(&self, mut body: &[u8]) -> Result<OpenMessage, BgpError> {
        if body.len() < 10 {
            return Err(BgpError::Truncated("open"));
        }
        let version = body.get_u8();
        if version != 4 {
            return Err(BgpError::UnsupportedVersion(version));
        }
        let two_octet_as = body.get_u16();
        let hold_time = body.get_u16();
        let bgp_id = Ipv4Addr::from(body.get_u32());
        let opt_len = body.get_u8() as usize;
        if body.len() < opt_len {
            return Err(BgpError::Truncated("open optional parameters"));
        }
        let mut params = &body[..opt_len];
        let mut four_octet: Option<u32> = None;
        while params.len() >= 2 {
            let ptype = params.get_u8();
            let plen = params.get_u8() as usize;
            if params.len() < plen {
                return Err(BgpError::Truncated("open parameter"));
            }
            let mut pval = &params[..plen];
            params = &params[plen..];
            if ptype != 2 {
                continue; // non-capability parameter: ignore
            }
            while pval.len() >= 2 {
                let cap = pval.get_u8();
                let clen = pval.get_u8() as usize;
                if pval.len() < clen {
                    return Err(BgpError::Truncated("capability"));
                }
                if cap == CAP_FOUR_OCTET_AS && clen == 4 {
                    four_octet = Some(u32::from_be_bytes([pval[0], pval[1], pval[2], pval[3]]));
                }
                pval = &pval[clen..];
            }
        }
        let asn = match four_octet {
            Some(v) => Asn(v),
            None => Asn(two_octet_as as u32),
        };
        Ok(OpenMessage {
            version,
            asn,
            hold_time,
            bgp_id,
            four_octet_capable: four_octet.is_some(),
        })
    }

    fn decode_update(&self, body: &[u8]) -> Result<UpdateMessage, BgpError> {
        let mut cur = body;
        if cur.len() < 2 {
            return Err(BgpError::Truncated("withdrawn length"));
        }
        let wd_len = cur.get_u16() as usize;
        if cur.len() < wd_len {
            return Err(BgpError::Truncated("withdrawn routes"));
        }
        let mut withdrawn = decode_nlri(&cur[..wd_len], Afi::Ipv4)?;
        cur = &cur[wd_len..];

        if cur.len() < 2 {
            return Err(BgpError::Truncated("attribute length"));
        }
        let attr_len = cur.get_u16() as usize;
        if cur.len() < attr_len {
            return Err(BgpError::Truncated("path attributes"));
        }
        let attr_bytes = &cur[..attr_len];
        cur = &cur[attr_len..];

        let mut nlri = decode_nlri(cur, Afi::Ipv4)?;

        let parsed = self.decode_attrs(attr_bytes)?;
        let ParsedAttrs {
            origin,
            as_path,
            as4_path,
            next_hop,
            med,
            local_pref,
            atomic_aggregate,
            aggregator,
            communities,
            mp_reach,
            mp_unreach,
        } = parsed;

        if let Some((v6_nlri, _)) = &mp_reach {
            nlri.extend(v6_nlri.iter().copied());
        }
        if let Some(v6_wd) = &mp_unreach {
            withdrawn.extend(v6_wd.iter().copied());
        }

        let attrs = if nlri.is_empty() {
            None
        } else {
            let origin = origin.ok_or(BgpError::MissingMandatoryAttribute("ORIGIN"))?;
            let raw_path = as_path.ok_or(BgpError::MissingMandatoryAttribute("AS_PATH"))?;
            let as_path = reconcile_as4(raw_path, as4_path);
            let next_hop: IpAddr = match (next_hop, &mp_reach) {
                (Some(v4), _) => IpAddr::V4(v4),
                (None, Some((_, nh))) => IpAddr::V6(*nh),
                (None, None) => return Err(BgpError::MissingMandatoryAttribute("NEXT_HOP")),
            };
            Some(PathAttributes {
                origin,
                as_path,
                next_hop,
                med,
                local_pref,
                atomic_aggregate,
                aggregator,
                communities,
            })
        };

        Ok(UpdateMessage {
            withdrawn,
            attrs,
            nlri,
        })
    }

    fn decode_attrs(&self, mut cur: &[u8]) -> Result<ParsedAttrs, BgpError> {
        let mut parsed = ParsedAttrs::default();
        while !cur.is_empty() {
            if cur.len() < 2 {
                return Err(BgpError::Truncated("attribute header"));
            }
            let flags = cur.get_u8();
            let type_code = cur.get_u8();
            let len = if flags & FLAG_EXTENDED_LEN != 0 {
                if cur.len() < 2 {
                    return Err(BgpError::Truncated("attribute extended length"));
                }
                cur.get_u16() as usize
            } else {
                if cur.is_empty() {
                    return Err(BgpError::Truncated("attribute length"));
                }
                cur.get_u8() as usize
            };
            if cur.len() < len {
                return Err(BgpError::Truncated("attribute value"));
            }
            let val = &cur[..len];
            cur = &cur[len..];
            self.decode_one_attr(flags, type_code, val, &mut parsed)?;
        }
        Ok(parsed)
    }

    fn decode_one_attr(
        &self,
        _flags: u8,
        type_code: u8,
        val: &[u8],
        parsed: &mut ParsedAttrs,
    ) -> Result<(), BgpError> {
        match type_code {
            ATTR_ORIGIN => {
                if val.len() != 1 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "ORIGIN length != 1",
                    });
                }
                parsed.origin = Some(Origin::from_code(val[0]).ok_or(
                    BgpError::MalformedAttribute {
                        type_code,
                        reason: "unknown ORIGIN code",
                    },
                )?);
            }
            ATTR_AS_PATH => {
                parsed.as_path = Some(decode_as_path(val, self.four_octet_as)?);
            }
            ATTR_AS4_PATH => {
                parsed.as4_path = Some(decode_as_path(val, true)?);
            }
            ATTR_NEXT_HOP => {
                if val.len() != 4 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "NEXT_HOP length != 4",
                    });
                }
                parsed.next_hop = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3]));
            }
            ATTR_MED => {
                if val.len() != 4 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "MED length != 4",
                    });
                }
                parsed.med = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
            }
            ATTR_LOCAL_PREF => {
                if val.len() != 4 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "LOCAL_PREF length != 4",
                    });
                }
                parsed.local_pref = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
            }
            ATTR_ATOMIC_AGGREGATE => {
                if !val.is_empty() {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "ATOMIC_AGGREGATE length != 0",
                    });
                }
                parsed.atomic_aggregate = true;
            }
            ATTR_AGGREGATOR => {
                let (asn, rest) = if self.four_octet_as {
                    if val.len() != 8 {
                        return Err(BgpError::MalformedAttribute {
                            type_code,
                            reason: "AGGREGATOR length != 8",
                        });
                    }
                    (
                        Asn(u32::from_be_bytes([val[0], val[1], val[2], val[3]])),
                        &val[4..],
                    )
                } else {
                    if val.len() != 6 {
                        return Err(BgpError::MalformedAttribute {
                            type_code,
                            reason: "AGGREGATOR length != 6",
                        });
                    }
                    (Asn(u16::from_be_bytes([val[0], val[1]]) as u32), &val[2..])
                };
                parsed.aggregator = Some((asn, Ipv4Addr::new(rest[0], rest[1], rest[2], rest[3])));
            }
            ATTR_COMMUNITIES => {
                if !val.len().is_multiple_of(4) {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "COMMUNITIES length not a multiple of 4",
                    });
                }
                parsed.communities = val
                    .chunks_exact(4)
                    .map(|c| Community(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
            }
            ATTR_MP_REACH => {
                let mut cur = val;
                if cur.len() < 5 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "MP_REACH too short",
                    });
                }
                let afi = cur.get_u16();
                let _safi = cur.get_u8();
                let nh_len = cur.get_u8() as usize;
                if cur.len() < nh_len + 1 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "MP_REACH next-hop truncated",
                    });
                }
                if afi != Afi::Ipv6.iana_code() || nh_len < 16 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "unsupported MP_REACH AFI or next-hop",
                    });
                }
                let mut nh_bytes = [0u8; 16];
                nh_bytes.copy_from_slice(&cur[..16]);
                let nh = Ipv6Addr::from(nh_bytes);
                cur = &cur[nh_len..];
                let _reserved = cur.get_u8();
                let nlri = decode_nlri(cur, Afi::Ipv6)?;
                parsed.mp_reach = Some((nlri, nh));
            }
            ATTR_MP_UNREACH => {
                let mut cur = val;
                if cur.len() < 3 {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "MP_UNREACH too short",
                    });
                }
                let afi = cur.get_u16();
                let _safi = cur.get_u8();
                if afi != Afi::Ipv6.iana_code() {
                    return Err(BgpError::MalformedAttribute {
                        type_code,
                        reason: "unsupported MP_UNREACH AFI",
                    });
                }
                parsed.mp_unreach = Some(decode_nlri(cur, Afi::Ipv6)?);
            }
            _ => {
                // Unknown attribute: tolerated and skipped (optional
                // transitive semantics are out of scope here).
            }
        }
        Ok(())
    }
}

#[derive(Default)]
struct ParsedAttrs {
    origin: Option<Origin>,
    as_path: Option<AsPath>,
    as4_path: Option<AsPath>,
    next_hop: Option<Ipv4Addr>,
    med: Option<u32>,
    local_pref: Option<u32>,
    atomic_aggregate: bool,
    aggregator: Option<(Asn, Ipv4Addr)>,
    communities: Vec<Community>,
    mp_reach: Option<(Vec<Prefix>, Ipv6Addr)>,
    mp_unreach: Option<Vec<Prefix>>,
}

/// RFC 6793 §4.2.3 reconciliation: when AS4_PATH is present and no
/// longer than AS_PATH, prefer it (prepending any extra leading
/// AS_TRANS hops from AS_PATH).
fn reconcile_as4(as_path: AsPath, as4_path: Option<AsPath>) -> AsPath {
    let Some(as4) = as4_path else {
        return as_path;
    };
    let n = as_path.asn_count();
    let n4 = as4.asn_count();
    if n4 > n {
        // Broken speaker: ignore AS4_PATH per the RFC.
        return as_path;
    }
    if n4 == n {
        return as4;
    }
    // Keep the first (n - n4) hops of AS_PATH, then splice AS4_PATH.
    let lead: Vec<Asn> = as_path.iter().take(n - n4).collect();
    let mut segments = vec![Segment::Sequence(lead)];
    segments.extend(as4.segments().iter().cloned());
    AsPath::from_segments(segments)
}

fn put_attr(out: &mut BytesMut, flags: u8, type_code: u8, value: &[u8]) {
    if value.len() > 255 {
        out.put_u8(flags | FLAG_EXTENDED_LEN);
        out.put_u8(type_code);
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(type_code);
        out.put_u8(value.len() as u8);
    }
    out.put_slice(value);
}

fn encode_as_path(path: &AsPath, four_octet: bool, substitute_trans: bool) -> Vec<u8> {
    let mut out = Vec::new();
    for seg in path.segments() {
        let (code, asns) = match seg {
            Segment::Set(a) => (SEG_SET, a),
            Segment::Sequence(a) => (SEG_SEQUENCE, a),
        };
        // Wire segments carry at most 255 ASNs; chunk long sequences.
        for chunk in asns.chunks(255) {
            out.push(code);
            out.push(chunk.len() as u8);
            for asn in chunk {
                if four_octet {
                    out.extend_from_slice(&asn.value().to_be_bytes());
                } else {
                    let v: u16 = if asn.is_two_octet() {
                        asn.value() as u16
                    } else {
                        debug_assert!(substitute_trans || asn.is_two_octet());
                        AS_TRANS.value() as u16
                    };
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
    }
    out
}

fn decode_as_path(mut cur: &[u8], four_octet: bool) -> Result<AsPath, BgpError> {
    let asn_size = if four_octet { 4 } else { 2 };
    let mut segments = Vec::new();
    while !cur.is_empty() {
        if cur.len() < 2 {
            return Err(BgpError::MalformedAttribute {
                type_code: ATTR_AS_PATH,
                reason: "segment header truncated",
            });
        }
        let seg_type = cur.get_u8();
        let count = cur.get_u8() as usize;
        if cur.len() < count * asn_size {
            return Err(BgpError::MalformedAttribute {
                type_code: ATTR_AS_PATH,
                reason: "segment ASNs truncated",
            });
        }
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let v = if four_octet {
                cur.get_u32()
            } else {
                cur.get_u16() as u32
            };
            asns.push(Asn(v));
        }
        match seg_type {
            SEG_SET => segments.push(Segment::Set(asns)),
            SEG_SEQUENCE => segments.push(Segment::Sequence(asns)),
            _ => {
                return Err(BgpError::MalformedAttribute {
                    type_code: ATTR_AS_PATH,
                    reason: "unknown segment type",
                })
            }
        }
    }
    // Merge adjacent sequences (chunked on encode) back together.
    let mut merged: Vec<Segment> = Vec::new();
    for seg in segments {
        match (merged.last_mut(), seg) {
            (Some(Segment::Sequence(tail)), Segment::Sequence(more)) => {
                tail.extend(more);
            }
            (_, seg) => merged.push(seg),
        }
    }
    Ok(AsPath::from_segments(merged))
}

fn encode_mp_unreach(wd_v6: &[Prefix], out: &mut BytesMut) {
    let mut buf = BytesMut::new();
    buf.put_u16(Afi::Ipv6.iana_code());
    buf.put_u8(1); // SAFI unicast
    for p in wd_v6 {
        encode_nlri_prefix(*p, &mut buf);
    }
    put_attr(out, FLAG_OPTIONAL, ATTR_MP_UNREACH, &buf);
}

/// Encode one NLRI prefix: length octet then ceil(len/8) address bytes.
fn encode_nlri_prefix(prefix: Prefix, out: &mut BytesMut) {
    out.put_u8(prefix.len());
    let nbytes = (prefix.len() as usize).div_ceil(8);
    let bytes = prefix.bits().to_be_bytes();
    out.put_slice(&bytes[..nbytes]);
}

/// Decode a run of NLRI prefixes for one family.
fn decode_nlri(mut cur: &[u8], afi: Afi) -> Result<Vec<Prefix>, BgpError> {
    let mut out = Vec::new();
    while !cur.is_empty() {
        let bit_len = cur.get_u8();
        if bit_len > afi.max_len() {
            return Err(BgpError::InvalidNlri { bit_len });
        }
        let nbytes = (bit_len as usize).div_ceil(8);
        if cur.len() < nbytes {
            return Err(BgpError::Truncated("NLRI prefix bytes"));
        }
        let mut bits_bytes = [0u8; 16];
        bits_bytes[..nbytes].copy_from_slice(&cur[..nbytes]);
        cur = &cur[nbytes..];
        let bits = u128::from_be_bytes(bits_bytes);
        let prefix =
            Prefix::from_bits(afi, bits, bit_len).map_err(|_| BgpError::InvalidNlri { bit_len })?;
        out.push(prefix);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn p(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn attrs_v4(path: &[u32]) -> PathAttributes {
        PathAttributes::with_path(
            AsPath::from_sequence(path.iter().copied()),
            "192.0.2.1".parse().unwrap(),
        )
    }

    #[test]
    fn keepalive_roundtrip() {
        let codec = Codec::default();
        let bytes = codec.encode(&BgpMessage::Keepalive).unwrap();
        assert_eq!(bytes.len(), 19);
        let (msg, used) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Keepalive);
        assert_eq!(used, 19);
    }

    #[test]
    fn open_roundtrip_four_octet() {
        let codec = Codec::default();
        let open = OpenMessage {
            version: 4,
            asn: Asn(4_200_000_001),
            hold_time: 180,
            bgp_id: Ipv4Addr::new(10, 0, 0, 1),
            four_octet_capable: true,
        };
        let bytes = codec.encode(&BgpMessage::Open(open.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Open(open));
    }

    #[test]
    fn open_two_octet_without_capability() {
        let codec = Codec::two_octet();
        let open = OpenMessage {
            version: 4,
            asn: Asn(65001),
            hold_time: 90,
            bgp_id: Ipv4Addr::new(1, 2, 3, 4),
            four_octet_capable: false,
        };
        let bytes = codec.encode(&BgpMessage::Open(open.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Open(open));
    }

    #[test]
    fn open_rejects_wide_asn_without_capability() {
        let codec = Codec::default();
        let open = OpenMessage {
            version: 4,
            asn: Asn(70000),
            hold_time: 90,
            bgp_id: Ipv4Addr::new(1, 2, 3, 4),
            four_octet_capable: false,
        };
        assert!(codec.encode(&BgpMessage::Open(open)).is_err());
    }

    #[test]
    fn update_roundtrip_v4() {
        let codec = Codec::default();
        let update = UpdateMessage::announce(
            attrs_v4(&[174, 3356, 65001]),
            vec![p("10.0.0.0/23"), p("203.0.113.0/24")],
        );
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn update_roundtrip_withdraw_only() {
        let codec = Codec::default();
        let update = UpdateMessage::withdraw(vec![p("10.0.0.0/23")]);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn update_roundtrip_full_attributes() {
        let codec = Codec::default();
        let mut attrs = attrs_v4(&[64500, 64501]);
        attrs.origin = Origin::Incomplete;
        attrs.med = Some(50);
        attrs.local_pref = Some(200);
        attrs.atomic_aggregate = true;
        attrs.aggregator = Some((Asn(64500), Ipv4Addr::new(10, 1, 1, 1)));
        attrs.communities = vec![Community::from_parts(64500, 7), Community::NO_EXPORT];
        let update = UpdateMessage::announce(attrs, vec![p("198.51.100.0/24")]);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn update_roundtrip_v6_mp_reach() {
        let codec = Codec::default();
        let attrs = PathAttributes::with_path(
            AsPath::from_sequence([6939u32, 65001]),
            "2001:db8::1".parse().unwrap(),
        );
        let update = UpdateMessage::announce(attrs, vec![p("2001:db8:1::/48")]);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn update_roundtrip_v6_withdraw() {
        let codec = Codec::default();
        let update = UpdateMessage::withdraw(vec![p("2001:db8:2::/48")]);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn two_octet_session_uses_as_trans_and_as4_path() {
        let codec = Codec::two_octet();
        let update = UpdateMessage::announce(
            attrs_v4(&[174, 4_200_000_001, 65001]),
            vec![p("10.0.0.0/24")],
        );
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        // The raw AS_PATH on the wire must contain AS_TRANS (23456).
        let raw = bytes.as_ref();
        let needle = 23456u16.to_be_bytes();
        assert!(raw.windows(2).any(|w| w == needle));
        // And decoding reconstructs the true path via AS4_PATH.
        let (msg, _) = codec.decode(&bytes).unwrap();
        match msg {
            BgpMessage::Update(u) => {
                assert_eq!(
                    u.attrs.unwrap().as_path,
                    AsPath::from_sequence([174u32, 4_200_000_001, 65001])
                );
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn notification_roundtrip() {
        let codec = Codec::default();
        let n = NotificationMessage {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        };
        let bytes = codec.encode(&BgpMessage::Notification(n.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Notification(n));
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let codec = Codec::default();
        let mut bytes = codec.encode(&BgpMessage::Keepalive).unwrap().to_vec();
        bytes[3] = 0;
        assert_eq!(codec.decode(&bytes), Err(BgpError::BadMarker));
    }

    #[test]
    fn decode_rejects_truncation() {
        let codec = Codec::default();
        let bytes = codec.encode(&BgpMessage::Keepalive).unwrap();
        assert!(matches!(
            codec.decode(&bytes[..10]),
            Err(BgpError::Truncated(_))
        ));
    }

    #[test]
    fn decode_rejects_length_lies() {
        let codec = Codec::default();
        let mut bytes = codec.encode(&BgpMessage::Keepalive).unwrap().to_vec();
        bytes[16] = 0xFF;
        bytes[17] = 0xFF; // claims 65535
        assert!(matches!(
            codec.decode(&bytes),
            Err(BgpError::BadLength { .. })
        ));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let codec = Codec::default();
        let mut bytes = codec.encode(&BgpMessage::Keepalive).unwrap().to_vec();
        bytes[18] = 9;
        assert_eq!(codec.decode(&bytes), Err(BgpError::UnknownMessageType(9)));
    }

    #[test]
    fn decode_rejects_nlri_overflow_bitlen() {
        // Hand-craft an UPDATE whose NLRI claims /40 on IPv4.
        let codec = Codec::default();
        let update = UpdateMessage::announce(attrs_v4(&[65001]), vec![p("10.0.0.0/24")]);
        let bytes = codec.encode(&BgpMessage::Update(update)).unwrap().to_vec();
        let mut bad = bytes.clone();
        // Last 4 bytes are the NLRI: len=24 then 3 address bytes.
        let nlri_pos = bad.len() - 4;
        bad[nlri_pos] = 40;
        assert!(matches!(
            codec.decode(&bad),
            Err(BgpError::InvalidNlri { bit_len: 40 })
        ));
    }

    #[test]
    fn announce_without_attrs_is_rejected_on_encode() {
        let codec = Codec::default();
        let update = UpdateMessage {
            withdrawn: vec![],
            attrs: None,
            nlri: vec![p("10.0.0.0/24")],
        };
        assert!(codec.encode(&BgpMessage::Update(update)).is_err());
    }

    #[test]
    fn long_as_path_chunks_and_merges() {
        let codec = Codec::default();
        let long: Vec<u32> = (1..=300).collect();
        let update = UpdateMessage::announce(attrs_v4(&long), vec![p("10.0.0.0/24")]);
        let bytes = codec.encode(&BgpMessage::Update(update.clone())).unwrap();
        let (msg, _) = codec.decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn multiple_messages_in_one_buffer() {
        let codec = Codec::default();
        let mut buf = Vec::new();
        buf.extend_from_slice(&codec.encode(&BgpMessage::Keepalive).unwrap());
        let update = UpdateMessage::withdraw(vec![p("10.0.0.0/23")]);
        buf.extend_from_slice(&codec.encode(&BgpMessage::Update(update.clone())).unwrap());
        let (m1, used1) = codec.decode(&buf).unwrap();
        assert_eq!(m1, BgpMessage::Keepalive);
        let (m2, _) = codec.decode(&buf[used1..]).unwrap();
        assert_eq!(m2, BgpMessage::Update(update));
    }
}
