//! Fuzz-shaped hardening for BMP framing, mirroring the MRT scanner
//! rules: truncated common headers, mid-stream garbage, and impossible
//! length fields must **resync or fuse** — never panic, never loop.

use artemis_bgp::{AsPath, Asn, BgpMessage, PathAttributes, Prefix, UpdateMessage};
use artemis_bmp::{
    BmpMessage, BmpScanner, BmpWriter, FrameAssembler, InfoTlv, PeerHeader, MAX_BMP_MESSAGE_LEN,
};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};
use std::str::FromStr;

fn valid_stream(n: usize) -> Vec<u8> {
    let peer = PeerHeader::global(
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
        Asn(174),
        Ipv4Addr::new(10, 0, 0, 1),
        1_000_000,
    );
    let mut w = BmpWriter::new();
    w.write(&BmpMessage::Initiation {
        info: vec![InfoTlv::string(2, "rrc00")],
    })
    .unwrap();
    for i in 0..n {
        w.write(&BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(UpdateMessage::announce(
                PathAttributes::with_path(
                    AsPath::from_sequence([174u32, 3356, 65000 + i as u32 % 100]),
                    "192.0.2.10".parse().unwrap(),
                ),
                vec![Prefix::from_str("10.0.0.0/24").unwrap()],
            )),
        })
        .unwrap();
    }
    w.into_bytes()
}

/// Drive a scanner to exhaustion with an iteration budget; panics if
/// the budget is exceeded (i.e. the scanner loops).
fn scan_to_end(data: &[u8]) -> (usize, usize) {
    let mut scanner = BmpScanner::new(data);
    let (mut ok, mut errs) = (0usize, 0usize);
    for _ in 0..(data.len() + 8) {
        match scanner.next_raw() {
            Ok(Some(raw)) => {
                // Decoding arbitrary bodies must never panic either.
                let _ = raw.decode();
                ok += 1;
            }
            Ok(None) => return (ok, errs),
            Err(_) => errs += 1,
        }
    }
    panic!("scanner failed to terminate within the iteration budget");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: the scanner terminates without panicking, and
    /// header-level corruption fuses (at most one error).
    #[test]
    fn scanner_survives_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (_, errs) = scan_to_end(&data);
        prop_assert!(errs <= 1, "header corruption must fuse, got {errs} errors");
    }

    /// A valid stream with garbage appended: every valid message is
    /// recovered, then the scanner errors at most once and stops.
    #[test]
    fn garbage_tail_never_costs_valid_messages(
        n in 1usize..6,
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = valid_stream(n);
        bytes.extend_from_slice(&garbage);
        let (ok, errs) = scan_to_end(&bytes);
        prop_assert!(ok > n, "lost valid messages: {ok} < {}", n + 1);
        prop_assert!(errs <= 1);
    }

    /// Truncation at every possible point: the intact prefix of
    /// messages is recovered; the cut frame is one error, then EOF.
    #[test]
    fn truncation_yields_the_intact_prefix(n in 1usize..5, frac in 0.0f64..1.0) {
        let bytes = valid_stream(n);
        let cut = (bytes.len() as f64 * frac) as usize;
        let (ok, errs) = scan_to_end(&bytes[..cut]);
        prop_assert!(ok <= n + 1);
        prop_assert!(errs <= 1);
        // Whole-message boundaries are exact: no error at a boundary.
        let full = scan_to_end(&bytes);
        prop_assert_eq!(full, (n + 1, 0));
    }

    /// An impossible length field mid-stream (too small to advance or
    /// beyond the message cap) fuses rather than looping.
    #[test]
    fn impossible_length_fields_fuse(
        n in 0usize..4,
        len in prop_oneof![0u32..6, (MAX_BMP_MESSAGE_LEN as u32 + 1)..u32::MAX],
    ) {
        let mut bytes = valid_stream(n);
        bytes.push(3); // correct version, hostile length
        bytes.extend_from_slice(&len.to_be_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&valid_stream(1)); // unreachable tail
        let (ok, errs) = scan_to_end(&bytes);
        prop_assert_eq!(ok, n + 1);
        prop_assert_eq!(errs, 1, "bad length is unrecoverable");
    }

    /// The frame assembler reproduces the scanner's output under any
    /// chunking of the byte stream.
    #[test]
    fn assembler_matches_scanner_under_any_chunking(
        n in 1usize..6,
        chunk in 1usize..128,
    ) {
        let bytes = valid_stream(n);
        let expect: Vec<_> = BmpScanner::new(&bytes)
            .map(|r| r.unwrap().decode().unwrap())
            .collect();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for part in bytes.chunks(chunk) {
            asm.push(part);
            while let Some(raw) = asm.next_message().unwrap() {
                got.push(raw.decode().unwrap());
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert_eq!(asm.buffered(), 0);
    }

    /// Feeding the assembler arbitrary garbage keeps memory bounded:
    /// once fused it buffers nothing, and before fusing it holds at
    /// most one incomplete frame.
    #[test]
    fn assembler_memory_stays_bounded_on_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 1..32),
    ) {
        let mut asm = FrameAssembler::new();
        for chunk in &chunks {
            asm.push(chunk);
            // Drain completable frames; tolerate (sticky) errors.
            for _ in 0..(chunk.len() + 8) {
                match asm.next_message() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
            prop_assert!(
                asm.buffered() <= MAX_BMP_MESSAGE_LEN + 64,
                "assembler buffered {} bytes",
                asm.buffered()
            );
            if asm.is_fused() {
                prop_assert_eq!(asm.buffered(), 0);
            }
        }
    }
}
