//! # artemis-bmp — BGP Monitoring Protocol wire format (RFC 7854)
//!
//! The live-ingestion substrate of the workspace: everything a
//! collector session needs to speak BMP v3 over a byte stream, with
//! zero I/O of its own so every piece is testable against in-memory
//! buffers.
//!
//! * [`BmpMessage`] / [`BmpWriter`] — owned message model and encoder
//!   for the six RFC 7854 message types (`route_monitoring`,
//!   `stats_report`, `peer_down`, `peer_up`, `initiation`,
//!   `termination`). BGP PDUs inside BMP bodies reuse the workspace
//!   [`artemis_bgp::Codec`], so a route-monitoring payload is a real
//!   UPDATE, byte for byte.
//! * [`BmpScanner`] / [`RawBmpMessage`] — zero-copy scan over a
//!   contiguous byte buffer, mirroring `artemis_mrt::MrtScanner`:
//!   borrowed bodies, per-message [`BmpDiagnostic`]s, resync at
//!   length-delimited boundaries, and a *fused* terminal state on
//!   unrecoverable header corruption so error-skipping loops always
//!   terminate.
//! * [`FrameAssembler`] — incremental framing for a TCP byte stream:
//!   push arbitrarily chunked reads in, pull complete messages out.
//! * [`BackpressureRing`] — the fixed-capacity drop-oldest ring a live
//!   feed parks decoded events in when the detector falls behind;
//!   sheds are counted, memory is bounded.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod frame;
mod ring;
mod wire;

pub use frame::FrameAssembler;
pub use ring::BackpressureRing;
pub use wire::{
    BmpDiagnostic, BmpError, BmpMessage, BmpScanner, BmpWriter, InfoTlv, PeerHeader, RawBmpMessage,
    StatCounter, COMMON_HEADER_LEN, MAX_BMP_MESSAGE_LEN, MSG_INITIATION, MSG_PEER_DOWN,
    MSG_PEER_UP, MSG_ROUTE_MONITORING, MSG_STATS_REPORT, MSG_TERMINATION, PEER_FLAG_V,
    PEER_HEADER_LEN,
};
