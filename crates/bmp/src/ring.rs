//! The bounded backpressure ring between a live-feed reader thread
//! and the detection pipeline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fixed-capacity drop-oldest ring shared between one producer (the
/// socket reader thread) and one consumer (the pipeline's poll path).
///
/// The contract that matters operationally: **memory is bounded and
/// the producer never blocks**. When the consumer falls behind, a push
/// onto a full ring sheds the *oldest* queued item — the detector
/// would rather lose a stale observation than a fresh one, and a
/// hijacked prefix keeps being re-announced, so fresher data always
/// supersedes what was shed. Every shed is counted; the counters are
/// monotone and readable without taking the lock.
pub struct BackpressureRing<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    pushed: AtomicU64,
    shed: AtomicU64,
    drained: AtomicU64,
}

impl<T> BackpressureRing<T> {
    /// A ring holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BackpressureRing {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            pushed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Queue `item`, shedding the oldest queued item if full. Returns
    /// `true` when nothing was shed.
    pub fn push(&self, item: T) -> bool {
        let mut q = self.inner.lock().expect("ring lock poisoned");
        let mut clean = true;
        if q.len() == self.capacity {
            q.pop_front();
            self.shed.fetch_add(1, Ordering::Relaxed);
            clean = false;
        }
        q.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        clean
    }

    /// Queue a batch under one lock acquisition, shedding oldest items
    /// as needed. Returns how many items were shed.
    pub fn push_batch(&self, items: impl IntoIterator<Item = T>) -> u64 {
        let mut q = self.inner.lock().expect("ring lock poisoned");
        let mut shed = 0u64;
        let mut pushed = 0u64;
        for item in items {
            if q.len() == self.capacity {
                q.pop_front();
                shed += 1;
            }
            q.push_back(item);
            pushed += 1;
        }
        self.pushed.fetch_add(pushed, Ordering::Relaxed);
        self.shed.fetch_add(shed, Ordering::Relaxed);
        shed
    }

    /// Move up to `max` items (oldest first) into `out` (appended, not
    /// cleared). Returns how many were moved.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut q = self.inner.lock().expect("ring lock poisoned");
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        self.drained.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring lock poisoned").len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total items ever pushed (monotone).
    pub fn pushed_total(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Total items shed to make room (monotone).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total items drained by the consumer (monotone).
    pub fn drained_total(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_oldest_and_keeps_newest() {
        let ring = BackpressureRing::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.shed_total(), 2);
        assert_eq!(ring.pushed_total(), 5);
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out, 100), 3);
        assert_eq!(out, vec![2, 3, 4], "oldest were shed, newest kept");
        assert_eq!(ring.drained_total(), 3);
    }

    #[test]
    fn batch_push_counts_sheds() {
        let ring = BackpressureRing::new(4);
        assert_eq!(ring.push_batch(0..10), 6);
        assert_eq!(ring.shed_total(), 6);
        let mut out = Vec::new();
        ring.drain_into(&mut out, 2);
        assert_eq!(out, vec![6, 7]);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn stalled_consumer_bounds_memory_under_a_firehose() {
        // The acceptance property: a producer hammering a ring whose
        // consumer never drains must neither block nor grow memory —
        // the queue stays at capacity while sheds grow monotonically.
        let ring = Arc::new(BackpressureRing::new(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..100_000u64 {
                    ring.push(i);
                }
            })
        };
        let mut last_shed = 0;
        for _ in 0..50 {
            assert!(ring.len() <= 64, "ring never exceeds capacity");
            let shed = ring.shed_total();
            assert!(shed >= last_shed, "shed counter is monotone");
            last_shed = shed;
        }
        producer.join().unwrap();
        assert_eq!(ring.len(), 64);
        assert_eq!(ring.shed_total(), 100_000 - 64);
        let mut out = Vec::new();
        ring.drain_into(&mut out, usize::MAX);
        assert_eq!(out.last(), Some(&99_999), "newest survives the stall");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = BackpressureRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.shed_total(), 1);
    }
}
