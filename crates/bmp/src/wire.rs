//! BMP v3 message model, encoder, and zero-copy scanner (RFC 7854).

use artemis_bgp::{Asn, BgpError, BgpMessage, Codec, OpenMessage};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// BMP protocol version this crate speaks.
pub const BMP_VERSION: u8 = 3;
/// Bytes in the common header: version, length, type.
pub const COMMON_HEADER_LEN: usize = 6;
/// Bytes in the per-peer header.
pub const PEER_HEADER_LEN: usize = 42;
/// Upper bound on a single BMP message (header included). A route
/// monitoring message carries at most one 4096-byte BGP PDU plus
/// headers, and initiation/stats TLV blocks are small; anything
/// claiming more is treated as stream corruption, which keeps a
/// [`crate::FrameAssembler`] from buffering unboundedly on garbage.
pub const MAX_BMP_MESSAGE_LEN: usize = 64 * 1024;

/// Message type code: route monitoring (a peer's UPDATE, re-framed).
pub const MSG_ROUTE_MONITORING: u8 = 0;
/// Message type code: statistics report.
pub const MSG_STATS_REPORT: u8 = 1;
/// Message type code: peer down notification.
pub const MSG_PEER_DOWN: u8 = 2;
/// Message type code: peer up notification.
pub const MSG_PEER_UP: u8 = 3;
/// Message type code: initiation (session metadata TLVs).
pub const MSG_INITIATION: u8 = 4;
/// Message type code: termination.
pub const MSG_TERMINATION: u8 = 5;

/// Per-peer flag bit: the peer address is IPv6.
pub const PEER_FLAG_V: u8 = 0x80;

/// Stat types carried as 64-bit gauges (RFC 7854 §4.8); everything
/// else is a 32-bit counter.
const GAUGE64_STATS: [u16; 2] = [7, 8];

/// Errors raised while encoding, framing, or decoding BMP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmpError {
    /// The buffer ended before a required field.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The common header carried a version other than 3. Framing
    /// cannot be trusted past this point — scanners fuse.
    BadVersion(u8),
    /// The common-header length field is impossible: shorter than the
    /// header itself or beyond [`MAX_BMP_MESSAGE_LEN`]. Advancing by
    /// it would loop or buffer unboundedly — scanners fuse.
    BadLength(u32),
    /// Unknown message type code (per-message defect; resyncable).
    UnknownType(u8),
    /// A message body violated its layout.
    Malformed(&'static str),
    /// A BGP PDU inside a BMP body failed to encode or decode.
    Bgp(BgpError),
}

impl fmt::Display for BmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmpError::Truncated { what, need, have } => {
                write!(f, "truncated BMP {what}: need {need} bytes, have {have}")
            }
            BmpError::BadVersion(v) => write!(f, "unsupported BMP version {v}"),
            BmpError::BadLength(l) => write!(f, "impossible BMP message length {l}"),
            BmpError::UnknownType(t) => write!(f, "unknown BMP message type {t}"),
            BmpError::Malformed(what) => write!(f, "malformed BMP message: {what}"),
            BmpError::Bgp(e) => write!(f, "BGP PDU inside BMP body: {e}"),
        }
    }
}

impl std::error::Error for BmpError {}

impl From<BgpError> for BmpError {
    fn from(e: BgpError) -> Self {
        BmpError::Bgp(e)
    }
}

/// The RFC 7854 per-peer header carried by route monitoring, stats,
/// and peer up/down messages: which peering session the wrapped data
/// came from, and when the collector saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerHeader {
    /// Peer type (0 = global instance peer).
    pub peer_type: u8,
    /// Flag bits ([`PEER_FLAG_V`] is derived from `peer_ip` when
    /// encoding; other bits pass through).
    pub flags: u8,
    /// Peer distinguisher (0 for global instance peers).
    pub distinguisher: u64,
    /// Remote address of the monitored session.
    pub peer_ip: IpAddr,
    /// Remote AS of the monitored session.
    pub peer_as: Asn,
    /// Remote BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Timestamp: whole seconds.
    pub ts_secs: u32,
    /// Timestamp: microsecond remainder.
    pub ts_micros: u32,
}

impl PeerHeader {
    /// A global-instance peer header with the given session identity
    /// and a microsecond timestamp.
    pub fn global(peer_ip: IpAddr, peer_as: Asn, bgp_id: Ipv4Addr, timestamp_micros: u64) -> Self {
        PeerHeader {
            peer_type: 0,
            flags: if peer_ip.is_ipv6() { PEER_FLAG_V } else { 0 },
            distinguisher: 0,
            peer_ip,
            peer_as,
            bgp_id,
            ts_secs: (timestamp_micros / 1_000_000) as u32,
            ts_micros: (timestamp_micros % 1_000_000) as u32,
        }
    }

    /// The timestamp as total microseconds.
    pub fn timestamp_micros(&self) -> u64 {
        self.ts_secs as u64 * 1_000_000 + self.ts_micros as u64
    }
}

/// One counter from a stats report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatCounter {
    /// RFC 7854 §4.8 stat type code.
    pub stat_type: u16,
    /// Counter/gauge value. Types 7 and 8 travel as 64-bit gauges;
    /// everything else as 32-bit counters (values must fit).
    pub value: u64,
}

/// One information TLV from an initiation or termination message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoTlv {
    /// TLV type code (0 = free-form string, 1 = sysDescr, 2 = sysName).
    pub code: u16,
    /// Raw value bytes (UTF-8 for the string types).
    pub value: Vec<u8>,
}

impl InfoTlv {
    /// A string-valued TLV.
    pub fn string(code: u16, s: &str) -> Self {
        InfoTlv {
            code,
            value: s.as_bytes().to_vec(),
        }
    }

    /// The value as UTF-8 text, if it is valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.value).ok()
    }
}

/// A fully decoded BMP message.
#[derive(Debug, Clone, PartialEq)]
pub enum BmpMessage {
    /// A peer's BGP UPDATE, re-framed by the collector.
    RouteMonitoring {
        /// Which session observed the update, and when.
        peer: PeerHeader,
        /// The wrapped PDU (always `BgpMessage::Update` on encode;
        /// decode rejects other types).
        update: BgpMessage,
    },
    /// Periodic session statistics.
    StatsReport {
        /// Which session the counters describe.
        peer: PeerHeader,
        /// The counters.
        stats: Vec<StatCounter>,
    },
    /// A monitored session went down.
    PeerDown {
        /// Which session went down.
        peer: PeerHeader,
        /// RFC 7854 §4.9 reason code.
        reason: u8,
        /// Reason-specific payload (a NOTIFICATION PDU for reasons 1
        /// and 3; kept raw for lossless round trips).
        data: Vec<u8>,
    },
    /// A monitored session came up.
    PeerUp {
        /// Which session came up.
        peer: PeerHeader,
        /// Local address of the session.
        local_ip: IpAddr,
        /// Local TCP port.
        local_port: u16,
        /// Remote TCP port.
        remote_port: u16,
        /// The OPEN the monitored router sent.
        sent_open: OpenMessage,
        /// The OPEN the monitored router received.
        recv_open: OpenMessage,
    },
    /// Collector session metadata, first message on a session.
    Initiation {
        /// Information TLVs (sysName, sysDescr, …).
        info: Vec<InfoTlv>,
    },
    /// Collector is closing the session.
    Termination {
        /// Information TLVs (reason, …).
        info: Vec<InfoTlv>,
    },
}

impl BmpMessage {
    /// The wire type code of this message.
    pub fn type_code(&self) -> u8 {
        match self {
            BmpMessage::RouteMonitoring { .. } => MSG_ROUTE_MONITORING,
            BmpMessage::StatsReport { .. } => MSG_STATS_REPORT,
            BmpMessage::PeerDown { .. } => MSG_PEER_DOWN,
            BmpMessage::PeerUp { .. } => MSG_PEER_UP,
            BmpMessage::Initiation { .. } => MSG_INITIATION,
            BmpMessage::Termination { .. } => MSG_TERMINATION,
        }
    }
}

/// The codec used for every BGP PDU inside BMP bodies. Collector
/// sessions in this workspace always negotiate four-octet AS numbers.
fn pdu_codec() -> Codec {
    Codec::four_octet()
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Streaming BMP encoder: appends framed messages to an internal
/// buffer, mirroring `artemis_mrt::MrtWriter`.
#[derive(Default)]
pub struct BmpWriter {
    buf: Vec<u8>,
}

impl BmpWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BmpWriter::default()
    }

    /// Everything written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the framed byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one framed message.
    pub fn write(&mut self, msg: &BmpMessage) -> Result<(), BmpError> {
        let mut body = Vec::new();
        match msg {
            BmpMessage::RouteMonitoring { peer, update } => {
                put_peer_header(&mut body, peer);
                body.extend_from_slice(&pdu_codec().encode(update)?);
            }
            BmpMessage::StatsReport { peer, stats } => {
                put_peer_header(&mut body, peer);
                body.extend_from_slice(&(stats.len() as u32).to_be_bytes());
                for s in stats {
                    body.extend_from_slice(&s.stat_type.to_be_bytes());
                    if GAUGE64_STATS.contains(&s.stat_type) {
                        body.extend_from_slice(&8u16.to_be_bytes());
                        body.extend_from_slice(&s.value.to_be_bytes());
                    } else {
                        let v: u32 = s
                            .value
                            .try_into()
                            .map_err(|_| BmpError::Malformed("32-bit stat counter overflow"))?;
                        body.extend_from_slice(&4u16.to_be_bytes());
                        body.extend_from_slice(&v.to_be_bytes());
                    }
                }
            }
            BmpMessage::PeerDown { peer, reason, data } => {
                put_peer_header(&mut body, peer);
                body.push(*reason);
                body.extend_from_slice(data);
            }
            BmpMessage::PeerUp {
                peer,
                local_ip,
                local_port,
                remote_port,
                sent_open,
                recv_open,
            } => {
                put_peer_header(&mut body, peer);
                put_addr16(&mut body, *local_ip);
                body.extend_from_slice(&local_port.to_be_bytes());
                body.extend_from_slice(&remote_port.to_be_bytes());
                body.extend_from_slice(&pdu_codec().encode(&BgpMessage::Open(sent_open.clone()))?);
                body.extend_from_slice(&pdu_codec().encode(&BgpMessage::Open(recv_open.clone()))?);
            }
            BmpMessage::Initiation { info } | BmpMessage::Termination { info } => {
                for tlv in info {
                    let len: u16 = tlv
                        .value
                        .len()
                        .try_into()
                        .map_err(|_| BmpError::Malformed("info TLV longer than u16"))?;
                    body.extend_from_slice(&tlv.code.to_be_bytes());
                    body.extend_from_slice(&len.to_be_bytes());
                    body.extend_from_slice(&tlv.value);
                }
            }
        }
        let total = COMMON_HEADER_LEN + body.len();
        if total > MAX_BMP_MESSAGE_LEN {
            return Err(BmpError::BadLength(total as u32));
        }
        self.buf.push(BMP_VERSION);
        self.buf.extend_from_slice(&(total as u32).to_be_bytes());
        self.buf.push(msg.type_code());
        self.buf.extend_from_slice(&body);
        Ok(())
    }
}

fn put_peer_header(out: &mut Vec<u8>, peer: &PeerHeader) {
    out.push(peer.peer_type);
    let v_bit = if peer.peer_ip.is_ipv6() {
        PEER_FLAG_V
    } else {
        0
    };
    out.push((peer.flags & !PEER_FLAG_V) | v_bit);
    out.extend_from_slice(&peer.distinguisher.to_be_bytes());
    put_addr16(out, peer.peer_ip);
    out.extend_from_slice(&peer.peer_as.0.to_be_bytes());
    out.extend_from_slice(&peer.bgp_id.octets());
    out.extend_from_slice(&peer.ts_secs.to_be_bytes());
    out.extend_from_slice(&peer.ts_micros.to_be_bytes());
}

/// IPv4 addresses occupy the low 4 bytes of the 16-byte field.
fn put_addr16(out: &mut Vec<u8>, addr: IpAddr) {
    match addr {
        IpAddr::V4(v4) => {
            out.extend_from_slice(&[0u8; 12]);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => out.extend_from_slice(&v6.octets()),
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Cursor over a message body.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], BmpError> {
        if self.data.len() - self.pos < n {
            return Err(BmpError::Truncated {
                what,
                need: n,
                have: self.data.len() - self.pos,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, BmpError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, BmpError> {
        Ok(u16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, BmpError> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, BmpError> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

fn get_peer_header(c: &mut Cursor<'_>) -> Result<PeerHeader, BmpError> {
    let peer_type = c.u8("per-peer header")?;
    let flags = c.u8("per-peer header")?;
    let distinguisher = c.u64("per-peer header")?;
    let addr: [u8; 16] = c.take(16, "per-peer header")?.try_into().unwrap();
    let peer_ip = if flags & PEER_FLAG_V != 0 {
        IpAddr::V6(Ipv6Addr::from(addr))
    } else {
        IpAddr::V4(Ipv4Addr::new(addr[12], addr[13], addr[14], addr[15]))
    };
    let peer_as = Asn(c.u32("per-peer header")?);
    let bgp_id: [u8; 4] = c.take(4, "per-peer header")?.try_into().unwrap();
    Ok(PeerHeader {
        peer_type,
        flags,
        distinguisher,
        peer_ip,
        peer_as,
        bgp_id: Ipv4Addr::from(bgp_id),
        ts_secs: c.u32("per-peer header")?,
        ts_micros: c.u32("per-peer header")?,
    })
}

fn get_info_tlvs(c: &mut Cursor<'_>) -> Result<Vec<InfoTlv>, BmpError> {
    let mut info = Vec::new();
    while c.remaining() > 0 {
        let code = c.u16("info TLV header")?;
        let len = c.u16("info TLV header")? as usize;
        let value = c.take(len, "info TLV value")?.to_vec();
        info.push(InfoTlv { code, value });
    }
    Ok(info)
}

/// A scanned-but-undecoded BMP message: validated framing, borrowed
/// body. Decoding is deferred so scan-only consumers (framing benches,
/// relays) never pay for attribute parsing.
#[derive(Debug, Clone, Copy)]
pub struct RawBmpMessage<'a> {
    /// Byte offset of this message's common header in the stream.
    pub offset: u64,
    /// Wire message type code.
    pub msg_type: u8,
    /// Body bytes (everything after the 6-byte common header).
    pub body: &'a [u8],
}

impl RawBmpMessage<'_> {
    /// Fully decode the body.
    pub fn decode(&self) -> Result<BmpMessage, BmpError> {
        let mut c = Cursor::new(self.body);
        match self.msg_type {
            MSG_ROUTE_MONITORING => {
                let peer = get_peer_header(&mut c)?;
                let (update, used) = pdu_codec().decode(c.rest())?;
                if used != c.remaining() {
                    return Err(BmpError::Malformed("trailing bytes after BGP PDU"));
                }
                if !matches!(update, BgpMessage::Update(_)) {
                    return Err(BmpError::Malformed("route monitoring PDU is not an UPDATE"));
                }
                Ok(BmpMessage::RouteMonitoring { peer, update })
            }
            MSG_STATS_REPORT => {
                let peer = get_peer_header(&mut c)?;
                let count = c.u32("stats count")?;
                let mut stats = Vec::new();
                for _ in 0..count {
                    let stat_type = c.u16("stat TLV header")?;
                    let len = c.u16("stat TLV header")?;
                    let value = match len {
                        4 => c.u32("stat value")? as u64,
                        8 => c.u64("stat value")?,
                        _ => return Err(BmpError::Malformed("stat TLV length not 4 or 8")),
                    };
                    stats.push(StatCounter { stat_type, value });
                }
                if c.remaining() != 0 {
                    return Err(BmpError::Malformed("trailing bytes after stats TLVs"));
                }
                Ok(BmpMessage::StatsReport { peer, stats })
            }
            MSG_PEER_DOWN => {
                let peer = get_peer_header(&mut c)?;
                let reason = c.u8("peer down reason")?;
                Ok(BmpMessage::PeerDown {
                    peer,
                    reason,
                    data: c.rest().to_vec(),
                })
            }
            MSG_PEER_UP => {
                let peer = get_peer_header(&mut c)?;
                let addr: [u8; 16] = c.take(16, "peer up local address")?.try_into().unwrap();
                let local_ip = if peer.flags & PEER_FLAG_V != 0 {
                    IpAddr::V6(Ipv6Addr::from(addr))
                } else {
                    IpAddr::V4(Ipv4Addr::new(addr[12], addr[13], addr[14], addr[15]))
                };
                let local_port = c.u16("peer up ports")?;
                let remote_port = c.u16("peer up ports")?;
                let (sent, used) = pdu_codec().decode(c.rest())?;
                c.take(used, "sent OPEN")?;
                let (recv, used) = pdu_codec().decode(c.rest())?;
                c.take(used, "received OPEN")?;
                match (sent, recv) {
                    (BgpMessage::Open(sent_open), BgpMessage::Open(recv_open)) => {
                        Ok(BmpMessage::PeerUp {
                            peer,
                            local_ip,
                            local_port,
                            remote_port,
                            sent_open,
                            recv_open,
                        })
                    }
                    _ => Err(BmpError::Malformed("peer up PDU is not an OPEN")),
                }
            }
            MSG_INITIATION => Ok(BmpMessage::Initiation {
                info: get_info_tlvs(&mut c)?,
            }),
            MSG_TERMINATION => Ok(BmpMessage::Termination {
                info: get_info_tlvs(&mut c)?,
            }),
            t => Err(BmpError::UnknownType(t)),
        }
    }

    /// Attach stream context to a body-level decode error, producing
    /// the per-message defect record callers log before resyncing.
    pub fn diagnostic(&self, error: BmpError) -> BmpDiagnostic {
        BmpDiagnostic {
            offset: self.offset,
            msg_type: self.msg_type,
            error,
        }
    }
}

/// A per-message defect: which message failed to decode, and why.
/// Produced by [`RawBmpMessage::diagnostic`]; the scanner itself has
/// already advanced past the message, so logging the diagnostic and
/// continuing *is* the resync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmpDiagnostic {
    /// Stream offset of the offending message's common header.
    pub offset: u64,
    /// Its claimed message type.
    pub msg_type: u8,
    /// What went wrong.
    pub error: BmpError,
}

impl fmt::Display for BmpDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BMP message at offset {} (type {}): {}",
            self.offset, self.msg_type, self.error
        )
    }
}

/// Validate one common header at the start of `data`.
///
/// `Ok(Some((len, msg_type)))` means a plausible frame of `len` total
/// bytes; `Ok(None)` means the header itself is incomplete (`data`
/// shorter than [`COMMON_HEADER_LEN`]); `Err` means the framing is
/// unrecoverable (wrong version, impossible length) and the stream
/// position cannot be trusted.
fn parse_common_header(data: &[u8]) -> Result<Option<(usize, u8)>, BmpError> {
    if data.len() < COMMON_HEADER_LEN {
        return Ok(None);
    }
    if data[0] != BMP_VERSION {
        return Err(BmpError::BadVersion(data[0]));
    }
    let len = u32::from_be_bytes(data[1..5].try_into().unwrap());
    if (len as usize) < COMMON_HEADER_LEN || len as usize > MAX_BMP_MESSAGE_LEN {
        return Err(BmpError::BadLength(len));
    }
    Ok(Some((len as usize, data[5])))
}

/// Zero-copy scan over a contiguous buffer of framed BMP messages.
///
/// Corruption handling mirrors `artemis_mrt::MrtScanner`:
///
/// * **Body-level** defects (unknown type, malformed body, bad inner
///   PDU) surface when the *caller* decodes a [`RawBmpMessage`]; the
///   scanner has already advanced to the next length-delimited
///   boundary, so skipping the message is a clean resync.
/// * **Header-level** defects (wrong version, impossible length,
///   truncated tail) are unrecoverable: the scanner returns the error
///   once and **fuses** — every subsequent call reports end-of-input,
///   so error-skipping iteration always terminates.
pub struct BmpScanner<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> BmpScanner<'a> {
    /// Scan `data` from the beginning.
    pub fn new(data: &'a [u8]) -> Self {
        BmpScanner { data, offset: 0 }
    }

    /// Current byte offset into the buffer.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    /// The next message's validated frame, without decoding the body.
    /// `Ok(None)` at end of input.
    pub fn next_raw(&mut self) -> Result<Option<RawBmpMessage<'a>>, BmpError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        let tail = &self.data[self.offset..];
        match parse_common_header(tail) {
            Ok(Some((len, msg_type))) => {
                if len > tail.len() {
                    return self.fail(BmpError::Truncated {
                        what: "message body",
                        need: len,
                        have: tail.len(),
                    });
                }
                let raw = RawBmpMessage {
                    offset: self.offset as u64,
                    msg_type,
                    body: &tail[COMMON_HEADER_LEN..len],
                };
                self.offset += len;
                Ok(Some(raw))
            }
            Ok(None) => self.fail(BmpError::Truncated {
                what: "common header",
                need: COMMON_HEADER_LEN,
                have: tail.len(),
            }),
            Err(e) => self.fail(e),
        }
    }

    /// Record an unrecoverable defect and fuse: the buffer is truncated
    /// at the current offset so every later call sees end-of-input.
    fn fail(&mut self, error: BmpError) -> Result<Option<RawBmpMessage<'a>>, BmpError> {
        self.data = &self.data[..self.offset];
        Err(error)
    }
}

impl<'a> Iterator for BmpScanner<'a> {
    type Item = Result<RawBmpMessage<'a>, BmpError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_raw().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::{AsPath, PathAttributes, Prefix, UpdateMessage};
    use std::str::FromStr;

    fn peer() -> PeerHeader {
        PeerHeader::global(
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            Asn(174),
            Ipv4Addr::new(10, 0, 0, 1),
            45_000_123,
        )
    }

    fn update() -> BgpMessage {
        BgpMessage::Update(UpdateMessage::announce(
            PathAttributes::with_path(
                AsPath::from_sequence([174u32, 666]),
                "192.0.2.10".parse().unwrap(),
            ),
            vec![Prefix::from_str("10.0.0.0/24").unwrap()],
        ))
    }

    fn all_messages() -> Vec<BmpMessage> {
        let open = OpenMessage {
            version: 4,
            asn: Asn(174),
            hold_time: 180,
            bgp_id: Ipv4Addr::new(10, 0, 0, 1),
            four_octet_capable: true,
        };
        vec![
            BmpMessage::Initiation {
                info: vec![InfoTlv::string(2, "rrc00"), InfoTlv::string(1, "artemis")],
            },
            BmpMessage::PeerUp {
                peer: peer(),
                local_ip: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)),
                local_port: 179,
                remote_port: 41000,
                sent_open: open.clone(),
                recv_open: open,
            },
            BmpMessage::RouteMonitoring {
                peer: peer(),
                update: update(),
            },
            BmpMessage::StatsReport {
                peer: peer(),
                stats: vec![
                    StatCounter {
                        stat_type: 0,
                        value: 12,
                    },
                    StatCounter {
                        stat_type: 7,
                        value: u64::MAX / 2,
                    },
                ],
            },
            BmpMessage::PeerDown {
                peer: peer(),
                reason: 2,
                data: vec![6],
            },
            BmpMessage::Termination {
                info: vec![InfoTlv::string(0, "bye")],
            },
        ]
    }

    #[test]
    fn all_message_types_round_trip() {
        let msgs = all_messages();
        let mut w = BmpWriter::new();
        for m in &msgs {
            w.write(m).unwrap();
        }
        let bytes = w.into_bytes();
        let decoded: Vec<BmpMessage> = BmpScanner::new(&bytes)
            .map(|r| r.unwrap().decode().unwrap())
            .collect();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn peer_header_round_trips_ipv6_and_timestamp() {
        let p = PeerHeader::global(
            IpAddr::V6("2001:db8::7".parse::<Ipv6Addr>().unwrap()),
            Asn(3356),
            Ipv4Addr::new(1, 2, 3, 4),
            9_000_007,
        );
        assert_eq!(p.timestamp_micros(), 9_000_007);
        let mut w = BmpWriter::new();
        w.write(&BmpMessage::RouteMonitoring {
            peer: p,
            update: update(),
        })
        .unwrap();
        let bytes = w.into_bytes();
        let raw = BmpScanner::new(&bytes).next_raw().unwrap().unwrap();
        match raw.decode().unwrap() {
            BmpMessage::RouteMonitoring { peer, .. } => {
                assert_eq!(peer, p);
                assert!(peer.peer_ip.is_ipv6());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scanner_resyncs_past_a_corrupt_body() {
        let mut w = BmpWriter::new();
        w.write(&BmpMessage::RouteMonitoring {
            peer: peer(),
            update: update(),
        })
        .unwrap();
        w.write(&BmpMessage::Termination {
            info: vec![InfoTlv::string(0, "x")],
        })
        .unwrap();
        let mut bytes = w.into_bytes();
        // Zero a byte of the inner BGP PDU's all-ones marker: the BMP
        // frame stays valid, the body does not.
        bytes[COMMON_HEADER_LEN + PEER_HEADER_LEN + 2] = 0;

        let mut scanner = BmpScanner::new(&bytes);
        let first = scanner.next_raw().unwrap().unwrap();
        let err = first.decode().unwrap_err();
        let diag = first.diagnostic(err);
        assert_eq!(diag.offset, 0);
        // The scanner already advanced: the next message decodes fine.
        let second = scanner.next_raw().unwrap().unwrap();
        assert!(matches!(
            second.decode().unwrap(),
            BmpMessage::Termination { .. }
        ));
        assert!(scanner.next_raw().unwrap().is_none());
    }

    #[test]
    fn scanner_fuses_on_bad_version_and_terminates() {
        let mut w = BmpWriter::new();
        w.write(&BmpMessage::Termination { info: vec![] }).unwrap();
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[9u8, 0, 0, 0, 6, 5]); // version 9 garbage
        let mut tail = BmpWriter::new();
        tail.write(&BmpMessage::Termination { info: vec![] })
            .unwrap();
        bytes.extend_from_slice(tail.as_bytes());

        let mut scanner = BmpScanner::new(&bytes);
        assert!(scanner.next_raw().unwrap().is_some());
        assert!(matches!(
            scanner.next_raw().unwrap_err(),
            BmpError::BadVersion(9)
        ));
        // Fused: the valid message after the garbage is unreachable,
        // but iteration terminates instead of looping.
        assert!(scanner.next_raw().unwrap().is_none());
        assert_eq!(BmpScanner::new(&bytes).filter_map(|r| r.ok()).count(), 1);
    }

    #[test]
    fn scanner_fuses_on_impossible_lengths() {
        for len in [0u32, 5, (MAX_BMP_MESSAGE_LEN as u32) + 1] {
            let mut bytes = vec![BMP_VERSION];
            bytes.extend_from_slice(&len.to_be_bytes());
            bytes.push(MSG_TERMINATION);
            bytes.extend_from_slice(&[0u8; 32]);
            let mut scanner = BmpScanner::new(&bytes);
            assert!(
                matches!(scanner.next_raw().unwrap_err(), BmpError::BadLength(l) if l == len),
                "len={len}"
            );
            assert!(scanner.next_raw().unwrap().is_none());
        }
    }

    #[test]
    fn truncated_tail_is_an_error_then_eof() {
        let mut w = BmpWriter::new();
        w.write(&BmpMessage::RouteMonitoring {
            peer: peer(),
            update: update(),
        })
        .unwrap();
        let bytes = w.into_bytes();
        // Cut mid-body and mid-header.
        for cut in [bytes.len() - 7, 3] {
            let mut scanner = BmpScanner::new(&bytes[..cut]);
            assert!(matches!(
                scanner.next_raw().unwrap_err(),
                BmpError::Truncated { .. }
            ));
            assert!(scanner.next_raw().unwrap().is_none());
        }
    }

    #[test]
    fn unknown_type_is_a_per_message_defect_not_a_stream_error() {
        let mut bytes = vec![BMP_VERSION, 0, 0, 0, 8, 77, 1, 2];
        let mut w = BmpWriter::new();
        w.write(&BmpMessage::Termination { info: vec![] }).unwrap();
        bytes.extend_from_slice(w.as_bytes());

        let mut scanner = BmpScanner::new(&bytes);
        let raw = scanner.next_raw().unwrap().unwrap();
        assert!(matches!(
            raw.decode().unwrap_err(),
            BmpError::UnknownType(77)
        ));
        // Length framing was honoured, so the stream resyncs.
        assert!(scanner.next_raw().unwrap().is_some());
        assert!(scanner.next_raw().unwrap().is_none());
    }

    #[test]
    fn route_monitoring_rejects_non_update_pdus() {
        let mut body = Vec::new();
        put_peer_header(&mut body, &peer());
        body.extend_from_slice(&pdu_codec().encode(&BgpMessage::Keepalive).unwrap());
        let mut bytes = vec![BMP_VERSION];
        bytes.extend_from_slice(&((COMMON_HEADER_LEN + body.len()) as u32).to_be_bytes());
        bytes.push(MSG_ROUTE_MONITORING);
        bytes.extend_from_slice(&body);
        let raw = BmpScanner::new(&bytes).next_raw().unwrap().unwrap();
        assert!(matches!(raw.decode().unwrap_err(), BmpError::Malformed(_)));
    }

    #[test]
    fn oversized_stat_counter_fails_encode() {
        let mut w = BmpWriter::new();
        let err = w
            .write(&BmpMessage::StatsReport {
                peer: peer(),
                stats: vec![StatCounter {
                    stat_type: 0,
                    value: u64::MAX,
                }],
            })
            .unwrap_err();
        assert!(matches!(err, BmpError::Malformed(_)));
    }
}
