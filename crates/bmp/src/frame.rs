//! Incremental BMP framing for a TCP byte stream.

use crate::wire::{BmpError, RawBmpMessage, BMP_VERSION, COMMON_HEADER_LEN, MAX_BMP_MESSAGE_LEN};

/// Reassembles framed BMP messages from arbitrarily chunked reads.
///
/// A socket reader pushes whatever `read()` returned via
/// [`FrameAssembler::push`] and then pulls every complete message with
/// [`FrameAssembler::next_message`]; partial frames stay buffered
/// until their remaining bytes arrive. Corrupt framing (wrong version,
/// impossible length) is **sticky**: the assembler fuses, the same
/// error is returned on every later call, and the connection should be
/// dropped — once a length field cannot be trusted there is no
/// in-stream way to find the next boundary.
///
/// Memory is bounded by construction: buffered bytes never exceed one
/// maximum message ([`MAX_BMP_MESSAGE_LEN`]) plus the largest chunk
/// ever pushed, because complete frames are consumed eagerly and a
/// length field beyond the maximum fuses instead of waiting.
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted away on `push`).
    start: usize,
    /// Total bytes consumed over the assembler's lifetime, for
    /// diagnostics offsets.
    consumed: u64,
    /// Terminal framing error, if the stream turned out corrupt.
    fused: Option<BmpError>,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        FrameAssembler::new()
    }
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler {
            buf: Vec::new(),
            start: 0,
            consumed: 0,
            fused: None,
        }
    }

    /// Append one chunk of received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.fused.is_some() {
            return; // corrupt stream: no point buffering more
        }
        // Compact consumed frames away before growing the buffer, so
        // buffered memory tracks the *unconsumed* tail only.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True once the assembler hit unrecoverable framing corruption.
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// The next complete message, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". `Err` is sticky (see type
    /// docs): the stream is corrupt and should be closed.
    pub fn next_message(&mut self) -> Result<Option<RawBmpMessage<'_>>, BmpError> {
        if let Some(e) = &self.fused {
            return Err(e.clone());
        }
        let tail = &self.buf[self.start..];
        if tail.len() < COMMON_HEADER_LEN {
            return Ok(None);
        }
        if tail[0] != BMP_VERSION {
            return self.fuse(BmpError::BadVersion(tail[0]));
        }
        let len = u32::from_be_bytes(tail[1..5].try_into().unwrap());
        if (len as usize) < COMMON_HEADER_LEN || len as usize > MAX_BMP_MESSAGE_LEN {
            return self.fuse(BmpError::BadLength(len));
        }
        let len = len as usize;
        if tail.len() < len {
            return Ok(None);
        }
        let msg_type = tail[5];
        let offset = self.consumed;
        let body_start = self.start + COMMON_HEADER_LEN;
        let body_end = self.start + len;
        self.start += len;
        self.consumed += len as u64;
        Ok(Some(RawBmpMessage {
            offset,
            msg_type,
            body: &self.buf[body_start..body_end],
        }))
    }

    fn fuse(&mut self, error: BmpError) -> Result<Option<RawBmpMessage<'_>>, BmpError> {
        self.buf.clear();
        self.start = 0;
        self.fused = Some(error.clone());
        Err(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BmpMessage, BmpWriter, InfoTlv};

    fn framed(n: usize) -> Vec<u8> {
        let mut w = BmpWriter::new();
        for i in 0..n {
            w.write(&BmpMessage::Initiation {
                info: vec![InfoTlv::string(2, &format!("collector-{i}"))],
            })
            .unwrap();
        }
        w.into_bytes()
    }

    #[test]
    fn reassembles_across_arbitrary_chunking() {
        let bytes = framed(5);
        // Every chunk size from pathological (1 byte) to everything.
        for chunk in [1, 2, 3, 7, bytes.len()] {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            for part in bytes.chunks(chunk) {
                asm.push(part);
                while let Some(raw) = asm.next_message().unwrap() {
                    got.push(raw.decode().unwrap());
                }
            }
            assert_eq!(got.len(), 5, "chunk={chunk}");
            assert_eq!(asm.buffered(), 0, "chunk={chunk}");
        }
    }

    #[test]
    fn partial_frame_waits_for_more_bytes() {
        let bytes = framed(1);
        let mut asm = FrameAssembler::new();
        asm.push(&bytes[..bytes.len() - 1]);
        assert!(asm.next_message().unwrap().is_none());
        asm.push(&bytes[bytes.len() - 1..]);
        assert!(asm.next_message().unwrap().is_some());
        assert!(asm.next_message().unwrap().is_none());
    }

    #[test]
    fn corrupt_framing_is_sticky_and_clears_the_buffer() {
        let mut asm = FrameAssembler::new();
        let mut bytes = framed(1);
        bytes[0] = 9; // wrong version
        asm.push(&bytes);
        assert!(matches!(
            asm.next_message().unwrap_err(),
            BmpError::BadVersion(9)
        ));
        assert!(asm.is_fused());
        assert_eq!(asm.buffered(), 0);
        // Later pushes are ignored and the error repeats: the caller
        // must drop the connection, not retry forever.
        asm.push(&framed(1));
        assert!(matches!(
            asm.next_message().unwrap_err(),
            BmpError::BadVersion(9)
        ));
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn oversized_length_field_fuses_instead_of_buffering() {
        let mut asm = FrameAssembler::new();
        let mut hdr = vec![3u8];
        hdr.extend_from_slice(&(MAX_BMP_MESSAGE_LEN as u32 + 1).to_be_bytes());
        hdr.push(0);
        asm.push(&hdr);
        assert!(matches!(
            asm.next_message().unwrap_err(),
            BmpError::BadLength(_)
        ));
        assert!(asm.is_fused());
    }

    #[test]
    fn offsets_count_the_whole_stream() {
        let bytes = framed(3);
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        let mut offsets = Vec::new();
        while let Some(raw) = asm.next_message().unwrap() {
            offsets.push(raw.offset);
        }
        assert_eq!(offsets.len(), 3);
        assert_eq!(offsets[0], 0);
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
    }
}
