//! Property: [`MonitorIndex`] routing is equivalent to a brute-force
//! scan over every `(target, alert)` pair, under arbitrary churn.
//!
//! The index replaces the pipeline's historical full-registry
//! relevance scan, so its contract is exactly the scan's predicate:
//! an alert is relevant to an event iff its target contains the event
//! prefix **or** the event prefix contains the target. The generator
//! drives nested and disjoint targets from a fixed prefix pool
//! (covering /8 down to /25, including sub-prefix relations), mixed
//! insert/remove churn, and queries from the same pool — so exact
//! matches, strict less-specifics, strict more-specifics, and
//! unrelated prefixes all occur.

use artemis_bgp::Prefix;
use artemis_core::{AlertId, MonitorIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Nested/disjoint prefix pool: 10.0.0.0/8 ⊃ /16 ⊃ /23 ⊃ {/24, 10.0.1.0/24 ⊃ /25},
/// a second nest under 172.16.0.0/22, and two standalone /24s.
const POOL: [&str; 12] = [
    "10.0.0.0/8",
    "10.0.0.0/16",
    "10.0.0.0/23",
    "10.0.0.0/24",
    "10.0.1.0/24",
    "10.0.1.128/25",
    "172.16.0.0/22",
    "172.16.1.0/24",
    "172.16.2.0/25",
    "192.0.2.0/24",
    "8.8.8.0/24",
    "198.51.100.0/24",
];

fn prefix(idx: u8) -> Prefix {
    POOL[idx as usize % POOL.len()].parse().unwrap()
}

/// The predicate the pipeline's historical full scan applied per
/// monitor (see `MonitorService::is_relevant`).
fn brute_force_route(model: &BTreeMap<AlertId, Prefix>, query: Prefix) -> Vec<AlertId> {
    model
        .iter()
        .filter(|(_, target)| target.contains(query) || query.contains(**target))
        .map(|(id, _)| *id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each op triple is `(insert?, target slot, alert id)`; after
    /// every op, every pool prefix must route identically to the
    /// brute-force scan over the model registry.
    #[test]
    fn routing_matches_brute_force_scan_under_churn(
        ops in prop::collection::vec((any::<bool>(), 0u8..=255, 0u64..40), 1..60),
    ) {
        let mut index = MonitorIndex::new();
        let mut model: BTreeMap<AlertId, Prefix> = BTreeMap::new();
        let mut route = Vec::new();
        for (insert, slot, raw_id) in ops {
            let target = prefix(slot);
            let id = AlertId(raw_id);
            if insert {
                // One alert maps to one target: mirror the pipeline,
                // which indexes each alert under its owned prefix
                // exactly once for its whole lifetime.
                if let std::collections::btree_map::Entry::Vacant(e) = model.entry(id) {
                    e.insert(target);
                    index.insert(target, id);
                }
            } else if model.get(&id) == Some(&target) {
                prop_assert!(index.remove(target, id), "indexed alert must remove");
                model.remove(&id);
            } else {
                // Removing a pair that was never indexed is a no-op.
                prop_assert!(!index.remove(target, id));
            }
            prop_assert_eq!(index.len(), model.len());

            for q in 0..POOL.len() as u8 {
                let query = prefix(q);
                index.route(query, &mut route);
                let expected = brute_force_route(&model, query);
                prop_assert_eq!(
                    &route, &expected,
                    "query {} diverged from brute force", query
                );
            }
        }
    }

    /// Covering-set shards partition the indexed alerts, and targets
    /// in *different* shards never nest — the property the staged
    /// ingest relies on to give every worker a self-contained
    /// containment component.
    #[test]
    fn covering_shards_partition_without_cross_shard_nesting(
        pairs in prop::collection::vec((0u8..=255, 0u64..40), 0..40),
    ) {
        let mut index = MonitorIndex::new();
        let mut model: BTreeMap<AlertId, Prefix> = BTreeMap::new();
        for (slot, raw_id) in pairs {
            let id = AlertId(raw_id);
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(id) {
                e.insert(prefix(slot));
                index.insert(prefix(slot), id);
            }
        }

        let shards = index.covering_shards();
        let mut seen: Vec<AlertId> = shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut all: Vec<AlertId> = model.keys().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(seen, all, "shards must partition the indexed alerts");

        for (i, a) in shards.iter().enumerate() {
            for b in shards.iter().skip(i + 1) {
                for ia in a {
                    for ib in b {
                        let (ta, tb) = (model[ia], model[ib]);
                        prop_assert!(
                            !ta.contains(tb) && !tb.contains(ta),
                            "targets {} and {} nest across shards", ta, tb
                        );
                    }
                }
            }
        }
    }
}
