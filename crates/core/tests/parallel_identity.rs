//! Property: the parallel detection pipeline is **byte-identical** to
//! the sequential one on arbitrary event mixes.
//!
//! The fleet-level test (`tests/pipeline_multi_prefix.rs` at the
//! workspace root) drives full simulated-Internet scenarios where
//! batches are per-emission-instant; this suite attacks the other
//! regime — one huge multi-instant backlog drained through
//! [`Pipeline::deliver_due`] — with randomized traffic: benign noise,
//! exact/sub-prefix hijacks, forged origins, withdrawals, and
//! mitigation echoes that mutate shard rules mid-batch (the dirty-
//! shard recompute path).

use artemis_bgp::{AsPath, Asn};
use artemis_bgpsim::{BestRoute, RouteChange};
use artemis_core::config::OwnedPrefix;
use artemis_core::{ArtemisConfig, EventCursor, Pipeline, PipelineConfig};
use artemis_feeds::vantage::group_into_collectors;
use artemis_feeds::{FeedHub, StreamFeed};
use artemis_simnet::{LatencyModel, SimRng, SimTime};
use artemis_topology::RelKind;
use proptest::prelude::*;

fn pipeline(
    seed: u64,
    workers: usize,
    threshold: usize,
) -> (Pipeline, artemis_controller::Controller) {
    let vps = vec![Asn(174), Asn(3356), Asn(2914)];
    let mut hub = FeedHub::new(SimRng::new(seed));
    hub.add(Box::new(
        StreamFeed::ris_live(group_into_collectors("rrc", &vps, 2))
            .with_export_delay(LatencyModel::uniform_secs(2, 8)),
    ));
    hub.add(Box::new(
        StreamFeed::bgpmon(group_into_collectors("bmon", &vps, 1))
            .with_export_delay(LatencyModel::const_secs(12)),
    ));
    let config = ArtemisConfig::new(
        Asn(65001),
        vec![
            OwnedPrefix::new("10.0.0.0/23".parse().unwrap(), Asn(65001)),
            // Nested inside 10.0.0.0/23: concurrent incidents on the
            // pair produce nested monitor targets, so the staged
            // commit's covering-set shards actually share events.
            OwnedPrefix::new("10.0.1.0/24".parse().unwrap(), Asn(65001)),
            OwnedPrefix::new("172.16.0.0/22".parse().unwrap(), Asn(65001)),
            OwnedPrefix::new("192.0.2.0/24".parse().unwrap(), Asn(65001)),
            OwnedPrefix::new("203.0.113.0/24".parse().unwrap(), Asn(65001)).dormant(),
        ],
    );
    let p = Pipeline::new(
        hub,
        config,
        [Asn(174), Asn(3356), Asn(2914)].into_iter().collect(),
    )
    .with_pipeline_config(PipelineConfig {
        workers,
        parallel_threshold: threshold,
    });
    let ctrl = artemis_controller::Controller::new(
        Asn(65001),
        LatencyModel::const_secs(15),
        SimRng::new(seed ^ 0xC0),
    );
    (p, ctrl)
}

/// Decode one randomized `(kind, slot, t)` triple into a route change.
fn change(kind: u8, slot: u8, t: u64) -> RouteChange {
    let vantage = [Asn(174), Asn(3356), Asn(2914)][(slot % 3) as usize];
    let (prefix, origin): (&str, u32) = match kind % 10 {
        0 => ("10.0.0.0/23", 65001),     // benign exact
        1 => ("10.0.0.0/23", 666),       // exact-origin hijack
        2 => ("10.0.0.0/24", 666),       // sub-prefix hijack
        3 => ("172.16.1.0/24", 65001),   // forged-origin sub-prefix
        4 => ("192.0.2.0/24", 667),      // /24 hijack (infeasible deagg)
        5 => ("203.0.113.0/24", 31337),  // squat on the dormant prefix
        6 => ("8.8.8.0/24", 15169),      // unrelated noise
        7 => ("10.0.1.0/24", 666),       // hijack on the nested owned /24
        8 => ("10.0.1.0/24", 65001),     // benign on the nested owned /24
        _ => ("198.51.100.0/24", 65001), // unrelated, "our" origin
    };
    let withdrawal = kind >= 240; // rare withdrawals
    let path = AsPath::from_sequence([vantage.value(), 3356, origin]);
    RouteChange {
        time: SimTime::from_micros(t),
        asn: vantage,
        prefix: prefix.parse().unwrap(),
        old: if withdrawal {
            Some(BestRoute {
                origin_as: path.origin().unwrap(),
                as_path: path.clone(),
                neighbor: Some(Asn(3356)),
                learned_from: Some(RelKind::Provider),
                local_pref: 100,
            })
        } else {
            None
        },
        new: if withdrawal {
            None
        } else {
            Some(BestRoute {
                origin_as: path.origin().unwrap(),
                as_path: path,
                neighbor: Some(Asn(3356)),
                learned_from: Some(RelKind::Provider),
                local_pref: 100,
            })
        },
    }
}

fn run(
    seed: u64,
    workers: usize,
    threshold: usize,
    spec: &[(u8, u8, u64)],
) -> (String, String, String, u64) {
    let (mut p, mut ctrl) = pipeline(seed, workers, threshold);
    let mut changes: Vec<RouteChange> = spec.iter().map(|(k, s, t)| change(*k, *s, *t)).collect();
    changes.sort_by_key(|c| c.time);
    p.ingest_route_changes(&changes);
    let delivered = p.deliver_due(SimTime::from_secs(1 << 40), &mut ctrl, &mut []);
    let history = serde_json::to_string(&p.poll_events(EventCursor::START).events).unwrap();
    let alerts = format!("{:?}", p.detector().alerts().all());
    // Active monitor state and retired timelines: the staged commit
    // checks monitors out of the registry, ingests them (possibly on
    // worker threads) and merges them back — their per-vantage state
    // and retirement records must come back byte-identical.
    let monitors = format!(
        "{:?} | {:?}",
        p.monitors().collect::<Vec<_>>(),
        p.retired_monitors().collect::<Vec<_>>()
    );
    (history, alerts, monitors, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_backlog_drain_matches_sequential(
        seed in 1u64..10_000,
        spec in prop::collection::vec((0u8..=255, 0u8..=255, 0u64..5_000_000), 1..300),
        workers_idx in 0usize..3,
        threshold in 1usize..64,
    ) {
        let workers = [2usize, 4, 8][workers_idx];
        let sequential = run(seed, 1, threshold, &spec);
        let parallel = run(seed, workers, threshold, &spec);
        prop_assert_eq!(&sequential.0, &parallel.0, "event-log history differs");
        prop_assert_eq!(&sequential.1, &parallel.1, "alert store differs");
        prop_assert_eq!(&sequential.2, &parallel.2, "monitor/retired state differs");
        prop_assert_eq!(sequential.3, parallel.3, "delivered count differs");
    }
}
