//! Round-trip property tests locking the wire contract: every
//! [`ServiceCommand`], [`CommandOutcome`], and [`ServiceError`] the
//! in-process API can produce survives JSON serialization unchanged,
//! wrapped in the versioned envelopes the daemon speaks. A lossy wire
//! layer would show up here as a failed equality, not as a silent
//! behavioural drift in the daemon.

use artemis_bgp::{Asn, Prefix};
use artemis_core::pipeline::OffboardReport;
use artemis_core::wire::{
    CommandEnvelope, CommandResult, OutcomeEnvelope, QueryEnvelope, SCHEMA_VERSION,
};
use artemis_core::{
    AlertId, CommandOutcome, MitigationPlan, MitigationPolicy, OwnedPrefix, ServiceCommand,
    ServiceError, ServiceQuery,
};
use artemis_feeds::{FeedHandle, FeedSpec};
use artemis_simnet::SimTime;
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u8..=24u8, any::<u32>()).prop_map(|(len, bits)| {
        let masked = if len == 0 {
            0
        } else {
            bits & (u32::MAX << (32 - len))
        };
        let octets = masked.to_be_bytes();
        format!(
            "{}.{}.{}.{}/{}",
            octets[0], octets[1], octets[2], octets[3], len
        )
        .parse()
        .expect("masked prefix is valid")
    })
}

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..100_000).prop_map(Asn)
}

fn arb_handle() -> impl Strategy<Value = FeedHandle> {
    // FeedHandle's constructor is the hub; the wire representation is
    // its bare id, so an arbitrary handle deserializes from a number.
    any::<u64>().prop_map(|n| serde_json::from_str(&n.to_string()).expect("bare id"))
}

fn arb_policy() -> impl Strategy<Value = MitigationPolicy> {
    prop_oneof![
        Just(MitigationPolicy::Auto),
        Just(MitigationPolicy::ConfirmFirst),
        Just(MitigationPolicy::DetectOnly),
    ]
}

fn arb_owned() -> impl Strategy<Value = OwnedPrefix> {
    (
        arb_prefix(),
        arb_asn(),
        prop::collection::vec(arb_asn(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(prefix, origin, neighbors, dormant)| {
            let mut owned = OwnedPrefix::new(prefix, origin).with_neighbors(neighbors);
            if dormant {
                owned = owned.dormant();
            }
            owned
        })
}

fn arb_feed_spec() -> impl Strategy<Value = FeedSpec> {
    (
        "[a-z]{2,6}",
        prop::collection::vec(arb_asn(), 1..5),
        1usize..4,
        prop::option::of(0u64..120),
        any::<bool>(),
    )
        .prop_map(|(prefix, vps, collectors, delay, ris)| {
            if ris {
                FeedSpec::RisLive {
                    collector_prefix: prefix,
                    vantage_points: vps,
                    collectors,
                    export_delay_secs: delay,
                }
            } else {
                FeedSpec::BgpMon {
                    collector_prefix: prefix,
                    vantage_points: vps,
                    collectors,
                    export_delay_secs: delay,
                }
            }
        })
}

fn arb_command() -> impl Strategy<Value = ServiceCommand> {
    prop_oneof![
        (arb_owned(), prop::option::of(arb_policy()))
            .prop_map(|(owned, policy)| ServiceCommand::AddOwnedPrefix { owned, policy }),
        arb_prefix().prop_map(|prefix| ServiceCommand::RemoveOwnedPrefix { prefix }),
        arb_feed_spec().prop_map(|feed| ServiceCommand::AttachFeed { feed }),
        arb_handle().prop_map(|handle| ServiceCommand::DetachFeed { handle }),
        (arb_prefix(), arb_policy())
            .prop_map(|(prefix, policy)| ServiceCommand::SetMitigationPolicy { prefix, policy }),
        any::<u64>().prop_map(|n| ServiceCommand::ConfirmMitigation { alert: AlertId(n) }),
        Just(ServiceCommand::Pause),
        Just(ServiceCommand::Resume),
    ]
}

fn arb_plan() -> impl Strategy<Value = MitigationPlan> {
    (
        arb_prefix(),
        prop::collection::vec(arb_prefix(), 0..3),
        prop::collection::vec((arb_asn(), arb_prefix()), 0..3),
        any::<bool>(),
        "[ -~]{0,40}",
    )
        .prop_map(
            |(target, announce, helper_announce, infeasible, rationale)| MitigationPlan {
                target,
                announce,
                helper_announce,
                infeasible,
                rationale,
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = CommandOutcome> {
    prop_oneof![
        arb_prefix().prop_map(|prefix| CommandOutcome::PrefixAdded { prefix }),
        (
            arb_owned(),
            prop::collection::vec(any::<u64>(), 0..4),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(owned, alerts, withdrawn, shard)| {
                CommandOutcome::PrefixRemoved(OffboardReport {
                    owned,
                    closed_alerts: alerts.into_iter().map(AlertId).collect(),
                    withdrawn_plans: withdrawn as usize,
                    shard_events: shard,
                })
            }),
        arb_handle().prop_map(|handle| CommandOutcome::FeedAttached { handle }),
        (arb_handle(), any::<u32>()).prop_map(|(handle, n)| CommandOutcome::FeedDetached {
            handle,
            dropped_events: n as usize,
        }),
        (arb_prefix(), arb_policy())
            .prop_map(|(prefix, policy)| CommandOutcome::PolicySet { prefix, policy }),
        (any::<u64>(), arb_plan()).prop_map(|(n, plan)| CommandOutcome::MitigationConfirmed {
            alert: AlertId(n),
            plan,
        }),
        Just(CommandOutcome::Paused),
        prop::collection::vec(any::<u64>(), 0..4).prop_map(|alerts| CommandOutcome::Resumed {
            executed_alerts: alerts.into_iter().map(AlertId).collect(),
        }),
    ]
}

fn arb_error() -> impl Strategy<Value = ServiceError> {
    prop_oneof![
        arb_prefix().prop_map(ServiceError::UnknownPrefix),
        arb_prefix().prop_map(ServiceError::DuplicatePrefix),
        arb_handle().prop_map(ServiceError::UnknownFeed),
        any::<u64>().prop_map(|n| ServiceError::NothingPending(AlertId(n))),
        Just(ServiceError::AlreadyPaused),
        Just(ServiceError::NotPaused),
    ]
}

proptest! {
    /// Every command survives the command envelope byte-exactly.
    #[test]
    fn commands_round_trip(cmd in arb_command(), at in prop::option::of(0u64..1_000_000)) {
        let mut env = CommandEnvelope::new(cmd);
        if let Some(t) = at {
            env = env.at(SimTime::from_secs(t));
        }
        let json = serde_json::to_string(&env).expect("serialize");
        let back: CommandEnvelope = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back.schema_version, SCHEMA_VERSION);
        prop_assert_eq!(back, env);
    }

    /// Every outcome and every typed rejection survive the outcome
    /// envelope byte-exactly.
    #[test]
    fn outcomes_round_trip(
        result in prop_oneof![arb_outcome().prop_map(Ok), arb_error().prop_map(Err)],
        at in 0u64..1_000_000,
    ) {
        let env = OutcomeEnvelope::new(SimTime::from_secs(at), result.clone());
        let json = serde_json::to_string(&env).expect("serialize");
        let back: OutcomeEnvelope = serde_json::from_str(&json).expect("deserialize");
        match (back.result, result) {
            (CommandResult::Outcome(b), Ok(o)) => prop_assert_eq!(b, o),
            (CommandResult::Rejected(b), Err(e)) => prop_assert_eq!(b, e),
            (got, want) => prop_assert!(false, "variant mismatch: {got:?} vs {want:?}"),
        }
    }

    /// Queries round-trip through their envelope.
    #[test]
    fn queries_round_trip(
        query in prop_oneof![
            Just(ServiceQuery::Status),
            Just(ServiceQuery::OwnedPrefixes),
            Just(ServiceQuery::Incidents),
            Just(ServiceQuery::Feeds),
        ],
    ) {
        let env = QueryEnvelope::new(query);
        let json = serde_json::to_string(&env).expect("serialize");
        let back: QueryEnvelope = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, env);
    }
}
