//! Property tests for the detector: no false positives on legitimate
//! traffic, no false negatives on hijacks, dedup sanity.

use artemis_bgp::{AsPath, Asn, Prefix};
use artemis_core::detector::Detection;
use artemis_core::{ArtemisConfig, Detector, OwnedPrefix};
use artemis_feeds::{FeedEvent, FeedKind};
use artemis_simnet::SimTime;
use proptest::prelude::*;

const VICTIM: u32 = 65_001;
const UPSTREAM_A: u32 = 174;
const UPSTREAM_B: u32 = 3_356;

fn config() -> ArtemisConfig {
    ArtemisConfig::new(
        Asn(VICTIM),
        vec![
            OwnedPrefix::new("10.0.0.0/23".parse().expect("valid"), Asn(VICTIM))
                .with_neighbors([Asn(UPSTREAM_A), Asn(UPSTREAM_B)]),
        ],
    )
}

fn event(prefix: Prefix, path: Vec<u32>, t: u64) -> FeedEvent {
    let as_path = AsPath::from_sequence(path.iter().copied());
    FeedEvent {
        emitted_at: SimTime::from_secs(t),
        observed_at: SimTime::from_secs(t),
        source: FeedKind::RisLive,
        collector: "rrc00".into(),
        vantage: Asn(path[0]),
        prefix,
        origin_as: as_path.origin(),
        as_path: Some(as_path),
        raw: None,
    }
}

/// Middle-of-path ASNs (not the victim, not reserved).
fn arb_transit() -> impl Strategy<Value = u32> {
    (1u32..60_000).prop_filter("not victim/upstream", |a| {
        *a != VICTIM && *a != UPSTREAM_A && *a != UPSTREAM_B
    })
}

proptest! {
    /// Announcements of the owned prefix with the legitimate origin
    /// through a known upstream never alert, whatever the transit tail.
    #[test]
    fn no_false_positives_on_legit_paths(
        transit in prop::collection::vec(arb_transit(), 0..4),
        upstream in prop_oneof![Just(UPSTREAM_A), Just(UPSTREAM_B)],
        t in 1u64..10_000,
    ) {
        let mut d = Detector::new(config());
        let mut path = vec![9_999u32]; // vantage
        path.extend(transit.iter().copied().filter(|a| *a != 9_999));
        path.push(upstream);
        path.push(VICTIM);
        let ev = event("10.0.0.0/23".parse().expect("valid"), path, t);
        prop_assert_eq!(d.process(&ev), Detection::Benign);
        prop_assert_eq!(d.alerts().all().len(), 0);
    }

    /// Any exact-prefix announcement whose origin is not the victim
    /// always raises exactly one alert, whatever the path shape.
    #[test]
    fn no_false_negatives_on_origin_hijacks(
        attacker in arb_transit(),
        transit in prop::collection::vec(arb_transit(), 0..4),
        t in 1u64..10_000,
    ) {
        let mut d = Detector::new(config());
        let mut path = vec![9_999u32];
        path.extend(transit.iter().copied());
        path.push(attacker);
        let ev = event("10.0.0.0/23".parse().expect("valid"), path, t);
        match d.process(&ev) {
            Detection::NewAlert(_) => {}
            other => prop_assert!(false, "expected alert, got {:?}", other),
        }
        prop_assert_eq!(d.alerts().all().len(), 1);
    }

    /// Sub-prefix announcements of owned space by third parties always
    /// alert, at any more-specific length.
    #[test]
    fn subprefix_hijacks_always_alert(
        attacker in arb_transit(),
        len in 24u8..=28,
        half in 0u8..=1,
        t in 1u64..10_000,
    ) {
        let mut d = Detector::new(config());
        // A more-specific inside 10.0.0.0/23.
        let base: u32 = (10 << 24) | ((half as u32) << 8); // 10.0.0.0 or 10.0.1.0
        let sub = Prefix::v4(std::net::Ipv4Addr::from(base), len).expect("valid");
        let ev = event(sub, vec![9_999, attacker], t);
        match d.process(&ev) {
            Detection::NewAlert(id) => {
                let alert = d.alerts().get(id).expect("stored");
                prop_assert_eq!(alert.observed_prefix, sub);
                prop_assert_eq!(
                    alert.owned_prefix,
                    "10.0.0.0/23".parse::<Prefix>().expect("valid")
                );
            }
            other => prop_assert!(false, "expected alert, got {:?}", other),
        }
    }

    /// Processing the same hijack observation repeatedly never creates
    /// more than one alert (dedup is idempotent), and witnesses
    /// accumulate monotonically.
    #[test]
    fn dedup_is_idempotent(
        attacker in arb_transit(),
        vantages in prop::collection::vec(1u32..60_000, 1..10),
        t in 1u64..10_000,
    ) {
        let mut d = Detector::new(config());
        for (i, vp) in vantages.iter().enumerate() {
            let ev = event(
                "10.0.0.0/23".parse().expect("valid"),
                vec![*vp, attacker],
                t + i as u64,
            );
            d.process(&ev);
        }
        prop_assert_eq!(d.alerts().all().len(), 1);
        let alert = &d.alerts().all()[0];
        let uniq: std::collections::BTreeSet<u32> =
            vantages.iter().copied().collect();
        prop_assert_eq!(alert.vantage_points.len(), uniq.len());
        // Detection time is the first event's.
        prop_assert_eq!(alert.detected_at, SimTime::from_secs(t));
    }

    /// Events about unrelated address space never alert, whatever the
    /// origin.
    #[test]
    fn unrelated_space_is_ignored(
        addr in any::<u32>(),
        len in 8u8..=24,
        origin in arb_transit(),
        t in 1u64..10_000,
    ) {
        let prefix = Prefix::v4(std::net::Ipv4Addr::from(addr), len).expect("valid");
        // Skip anything overlapping the owned /23.
        let owned: Prefix = "10.0.0.0/23".parse().expect("valid");
        prop_assume!(!prefix.overlaps(owned));
        let mut d = Detector::new(config());
        let ev = event(prefix, vec![9_999, origin], t);
        prop_assert_eq!(d.process(&ev), Detection::Benign);
    }
}
