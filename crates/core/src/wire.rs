//! Versioned wire envelopes for the control-plane API.
//!
//! The daemon's HTTP/JSON API carries exactly the in-process types —
//! [`ServiceCommand`], [`CommandOutcome`], [`ServiceError`],
//! [`ServiceQuery`], [`IncidentEvent`] — wrapped in the envelopes
//! defined here. Every envelope leads with a `schema_version` field so
//! both sides can reject a contract mismatch instead of
//! misinterpreting payloads; round-trip property tests lock the wire
//! representation against the in-process API (lossless by
//! construction).

use crate::event_log::{EventCursor, IncidentEvent, PollBatch};
use crate::service::{CommandOutcome, ServiceCommand, ServiceError, ServiceQuery};
use artemis_feeds::FeedEvent;
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// Version of the wire contract. Bump on any breaking change to the
/// envelopes or the types they carry.
pub const SCHEMA_VERSION: u32 = 1;

/// A [`ServiceCommand`] as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandEnvelope {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Service-clock instant to apply the command at. `None` lets the
    /// daemon stamp its own clock; setting it explicitly makes
    /// HTTP-driven histories reproducible (the byte-identity tests
    /// rely on this).
    pub at: Option<SimTime>,
    /// The command itself — the exact in-process type.
    pub command: ServiceCommand,
}

impl CommandEnvelope {
    /// Wrap a command at the current schema version, with no explicit
    /// timestamp.
    pub fn new(command: ServiceCommand) -> Self {
        CommandEnvelope {
            schema_version: SCHEMA_VERSION,
            at: None,
            command,
        }
    }

    /// Pin the command to an explicit service-clock instant.
    pub fn at(mut self, at: SimTime) -> Self {
        self.at = Some(at);
        self
    }
}

/// What applying a wire command produced — success or typed rejection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandResult {
    /// The command applied; this is what it did.
    Outcome(CommandOutcome),
    /// The command was rejected; nothing changed.
    Rejected(ServiceError),
}

/// The daemon's reply to a [`CommandEnvelope`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeEnvelope {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The instant the command was applied at.
    pub at: SimTime,
    /// Success or typed rejection.
    pub result: CommandResult,
}

impl OutcomeEnvelope {
    /// Wrap an application result at the current schema version.
    pub fn new(at: SimTime, result: Result<CommandOutcome, ServiceError>) -> Self {
        OutcomeEnvelope {
            schema_version: SCHEMA_VERSION,
            at,
            result: match result {
                Ok(outcome) => CommandResult::Outcome(outcome),
                Err(err) => CommandResult::Rejected(err),
            },
        }
    }
}

/// A [`ServiceQuery`] as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEnvelope {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Snapshot instant; `None` lets the daemon stamp its own clock.
    pub at: Option<SimTime>,
    /// The query itself — the exact in-process type.
    pub query: ServiceQuery,
}

impl QueryEnvelope {
    /// Wrap a query at the current schema version.
    pub fn new(query: ServiceQuery) -> Self {
        QueryEnvelope {
            schema_version: SCHEMA_VERSION,
            at: None,
            query,
        }
    }
}

/// One long-poll batch from the event log, as sent over the wire.
/// Mirrors [`PollBatch`] plus the schema version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsEnvelope {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Everything recorded since the consumer's cursor, oldest first.
    pub events: Vec<IncidentEvent>,
    /// Cursor to resume from.
    pub next: EventCursor,
    /// Events that aged out of the ring before this poll — surfaced,
    /// never silently skipped.
    pub missed: u64,
}

impl From<PollBatch> for EventsEnvelope {
    fn from(batch: PollBatch) -> Self {
        EventsEnvelope {
            schema_version: SCHEMA_VERSION,
            events: batch.events,
            next: batch.next,
            missed: batch.missed,
        }
    }
}

/// A batch of monitoring events injected over the wire (deployments
/// that bring their own transport feed the detector through this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectEnvelope {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The events to deliver, in order.
    pub events: Vec<FeedEvent>,
}

impl InjectEnvelope {
    /// Wrap events at the current schema version.
    pub fn new(events: Vec<FeedEvent>) -> Self {
        InjectEnvelope {
            schema_version: SCHEMA_VERSION,
            events,
        }
    }
}

/// What an [`InjectEnvelope`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectOutcome {
    /// Wire-contract version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Events delivered to the detector.
    pub delivered: u64,
    /// New alerts raised while delivering them.
    pub alerts_raised: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertId;
    use crate::config::OwnedPrefix;
    use crate::mitigation::MitigationPolicy;
    use artemis_bgp::{Asn, Prefix};
    use artemis_feeds::FeedSpec;
    use std::str::FromStr;

    #[test]
    fn command_envelope_round_trips() {
        let env = CommandEnvelope::new(ServiceCommand::AddOwnedPrefix {
            owned: OwnedPrefix::new(Prefix::from_str("10.0.0.0/23").unwrap(), Asn(65001)),
            policy: Some(MitigationPolicy::ConfirmFirst),
        })
        .at(SimTime::from_secs(7));
        let json = serde_json::to_string(&env).unwrap();
        let back: CommandEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn attach_feed_command_is_wire_representable() {
        let env = CommandEnvelope::new(ServiceCommand::AttachFeed {
            feed: FeedSpec::ris_live("rrc", vec![Asn(174), Asn(3356)]),
        });
        let json = serde_json::to_string(&env).unwrap();
        let back: CommandEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn outcome_envelope_carries_typed_rejections() {
        let env = OutcomeEnvelope::new(
            SimTime::from_secs(1),
            Err(ServiceError::NothingPending(AlertId(4))),
        );
        let json = serde_json::to_string(&env).unwrap();
        let back: OutcomeEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.result,
            CommandResult::Rejected(ServiceError::NothingPending(AlertId(4)))
        );
    }

    #[test]
    fn events_envelope_mirrors_poll_batch() {
        let batch = PollBatch {
            events: vec![IncidentEvent::MitigationPaused {
                at: SimTime::from_secs(3),
            }],
            next: EventCursor::START,
            missed: 2,
        };
        let env: EventsEnvelope = batch.into();
        assert_eq!(env.missed, 2);
        let json = serde_json::to_string(&env).unwrap();
        let back: EventsEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }
}
