//! Hijack classification.
//!
//! The demo paper detects "an announcement with an illegitimate origin
//! AS" (§3). We classify along the standard taxonomy (formalized in
//! the authors' follow-up work) so mitigation can pick the right
//! response; the extra classes are documented extensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of hijacking incident detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HijackType {
    /// Exact-prefix announcement with an illegitimate origin (Type-0 /
    /// origin hijack — the event the paper's experiments perform).
    ExactOrigin,
    /// A more-specific of an owned prefix announced by an illegitimate
    /// origin (sub-prefix hijack — attracts *all* traffic by LPM).
    SubPrefix,
    /// A more-specific announced with the *legitimate* origin but not
    /// by us (attacker prepends the victim's AS to evade origin
    /// checks while still winning by LPM).
    SubPrefixForgedOrigin,
    /// Exact prefix, legitimate origin, but the hop adjacent to the
    /// origin is not a known neighbor (Type-1 / fake first-hop).
    Type1FakeNeighbor,
    /// An announcement for a dormant (owned but unannounced) prefix.
    Squatting,
}

impl HijackType {
    /// Whether prefix de-aggregation is the appropriate mitigation
    /// (LPM-beatable incidents).
    pub fn deaggregation_applies(self) -> bool {
        match self {
            HijackType::ExactOrigin
            | HijackType::SubPrefix
            | HijackType::SubPrefixForgedOrigin
            | HijackType::Squatting => true,
            HijackType::Type1FakeNeighbor => true, // still competes on specificity
        }
    }

    /// Relative severity for alert ordering (higher = worse).
    pub fn severity(self) -> u8 {
        match self {
            HijackType::SubPrefix | HijackType::SubPrefixForgedOrigin => 3,
            HijackType::ExactOrigin | HijackType::Squatting => 2,
            HijackType::Type1FakeNeighbor => 1,
        }
    }
}

impl fmt::Display for HijackType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HijackType::ExactOrigin => write!(f, "exact-prefix origin hijack"),
            HijackType::SubPrefix => write!(f, "sub-prefix hijack"),
            HijackType::SubPrefixForgedOrigin => write!(f, "sub-prefix hijack (forged origin)"),
            HijackType::Type1FakeNeighbor => write!(f, "Type-1 fake-neighbor hijack"),
            HijackType::Squatting => write!(f, "prefix squatting"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(HijackType::SubPrefix.severity() > HijackType::ExactOrigin.severity());
        assert!(HijackType::ExactOrigin.severity() > HijackType::Type1FakeNeighbor.severity());
    }

    #[test]
    fn display_is_descriptive() {
        assert!(HijackType::ExactOrigin.to_string().contains("origin"));
        assert!(HijackType::Squatting.to_string().contains("squat"));
    }

    #[test]
    fn deaggregation_applicability() {
        for t in [
            HijackType::ExactOrigin,
            HijackType::SubPrefix,
            HijackType::SubPrefixForgedOrigin,
            HijackType::Type1FakeNeighbor,
            HijackType::Squatting,
        ] {
            assert!(t.deaggregation_applies());
        }
    }
}
