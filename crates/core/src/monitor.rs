//! The monitoring service: per-vantage-point origin tracking.
//!
//! "In parallel to the mitigation, a monitoring service is running to
//! provide real-time information about the mitigation process." (§2)
//! The demo (§4) visualizes vantage points around the globe switching
//! between the legitimate and illegitimate origin — this module keeps
//! that state and declares the incident resolved when every vantage
//! point routes to a legitimate origin again.

use artemis_bgp::{Asn, Prefix};
use artemis_feeds::FeedEvent;
use artemis_simnet::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// What a vantage point currently selects for the monitored space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// No route observed yet.
    Unknown,
    /// Routes to a legitimate origin.
    Legitimate,
    /// Routes to the offending origin.
    Hijacked,
}

/// A snapshot row of the monitoring timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelinePoint {
    /// When.
    pub time: SimTime,
    /// Vantage points currently on a legitimate origin.
    pub legitimate: usize,
    /// Vantage points currently on the offending origin.
    pub hijacked: usize,
    /// Vantage points with no information yet.
    pub unknown: usize,
}

/// Tracks, per vantage point, the origin selected for a monitored
/// prefix (longest-prefix-match over everything that VP reported).
pub struct MonitorService {
    /// The monitored (owned) prefix.
    target: Prefix,
    legitimate_origins: BTreeSet<Asn>,
    /// Expected vantage points (fixed population for percentages).
    vantage_points: BTreeSet<Asn>,
    /// vp -> (prefix -> origin) observations within the target space.
    observations: BTreeMap<Asn, BTreeMap<Prefix, Option<Asn>>>,
    /// Recorded timeline (one point per state change).
    timeline: Vec<TimelinePoint>,
}

impl MonitorService {
    /// Monitor `target` with the given legitimacy rules across a fixed
    /// vantage-point population.
    pub fn new(
        target: Prefix,
        legitimate_origins: BTreeSet<Asn>,
        vantage_points: BTreeSet<Asn>,
    ) -> Self {
        MonitorService {
            target,
            legitimate_origins,
            vantage_points,
            observations: BTreeMap::new(),
            timeline: Vec::new(),
        }
    }

    /// The monitored prefix.
    pub fn target(&self) -> Prefix {
        self.target
    }

    /// Ingest a monitoring event; records a timeline point when the
    /// reporting vantage point's selection changed.
    ///
    /// The change test is **per-VP**, not aggregate: it compares the
    /// reporting VP's `(state, selected origin)` before and after the
    /// observation. Comparing aggregate `(legitimate, hijacked,
    /// unknown)` counts — the previous behaviour — suppressed every
    /// transition that left the totals untouched: a vantage point
    /// switching from one hijacker origin to another (or between two
    /// legitimate anycast origins) stayed inside its bucket, and
    /// opposite per-VP flips netting out across a recorded point
    /// vanished from the timeline entirely.
    pub fn ingest(&mut self, event: &FeedEvent) {
        // Only events about the monitored space matter.
        if !(self.target.contains(event.prefix) || event.prefix.contains(self.target)) {
            return;
        }
        if !self.vantage_points.contains(&event.vantage) {
            return;
        }
        let before = self.vp_observation(event.vantage);
        let slot = self.observations.entry(event.vantage).or_default();
        match (&event.as_path, event.origin_as) {
            (Some(_), origin) => {
                slot.insert(event.prefix, origin);
            }
            (None, _) => {
                slot.remove(&event.prefix);
            }
        }
        let after = self.vp_observation(event.vantage);
        if self.timeline.is_empty() || before != after {
            self.timeline.push(self.snapshot(event.emitted_at));
        }
    }

    /// The state of one vantage point together with the origin its
    /// LPM-selected observation points at (`None` when the VP has no
    /// data, or its best route carries an AS_SET origin).
    pub fn vp_observation(&self, vp: Asn) -> (VpState, Option<Asn>) {
        let Some(obs) = self.observations.get(&vp) else {
            return (VpState::Unknown, None);
        };
        // Longest prefix match across everything the VP reported that
        // covers (part of) the target. For the paper's measurement the
        // address under test is the target prefix itself (its first
        // address).
        let best = obs
            .iter()
            .filter(|(p, _)| p.contains(self.target) || self.target.contains(**p))
            .max_by_key(|(p, _)| p.len());
        match best {
            None => (VpState::Unknown, None),
            Some((_, Some(origin))) if self.legitimate_origins.contains(origin) => {
                (VpState::Legitimate, Some(*origin))
            }
            Some((_, Some(origin))) => (VpState::Hijacked, Some(*origin)),
            Some((_, None)) => (VpState::Hijacked, None), // AS_SET origin: suspicious
        }
    }

    /// The state of one vantage point (LPM over its observations).
    pub fn vp_state(&self, vp: Asn) -> VpState {
        self.vp_observation(vp).0
    }

    /// Aggregate counts now.
    pub fn snapshot(&self, time: SimTime) -> TimelinePoint {
        let mut legitimate = 0;
        let mut hijacked = 0;
        let mut unknown = 0;
        for vp in &self.vantage_points {
            match self.vp_state(*vp) {
                VpState::Legitimate => legitimate += 1,
                VpState::Hijacked => hijacked += 1,
                VpState::Unknown => unknown += 1,
            }
        }
        TimelinePoint {
            time,
            legitimate,
            hijacked,
            unknown,
        }
    }

    /// True when every vantage point that has data selects a
    /// legitimate origin (the paper's "mitigation completed": *all*
    /// vantage points switched back) and at least one VP has data.
    pub fn all_legitimate(&self) -> bool {
        let snap = self.snapshot(SimTime::ZERO);
        snap.hijacked == 0 && snap.legitimate > 0
    }

    /// True when at least one vantage point selects the hijacker.
    pub fn any_hijacked(&self) -> bool {
        self.vantage_points
            .iter()
            .any(|vp| self.vp_state(*vp) == VpState::Hijacked)
    }

    /// The recorded timeline.
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// Number of monitored vantage points.
    pub fn vantage_count(&self) -> usize {
        self.vantage_points.len()
    }

    /// Freeze this monitor into its compact retirement record,
    /// dropping the per-VP observation maps (the part of monitor state
    /// that grows with every ingested event). `at` stamps the final
    /// snapshot. See [`RetiredMonitor`].
    pub fn retire(self, at: SimTime) -> RetiredMonitor {
        let final_point = self.snapshot(at);
        RetiredMonitor {
            target: self.target,
            vantage_count: self.vantage_points.len(),
            final_point,
            timeline: self.timeline,
        }
    }
}

/// Compact record of a monitor whose incident is over (resolved, or
/// closed by offboarding its prefix).
///
/// Keeps what reporting needs — the target, the recorded timeline (one
/// point per state *change*, so bounded by transitions rather than
/// event volume) and the final aggregate counts — while dropping the
/// per-VP, per-prefix observation maps that grow with feed volume.
/// Long-running daemons therefore pay a small frozen record per
/// lifetime incident instead of leaking full monitor state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetiredMonitor {
    target: Prefix,
    vantage_count: usize,
    final_point: TimelinePoint,
    timeline: Vec<TimelinePoint>,
}

impl RetiredMonitor {
    /// The prefix the monitor tracked.
    pub fn target(&self) -> Prefix {
        self.target
    }

    /// Number of vantage points the monitor tracked.
    pub fn vantage_count(&self) -> usize {
        self.vantage_count
    }

    /// Aggregate counts at retirement time.
    pub fn final_point(&self) -> &TimelinePoint {
        &self.final_point
    }

    /// The recorded timeline (identical to what the live monitor had).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::AsPath;
    use artemis_feeds::FeedKind;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn event(vp: u32, prefix: &str, origin: Option<u32>, t: u64) -> FeedEvent {
        FeedEvent {
            emitted_at: SimTime::from_secs(t),
            observed_at: SimTime::from_secs(t),
            source: FeedKind::RisLive,
            collector: "rrc00".into(),
            vantage: Asn(vp),
            prefix: pfx(prefix),
            as_path: origin.map(|o| AsPath::from_sequence([vp, o])),
            origin_as: origin.map(Asn),
            raw: None,
        }
    }

    fn service() -> MonitorService {
        MonitorService::new(
            pfx("10.0.0.0/23"),
            [Asn(65001)].into_iter().collect(),
            [Asn(174), Asn(3356), Asn(2914)].into_iter().collect(),
        )
    }

    #[test]
    fn initial_state_unknown() {
        let m = service();
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
        assert!(!m.all_legitimate());
        assert!(!m.any_hijacked());
    }

    #[test]
    fn legitimate_observation_counts() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        assert_eq!(m.vp_state(Asn(174)), VpState::Legitimate);
        let snap = m.snapshot(SimTime::from_secs(10));
        assert_eq!((snap.legitimate, snap.hijacked, snap.unknown), (1, 0, 2));
    }

    #[test]
    fn hijack_flips_vp() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        assert!(m.any_hijacked());
    }

    #[test]
    fn more_specific_wins_within_vp() {
        let mut m = service();
        // Hijacked on the /23 but the mitigation /24s take precedence.
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        m.ingest(&event(174, "10.0.0.0/24", Some(65001), 30));
        assert_eq!(m.vp_state(Asn(174)), VpState::Legitimate);
    }

    #[test]
    fn all_legitimate_requires_every_vp_clean() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 12));
        m.ingest(&event(2914, "10.0.0.0/23", Some(65001), 13));
        assert!(!m.all_legitimate());
        m.ingest(&event(3356, "10.0.0.0/24", Some(65001), 40));
        assert!(
            m.all_legitimate(),
            "unknown VPs do not block resolution; hijacked ones do"
        );
    }

    #[test]
    fn withdrawal_clears_observation() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        m.ingest(&event(174, "10.0.0.0/23", None, 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
    }

    #[test]
    fn unrelated_events_ignored() {
        let mut m = service();
        m.ingest(&event(174, "8.8.8.0/24", Some(15169), 10));
        m.ingest(&event(9999, "10.0.0.0/23", Some(666), 11)); // not a VP
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
        assert!(!m.any_hijacked());
    }

    #[test]
    fn timeline_records_changes_only() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 11)); // no change
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 12));
        assert_eq!(m.timeline().len(), 2);
        assert_eq!(m.timeline()[1].hijacked, 1);
    }

    #[test]
    fn hijacker_origin_swap_records_a_timeline_point() {
        // Regression: the old aggregate-count comparison suppressed
        // every per-VP transition that left (legitimate, hijacked,
        // unknown) untouched — a vantage point moving from one
        // hijacker to another stayed "1 hijacked" and vanished from
        // the timeline.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        assert_eq!(m.timeline().len(), 1);
        m.ingest(&event(174, "10.0.0.0/23", Some(667), 20));
        assert_eq!(
            m.timeline().len(),
            2,
            "origin 666 → 667 is a state transition even though the \
             aggregate counts are unchanged"
        );
        assert_eq!(m.timeline()[1].time, SimTime::from_secs(20));
        assert_eq!(
            m.vp_observation(Asn(174)),
            (VpState::Hijacked, Some(Asn(667)))
        );
    }

    #[test]
    fn legitimate_anycast_origin_swap_records_a_timeline_point() {
        let mut m = MonitorService::new(
            pfx("10.0.0.0/23"),
            [Asn(65001), Asn(65002)].into_iter().collect(),
            [Asn(174)].into_iter().collect(),
        );
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(65002), 20));
        assert_eq!(m.timeline().len(), 2, "anycast swap is visible");
        assert!(m.all_legitimate());
    }

    #[test]
    fn simultaneous_opposite_flips_both_appear() {
        // Two VPs flip in opposite directions at the same instant; the
        // aggregate counts net out to the pre-flip values, but the
        // timeline must still carry both transitions.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 11));
        let len_before = m.timeline().len();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 30)); // legit → hijacked
        m.ingest(&event(3356, "10.0.0.0/23", Some(65001), 30)); // hijacked → legit
        assert_eq!(
            m.timeline().len(),
            len_before + 2,
            "both opposite flips are recorded"
        );
        let last = m.timeline().last().unwrap();
        let prior = &m.timeline()[m.timeline().len() - 3];
        assert_eq!(
            (last.legitimate, last.hijacked, last.unknown),
            (prior.legitimate, prior.hijacked, prior.unknown),
            "net aggregate change is zero — exactly why the aggregate \
             comparison lost these"
        );
    }

    #[test]
    fn redundant_reannouncement_still_suppressed() {
        // The fix must not regress the dedup property: an event that
        // changes nothing for its VP records nothing.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        // Same VP, same origin, via a different (less specific) covering
        // route: LPM selection unchanged.
        m.ingest(&event(174, "10.0.0.0/16", Some(666), 11));
        assert_eq!(m.timeline().len(), 1);
    }
}
