//! The monitoring service: per-vantage-point origin tracking.
//!
//! "In parallel to the mitigation, a monitoring service is running to
//! provide real-time information about the mitigation process." (§2)
//! The demo (§4) visualizes vantage points around the globe switching
//! between the legitimate and illegitimate origin — this module keeps
//! that state and declares the incident resolved when every vantage
//! point routes to a legitimate origin again.

use crate::alert::AlertId;
use artemis_bgp::{Asn, Prefix, PrefixTrie};
use artemis_feeds::FeedEvent;
use artemis_simnet::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// What a vantage point currently selects for the monitored space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// No route observed yet.
    Unknown,
    /// Routes to a legitimate origin.
    Legitimate,
    /// Routes to the offending origin.
    Hijacked,
}

/// A snapshot row of the monitoring timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelinePoint {
    /// When.
    pub time: SimTime,
    /// Vantage points currently on a legitimate origin.
    pub legitimate: usize,
    /// Vantage points currently on the offending origin.
    pub hijacked: usize,
    /// Vantage points with no information yet.
    pub unknown: usize,
}

/// Tracks, per vantage point, the origin selected for a monitored
/// prefix (longest-prefix-match over everything that VP reported).
#[derive(Debug)]
pub struct MonitorService {
    /// The monitored (owned) prefix.
    target: Prefix,
    legitimate_origins: BTreeSet<Asn>,
    /// Expected vantage points (fixed population for percentages).
    vantage_points: BTreeSet<Asn>,
    /// vp -> (prefix -> origin) observations within the target space.
    observations: BTreeMap<Asn, BTreeMap<Prefix, Option<Asn>>>,
    /// Recorded timeline (one point per state change).
    timeline: Vec<TimelinePoint>,
}

impl MonitorService {
    /// Monitor `target` with the given legitimacy rules across a fixed
    /// vantage-point population.
    pub fn new(
        target: Prefix,
        legitimate_origins: BTreeSet<Asn>,
        vantage_points: BTreeSet<Asn>,
    ) -> Self {
        MonitorService {
            target,
            legitimate_origins,
            vantage_points,
            observations: BTreeMap::new(),
            timeline: Vec::new(),
        }
    }

    /// The monitored prefix.
    pub fn target(&self) -> Prefix {
        self.target
    }

    /// True when `prefix` concerns the monitored space: the target
    /// contains it (mitigation de-aggregates, hijacker sub-prefixes)
    /// or it contains the target (covering announcements). This is the
    /// relevance relation the pipeline's [`MonitorIndex`] evaluates
    /// once per event over *all* active monitors instead of once per
    /// `(event, monitor)` pair.
    pub fn is_relevant(&self, prefix: Prefix) -> bool {
        self.target.contains(prefix) || prefix.contains(self.target)
    }

    /// Ingest a monitoring event; records a timeline point when the
    /// reporting vantage point's selection changed.
    ///
    /// This is the *checked* entry point for direct callers: events
    /// outside the monitored space (see [`MonitorService::is_relevant`])
    /// are silently ignored. The pipeline's hot path routes events
    /// through the [`MonitorIndex`] instead, which guarantees relevance
    /// up front and calls the crate-private `ingest_routed` directly.
    ///
    /// The change test is **per-VP**, not aggregate: it compares the
    /// reporting VP's `(state, selected origin)` before and after the
    /// observation. Comparing aggregate `(legitimate, hijacked,
    /// unknown)` counts — the previous behaviour — suppressed every
    /// transition that left the totals untouched: a vantage point
    /// switching from one hijacker origin to another (or between two
    /// legitimate anycast origins) stayed inside its bucket, and
    /// opposite per-VP flips netting out across a recorded point
    /// vanished from the timeline entirely.
    pub fn ingest(&mut self, event: &FeedEvent) {
        // Only events about the monitored space matter.
        if !self.is_relevant(event.prefix) {
            return;
        }
        self.ingest_routed(event);
    }

    /// [`MonitorService::ingest`] minus the relevance check: the
    /// caller asserts the event concerns the monitored space (it was
    /// routed here by the [`MonitorIndex`]). Relevance is re-verified
    /// only in debug builds — a routing-layer bug trips the assert in
    /// tests instead of silently corrupting observations in
    /// production.
    pub(crate) fn ingest_routed(&mut self, event: &FeedEvent) {
        debug_assert!(
            self.is_relevant(event.prefix),
            "event {} routed to monitor {} without relevance",
            event.prefix,
            self.target
        );
        if !self.vantage_points.contains(&event.vantage) {
            return;
        }
        let before = self.vp_observation(event.vantage);
        let slot = self.observations.entry(event.vantage).or_default();
        match (&event.as_path, event.origin_as) {
            (Some(_), origin) => {
                slot.insert(event.prefix, origin);
            }
            (None, _) => {
                slot.remove(&event.prefix);
            }
        }
        let after = self.vp_observation(event.vantage);
        if self.timeline.is_empty() || before != after {
            self.timeline.push(self.snapshot(event.emitted_at));
        }
    }

    /// The state of one vantage point together with the origin its
    /// LPM-selected observation points at (`None` when the VP has no
    /// data, or its best route carries an AS_SET origin).
    pub fn vp_observation(&self, vp: Asn) -> (VpState, Option<Asn>) {
        let Some(obs) = self.observations.get(&vp) else {
            return (VpState::Unknown, None);
        };
        // Longest prefix match across everything the VP reported that
        // covers (part of) the target. For the paper's measurement the
        // address under test is the target prefix itself (its first
        // address).
        let best = obs
            .iter()
            .filter(|(p, _)| p.contains(self.target) || self.target.contains(**p))
            .max_by_key(|(p, _)| p.len());
        match best {
            None => (VpState::Unknown, None),
            Some((_, Some(origin))) if self.legitimate_origins.contains(origin) => {
                (VpState::Legitimate, Some(*origin))
            }
            Some((_, Some(origin))) => (VpState::Hijacked, Some(*origin)),
            Some((_, None)) => (VpState::Hijacked, None), // AS_SET origin: suspicious
        }
    }

    /// The state of one vantage point (LPM over its observations).
    pub fn vp_state(&self, vp: Asn) -> VpState {
        self.vp_observation(vp).0
    }

    /// Drop everything `vp` ever reported about the monitored space:
    /// its BGP session to the collector went down (BMP `peer_down`),
    /// so its routes are no longer current. The vantage point returns
    /// to [`VpState::Unknown`] until it reports again; a timeline
    /// point is recorded when the purge changed its state. Returns
    /// `true` when the VP actually had observations to drop.
    ///
    /// Purging never *resolves* an incident by itself — resolution is
    /// evaluated on the next ingested event, exactly like any other
    /// state change — so a flapping session cannot silently close an
    /// alert.
    pub fn purge_vantage(&mut self, vp: Asn, at: SimTime) -> bool {
        let before = self.vp_observation(vp);
        if self.observations.remove(&vp).is_none() {
            return false;
        }
        let after = self.vp_observation(vp);
        if before != after {
            self.timeline.push(self.snapshot(at));
        }
        true
    }

    /// Aggregate counts now.
    pub fn snapshot(&self, time: SimTime) -> TimelinePoint {
        let mut legitimate = 0;
        let mut hijacked = 0;
        let mut unknown = 0;
        for vp in &self.vantage_points {
            match self.vp_state(*vp) {
                VpState::Legitimate => legitimate += 1,
                VpState::Hijacked => hijacked += 1,
                VpState::Unknown => unknown += 1,
            }
        }
        TimelinePoint {
            time,
            legitimate,
            hijacked,
            unknown,
        }
    }

    /// True when every vantage point that has data selects a
    /// legitimate origin (the paper's "mitigation completed": *all*
    /// vantage points switched back) and at least one VP has data.
    pub fn all_legitimate(&self) -> bool {
        let snap = self.snapshot(SimTime::ZERO);
        snap.hijacked == 0 && snap.legitimate > 0
    }

    /// True when at least one vantage point selects the hijacker.
    pub fn any_hijacked(&self) -> bool {
        self.vantage_points
            .iter()
            .any(|vp| self.vp_state(*vp) == VpState::Hijacked)
    }

    /// The recorded timeline.
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// Number of monitored vantage points.
    pub fn vantage_count(&self) -> usize {
        self.vantage_points.len()
    }

    /// Freeze this monitor into its compact retirement record,
    /// dropping the per-VP observation maps (the part of monitor state
    /// that grows with every ingested event). `at` stamps the final
    /// snapshot. See [`RetiredMonitor`].
    pub fn retire(self, at: SimTime) -> RetiredMonitor {
        let final_point = self.snapshot(at);
        RetiredMonitor {
            target: self.target,
            vantage_count: self.vantage_points.len(),
            final_point,
            timeline: self.timeline,
        }
    }
}

/// Compact record of a monitor whose incident is over (resolved, or
/// closed by offboarding its prefix).
///
/// Keeps what reporting needs — the target, the recorded timeline (one
/// point per state *change*, so bounded by transitions rather than
/// event volume) and the final aggregate counts — while dropping the
/// per-VP, per-prefix observation maps that grow with feed volume.
/// Long-running daemons therefore pay a small frozen record per
/// lifetime incident instead of leaking full monitor state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetiredMonitor {
    target: Prefix,
    vantage_count: usize,
    final_point: TimelinePoint,
    timeline: Vec<TimelinePoint>,
}

impl RetiredMonitor {
    /// The prefix the monitor tracked.
    pub fn target(&self) -> Prefix {
        self.target
    }

    /// Number of vantage points the monitor tracked.
    pub fn vantage_count(&self) -> usize {
        self.vantage_count
    }

    /// Aggregate counts at retirement time.
    pub fn final_point(&self) -> &TimelinePoint {
        &self.final_point
    }

    /// The recorded timeline (identical to what the live monitor had).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }
}

/// Prefix-routed index over the active monitors.
///
/// Maps each monitor's target prefix to the alerts monitoring it, so
/// the pipeline can answer "which monitors care about this event?" in
/// one trie walk ([`PrefixTrie::visit_relevant`]: an LPM-style
/// ancestor walk plus the subtree at the event prefix) instead of
/// scanning every active monitor per event. Kept in sync by the
/// pipeline on monitor create, retire (resolution) and offboard.
///
/// Several alerts can monitor the same target (e.g. an exact-prefix
/// and a sub-prefix hijack against one owned prefix), so each trie
/// node holds a sorted list of alert ids.
#[derive(Debug, Default)]
pub struct MonitorIndex {
    targets: PrefixTrie<Vec<AlertId>>,
    len: usize,
    /// Bumped on every successful `insert`/`remove`; versions the
    /// cached covering-set partition below.
    epoch: u64,
    /// Memoized [`MonitorIndex::covering_shards`] result, valid while
    /// the stored epoch matches. Steady-state delivery (no monitor
    /// births/retirements between batches) reuses it for free; the
    /// `Arc` lets the pipeline hold the partition across a batch while
    /// the index itself is mutably borrowed.
    shards_cache: Option<(u64, Arc<Vec<Vec<AlertId>>>)>,
}

impl MonitorIndex {
    /// An empty index.
    pub fn new() -> Self {
        MonitorIndex::default()
    }

    /// Number of indexed `(target, alert)` pairs (= active monitors).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no monitor is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutation counter: bumped whenever the indexed monitor set
    /// actually changes. No-op inserts/removes leave it untouched.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Index `alert`'s monitor under its target prefix.
    pub fn insert(&mut self, target: Prefix, alert: AlertId) {
        let ids = match self.targets.get_mut(target) {
            Some(ids) => ids,
            None => {
                self.targets.insert(target, Vec::new());
                self.targets.get_mut(target).expect("just inserted")
            }
        };
        match ids.binary_search(&alert) {
            Ok(_) => return, // already indexed
            Err(pos) => ids.insert(pos, alert),
        }
        self.len += 1;
        self.epoch += 1;
    }

    /// Drop `alert` from the index. Returns `false` when it was not
    /// indexed under `target`.
    pub fn remove(&mut self, target: Prefix, alert: AlertId) -> bool {
        let Some(ids) = self.targets.get_mut(target) else {
            return false;
        };
        let Ok(pos) = ids.binary_search(&alert) else {
            return false;
        };
        ids.remove(pos);
        if ids.is_empty() {
            self.targets.remove(target);
        }
        self.len -= 1;
        self.epoch += 1;
        true
    }

    /// The alerts whose monitors are relevant to an event on `prefix`
    /// (target contains the prefix, or the prefix contains the
    /// target), appended to `out` in ascending alert order — the same
    /// order the pre-index pipeline visited monitors in its
    /// all-monitors `BTreeMap` scan. `out` is cleared first; reuse one
    /// buffer across events to keep the hot path allocation-free.
    pub fn route(&self, prefix: Prefix, out: &mut Vec<AlertId>) {
        out.clear();
        self.targets.visit_relevant(prefix, |_, ids| {
            out.extend_from_slice(ids);
        });
        // Distinct targets hold distinct sorted runs; a merged view
        // must be globally sorted (and each id appears under exactly
        // one target, so no dedup is needed).
        out.sort_unstable();
    }

    /// Partition the active monitors into covering-set shards: targets
    /// that can share events (one contains the other) land in the same
    /// shard, keyed by the outermost indexed target above each. Two
    /// prefixes either nest or are disjoint, so nested targets form
    /// exact components. Monitors are per-alert state, so shards run
    /// on different workers without coordination (a short covering
    /// announcement may still be routed to several shards — each
    /// ingests it into its own monitors independently).
    ///
    /// Shards are returned in address order of their outermost target,
    /// ids ascending within a shard — deterministic, so the pipeline's
    /// shard→worker assignment is too.
    pub fn covering_shards(&self) -> Vec<Vec<AlertId>> {
        let mut shards: Vec<Vec<AlertId>> = Vec::new();
        let mut current_root: Option<Prefix> = None;
        for (target, ids) in self.targets.iter() {
            let nested = current_root.is_some_and(|root| root.contains(target));
            if !nested {
                // Address-order iteration visits a covering prefix
                // before everything under it, so a target outside the
                // current root starts a new component.
                current_root = Some(target);
                shards.push(Vec::new());
            }
            let shard = shards.last_mut().expect("component started");
            shard.extend_from_slice(ids);
        }
        shards
    }

    /// [`MonitorIndex::covering_shards`], memoized against the index's
    /// epoch: recomputed only after a monitor was indexed or dropped
    /// since the last call.
    pub fn covering_shards_cached(&mut self) -> Arc<Vec<Vec<AlertId>>> {
        if let Some((at, shards)) = &self.shards_cache {
            if *at == self.epoch {
                return Arc::clone(shards);
            }
        }
        let shards = Arc::new(self.covering_shards());
        self.shards_cache = Some((self.epoch, Arc::clone(&shards)));
        shards
    }
}

/// One monitor checked out of the pipeline for a batch-ingest pass
/// (inline, or on a worker). Everything a worker needs travels with
/// the task; nothing borrows the pipeline.
#[derive(Debug)]
pub(crate) struct MonitorTask {
    /// The alert this monitor belongs to.
    pub alert: AlertId,
    /// The monitor itself, moved out of the registry for the batch.
    pub monitor: MonitorService,
    /// Whether the alert's mitigation has executed. Constant for the
    /// whole batch: pre-existing alerts only flip this through
    /// operator commands (confirm/resume), which never run mid-batch.
    pub mitigated: bool,
    /// First batch index to consider (nonzero only when the pipeline's
    /// recheck pre-pass already consumed earlier events).
    pub start: usize,
}

/// What a batch-ingest pass decided for one monitor.
#[derive(Debug)]
pub(crate) struct MonitorOutcome {
    /// The alert the monitor belongs to.
    pub alert: AlertId,
    /// The monitor, with the batch's relevant events ingested up to
    /// (and including) the resolving event when one exists.
    pub monitor: MonitorService,
    /// Batch index of the event whose ingest completed the recovery
    /// (`mitigated` and every reporting vantage point legitimate), or
    /// `None` when the batch does not resolve this alert.
    pub resolved_at: Option<usize>,
}

/// Ingest one covering-set shard's slice of a batch into its monitor
/// tasks, sequentially and in batch order — the shared kernel of the
/// inline and worker-pool monitor-ingest paths, so both are identical
/// by construction.
///
/// `indices` lists the batch positions routed to this shard (ascending;
/// a superset of each individual monitor's relevant events, since a
/// shard unions nested targets). Each task ingests its relevant events
/// in order and stops at the first event after which the alert
/// resolves — the pipeline applies the recorded resolution point
/// during the ordered commit walk, so log/action ordering is
/// independent of which worker ran the shard.
pub(crate) fn run_monitor_tasks(
    events: &[FeedEvent],
    indices: &[u32],
    tasks: Vec<MonitorTask>,
    out: &mut Vec<MonitorOutcome>,
) {
    for mut task in tasks {
        let mut resolved_at = None;
        for &i in indices {
            let i = i as usize;
            if i < task.start {
                continue;
            }
            let event = &events[i];
            if !task.monitor.is_relevant(event.prefix) {
                continue;
            }
            task.monitor.ingest_routed(event);
            // `all_legitimate` only changes when an ingested
            // observation changes, so checking after each relevant
            // ingest visits every state-change point the old
            // per-event scan checked.
            if task.mitigated && task.monitor.all_legitimate() {
                resolved_at = Some(i);
                break;
            }
        }
        out.push(MonitorOutcome {
            alert: task.alert,
            monitor: task.monitor,
            resolved_at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artemis_bgp::AsPath;
    use artemis_feeds::FeedKind;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn event(vp: u32, prefix: &str, origin: Option<u32>, t: u64) -> FeedEvent {
        FeedEvent {
            emitted_at: SimTime::from_secs(t),
            observed_at: SimTime::from_secs(t),
            source: FeedKind::RisLive,
            collector: "rrc00".into(),
            vantage: Asn(vp),
            prefix: pfx(prefix),
            as_path: origin.map(|o| AsPath::from_sequence([vp, o])),
            origin_as: origin.map(Asn),
            raw: None,
        }
    }

    fn service() -> MonitorService {
        MonitorService::new(
            pfx("10.0.0.0/23"),
            [Asn(65001)].into_iter().collect(),
            [Asn(174), Asn(3356), Asn(2914)].into_iter().collect(),
        )
    }

    #[test]
    fn initial_state_unknown() {
        let m = service();
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
        assert!(!m.all_legitimate());
        assert!(!m.any_hijacked());
    }

    #[test]
    fn legitimate_observation_counts() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        assert_eq!(m.vp_state(Asn(174)), VpState::Legitimate);
        let snap = m.snapshot(SimTime::from_secs(10));
        assert_eq!((snap.legitimate, snap.hijacked, snap.unknown), (1, 0, 2));
    }

    #[test]
    fn hijack_flips_vp() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        assert!(m.any_hijacked());
    }

    #[test]
    fn more_specific_wins_within_vp() {
        let mut m = service();
        // Hijacked on the /23 but the mitigation /24s take precedence.
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        m.ingest(&event(174, "10.0.0.0/24", Some(65001), 30));
        assert_eq!(m.vp_state(Asn(174)), VpState::Legitimate);
    }

    #[test]
    fn all_legitimate_requires_every_vp_clean() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 12));
        m.ingest(&event(2914, "10.0.0.0/23", Some(65001), 13));
        assert!(!m.all_legitimate());
        m.ingest(&event(3356, "10.0.0.0/24", Some(65001), 40));
        assert!(
            m.all_legitimate(),
            "unknown VPs do not block resolution; hijacked ones do"
        );
    }

    #[test]
    fn peer_down_purge_resets_vp_to_unknown() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        m.ingest(&event(3356, "10.0.0.0/23", Some(65001), 11));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        let points_before = m.timeline().len();

        // The hijacked VP's session to the collector drops: its stale
        // routes are purged, the VP returns to Unknown, and the state
        // change lands on the timeline.
        assert!(m.purge_vantage(Asn(174), SimTime::from_secs(20)));
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
        assert_eq!(m.timeline().len(), points_before + 1);
        let last = m.timeline().last().unwrap();
        assert_eq!(last.time, SimTime::from_secs(20));
        assert_eq!((last.legitimate, last.hijacked, last.unknown), (1, 0, 2));

        // A VP with nothing recorded purges to nothing — no timeline
        // noise from flapping sessions that never reported.
        assert!(!m.purge_vantage(Asn(174), SimTime::from_secs(21)));
        assert!(!m.purge_vantage(Asn(2914), SimTime::from_secs(22)));
        assert_eq!(m.timeline().len(), points_before + 1);

        // Purging alone never resolves: the legitimate VP still has
        // data, but `all_legitimate` is only *acted on* at the next
        // ingest (here it merely reads true, as any snapshot would).
        assert!(m.all_legitimate());
    }

    #[test]
    fn withdrawal_clears_observation() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        assert_eq!(m.vp_state(Asn(174)), VpState::Hijacked);
        m.ingest(&event(174, "10.0.0.0/23", None, 20));
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
    }

    #[test]
    fn unrelated_events_ignored() {
        let mut m = service();
        m.ingest(&event(174, "8.8.8.0/24", Some(15169), 10));
        m.ingest(&event(9999, "10.0.0.0/23", Some(666), 11)); // not a VP
        assert_eq!(m.vp_state(Asn(174)), VpState::Unknown);
        assert!(!m.any_hijacked());
    }

    #[test]
    fn timeline_records_changes_only() {
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 11)); // no change
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 12));
        assert_eq!(m.timeline().len(), 2);
        assert_eq!(m.timeline()[1].hijacked, 1);
    }

    #[test]
    fn hijacker_origin_swap_records_a_timeline_point() {
        // Regression: the old aggregate-count comparison suppressed
        // every per-VP transition that left (legitimate, hijacked,
        // unknown) untouched — a vantage point moving from one
        // hijacker to another stayed "1 hijacked" and vanished from
        // the timeline.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        assert_eq!(m.timeline().len(), 1);
        m.ingest(&event(174, "10.0.0.0/23", Some(667), 20));
        assert_eq!(
            m.timeline().len(),
            2,
            "origin 666 → 667 is a state transition even though the \
             aggregate counts are unchanged"
        );
        assert_eq!(m.timeline()[1].time, SimTime::from_secs(20));
        assert_eq!(
            m.vp_observation(Asn(174)),
            (VpState::Hijacked, Some(Asn(667)))
        );
    }

    #[test]
    fn legitimate_anycast_origin_swap_records_a_timeline_point() {
        let mut m = MonitorService::new(
            pfx("10.0.0.0/23"),
            [Asn(65001), Asn(65002)].into_iter().collect(),
            [Asn(174)].into_iter().collect(),
        );
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(174, "10.0.0.0/23", Some(65002), 20));
        assert_eq!(m.timeline().len(), 2, "anycast swap is visible");
        assert!(m.all_legitimate());
    }

    #[test]
    fn simultaneous_opposite_flips_both_appear() {
        // Two VPs flip in opposite directions at the same instant; the
        // aggregate counts net out to the pre-flip values, but the
        // timeline must still carry both transitions.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(65001), 10));
        m.ingest(&event(3356, "10.0.0.0/23", Some(666), 11));
        let len_before = m.timeline().len();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 30)); // legit → hijacked
        m.ingest(&event(3356, "10.0.0.0/23", Some(65001), 30)); // hijacked → legit
        assert_eq!(
            m.timeline().len(),
            len_before + 2,
            "both opposite flips are recorded"
        );
        let last = m.timeline().last().unwrap();
        let prior = &m.timeline()[m.timeline().len() - 3];
        assert_eq!(
            (last.legitimate, last.hijacked, last.unknown),
            (prior.legitimate, prior.hijacked, prior.unknown),
            "net aggregate change is zero — exactly why the aggregate \
             comparison lost these"
        );
    }

    fn id(n: u64) -> AlertId {
        AlertId(n)
    }

    #[test]
    fn index_routes_by_containment_in_alert_order() {
        let mut idx = MonitorIndex::new();
        idx.insert(pfx("10.0.0.0/23"), id(3));
        idx.insert(pfx("10.0.0.0/24"), id(1));
        idx.insert(pfx("10.0.0.0/23"), id(2)); // second alert, same target
        idx.insert(pfx("172.16.0.0/23"), id(4));
        assert_eq!(idx.len(), 4);

        let mut out = Vec::new();
        // Sub-prefix event: both covering targets, not the sibling.
        idx.route(pfx("10.0.0.0/25"), &mut out);
        assert_eq!(out, vec![id(1), id(2), id(3)]);
        // Covering event: everything under it.
        idx.route(pfx("10.0.0.0/8"), &mut out);
        assert_eq!(out, vec![id(1), id(2), id(3)]);
        // Exact target match is routed once.
        idx.route(pfx("172.16.0.0/23"), &mut out);
        assert_eq!(out, vec![id(4)]);
        // Disjoint space routes nowhere.
        idx.route(pfx("192.0.2.0/24"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn index_remove_unindexes_exactly_one_alert() {
        let mut idx = MonitorIndex::new();
        idx.insert(pfx("10.0.0.0/23"), id(1));
        idx.insert(pfx("10.0.0.0/23"), id(2));
        assert!(idx.remove(pfx("10.0.0.0/23"), id(1)));
        assert!(!idx.remove(pfx("10.0.0.0/23"), id(1)), "already gone");
        assert!(!idx.remove(pfx("10.0.0.0/24"), id(2)), "wrong target");
        let mut out = Vec::new();
        idx.route(pfx("10.0.0.0/23"), &mut out);
        assert_eq!(out, vec![id(2)]);
        assert!(idx.remove(pfx("10.0.0.0/23"), id(2)));
        assert!(idx.is_empty());
        idx.route(pfx("10.0.0.0/23"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn covering_shards_group_nested_targets() {
        let mut idx = MonitorIndex::new();
        idx.insert(pfx("10.0.0.0/8"), id(1));
        idx.insert(pfx("10.0.0.0/24"), id(2));
        idx.insert(pfx("10.1.0.0/24"), id(3));
        idx.insert(pfx("172.16.0.0/23"), id(4));
        idx.insert(pfx("172.16.0.0/24"), id(5));
        idx.insert(pfx("192.0.2.0/24"), id(6));
        let shards = idx.covering_shards();
        assert_eq!(
            shards,
            vec![vec![id(1), id(2), id(3)], vec![id(4), id(5)], vec![id(6)]]
        );
        // Disjoint-only fleets shard one monitor each — commit cost
        // stays flat as incident count grows.
        let mut flat = MonitorIndex::new();
        for i in 0..8u64 {
            flat.insert(pfx(&format!("10.{i}.0.0/24")), id(i));
        }
        assert_eq!(flat.covering_shards().len(), 8);
    }

    #[test]
    fn checked_ingest_still_filters_irrelevant_events() {
        // The public wrapper keeps direct callers safe after the
        // relevance check moved into the routing layer.
        let mut m = service();
        m.ingest(&event(174, "8.8.8.0/24", Some(666), 10));
        assert!(m.timeline().is_empty());
        assert!(!m.is_relevant(pfx("8.8.8.0/24")));
        assert!(m.is_relevant(pfx("10.0.0.0/24")));
        assert!(m.is_relevant(pfx("0.0.0.0/0")));
    }

    #[test]
    fn run_monitor_tasks_matches_per_event_ingest() {
        let events: Vec<FeedEvent> = vec![
            event(174, "10.0.0.0/23", Some(666), 10),
            event(3356, "8.8.8.0/24", Some(15169), 11), // irrelevant
            event(3356, "10.0.0.0/23", Some(65001), 12),
            event(174, "10.0.0.0/24", Some(65001), 13), // resolves
            event(174, "10.0.0.0/23", Some(666), 14),   // after resolution
        ];
        let mut reference = service();
        for ev in &events[..4] {
            reference.ingest(ev);
        }
        let indices: Vec<u32> = vec![0, 2, 3, 4];
        let mut out = Vec::new();
        run_monitor_tasks(
            &events,
            &indices,
            vec![MonitorTask {
                alert: id(1),
                monitor: service(),
                mitigated: true,
                start: 0,
            }],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].resolved_at, Some(3), "stops at the resolving event");
        assert_eq!(out[0].monitor.timeline(), reference.timeline());

        // Unmitigated: the same recovery never resolves.
        out.clear();
        run_monitor_tasks(
            &events,
            &indices,
            vec![MonitorTask {
                alert: id(1),
                monitor: service(),
                mitigated: false,
                start: 0,
            }],
            &mut out,
        );
        assert_eq!(out[0].resolved_at, None);
    }

    #[test]
    fn redundant_reannouncement_still_suppressed() {
        // The fix must not regress the dedup property: an event that
        // changes nothing for its VP records nothing.
        let mut m = service();
        m.ingest(&event(174, "10.0.0.0/23", Some(666), 10));
        // Same VP, same origin, via a different (less specific) covering
        // route: LPM selection unchanged.
        m.ingest(&event(174, "10.0.0.0/16", Some(666), 11));
        assert_eq!(m.timeline().len(), 1);
    }
}
