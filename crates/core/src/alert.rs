//! Alerts and their lifecycle (raise → update → resolve).

use crate::classify::HijackType;
use artemis_bgp::{Asn, Prefix};
use artemis_feeds::FeedKind;
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Opaque alert identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AlertId(pub u64);

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Hijack currently observed at ≥ 1 vantage point.
    Active,
    /// Mitigation has been triggered for this alert.
    Mitigating,
    /// No vantage point selects the offending route any more.
    Resolved,
}

/// A detected hijacking incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Identifier.
    pub id: AlertId,
    /// Classification.
    pub hijack_type: HijackType,
    /// The configured prefix being attacked.
    pub owned_prefix: Prefix,
    /// The offending announcement's prefix (== owned for exact
    /// hijacks, more specific for sub-prefix hijacks).
    pub observed_prefix: Prefix,
    /// Offending origin AS (None when undefined, e.g. AS_SET origin).
    pub offending_origin: Option<Asn>,
    /// When ARTEMIS first learned of it (feed emission time) — the
    /// paper's "detection" instant.
    pub detected_at: SimTime,
    /// When the offending route was first *observed* at a vantage
    /// point (routing-plane time; detection delay = detected_at −
    /// hijack launch).
    pub first_observed_at: SimTime,
    /// Which feed won the detection race.
    pub detected_by: FeedKind,
    /// All vantage points that have reported the offending route.
    pub vantage_points: BTreeSet<Asn>,
    /// Lifecycle.
    pub state: AlertState,
    /// Last update time.
    pub last_update: SimTime,
    /// RPKI validity of the offending announcement, when the operator
    /// loaded a ROA table (extension; `None` = no table configured).
    pub rpki: Option<crate::roa::RoaValidity>,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} on {} (observed {}, origin {}) at {} via {} ({} VPs)",
            self.id.0,
            self.hijack_type,
            self.owned_prefix,
            self.observed_prefix,
            self.offending_origin
                .map(|a| a.to_string())
                .unwrap_or_else(|| "unknown".into()),
            self.detected_at,
            self.detected_by,
            self.vantage_points.len()
        )
    }
}

/// Deduplicating alert store.
///
/// Alerts are keyed by `(owned, observed, offending origin, type)`: a
/// hijack seen from 40 vantage points is *one* incident with 40
/// witnesses, not 40 incidents.
#[derive(Debug, Default)]
pub struct AlertStore {
    alerts: Vec<Alert>,
    next_id: u64,
}

impl AlertStore {
    /// Empty store.
    pub fn new() -> Self {
        AlertStore::default()
    }

    /// Position of `id` in the store (alerts are kept sorted by id).
    fn idx(&self, id: AlertId) -> Option<usize> {
        self.alerts.binary_search_by_key(&id, |a| a.id).ok()
    }

    /// Record an observation; returns `(alert id, is_new)`.
    ///
    /// Deduplication scans every alert in the store. Sharded callers
    /// that already know the candidate set should prefer
    /// [`AlertStore::observe_scoped`].
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        hijack_type: HijackType,
        owned_prefix: Prefix,
        observed_prefix: Prefix,
        offending_origin: Option<Asn>,
        vantage: Asn,
        emitted_at: SimTime,
        observed_at: SimTime,
        source: FeedKind,
    ) -> (AlertId, bool) {
        let hit = self.alerts.iter().position(|a| {
            a.owned_prefix == owned_prefix
                && a.observed_prefix == observed_prefix
                && a.offending_origin == offending_origin
                && a.hijack_type == hijack_type
                && a.state != AlertState::Resolved
        });
        self.upsert(
            hit,
            hijack_type,
            owned_prefix,
            observed_prefix,
            offending_origin,
            vantage,
            emitted_at,
            observed_at,
            source,
        )
    }

    /// Like [`AlertStore::observe`], but deduplicates only against the
    /// alerts listed in `scope` (a detector shard's own alerts) instead
    /// of scanning the whole store; a newly raised alert is appended to
    /// `scope`. This keeps multi-prefix detection O(per-shard alerts)
    /// per event rather than O(total alerts).
    #[allow(clippy::too_many_arguments)]
    pub fn observe_scoped(
        &mut self,
        scope: &mut Vec<AlertId>,
        hijack_type: HijackType,
        owned_prefix: Prefix,
        observed_prefix: Prefix,
        offending_origin: Option<Asn>,
        vantage: Asn,
        emitted_at: SimTime,
        observed_at: SimTime,
        source: FeedKind,
    ) -> (AlertId, bool) {
        let hit = scope
            .iter()
            .map(|id| self.idx(*id).expect("scoped id exists"))
            .find(|i| {
                let a = &self.alerts[*i];
                a.owned_prefix == owned_prefix
                    && a.observed_prefix == observed_prefix
                    && a.offending_origin == offending_origin
                    && a.hijack_type == hijack_type
                    && a.state != AlertState::Resolved
            });
        let (id, new) = self.upsert(
            hit,
            hijack_type,
            owned_prefix,
            observed_prefix,
            offending_origin,
            vantage,
            emitted_at,
            observed_at,
            source,
        );
        if new {
            scope.push(id);
        }
        (id, new)
    }

    /// Update the alert at `hit` with a new witness, or raise a fresh
    /// alert when `hit` is `None`.
    #[allow(clippy::too_many_arguments)]
    fn upsert(
        &mut self,
        hit: Option<usize>,
        hijack_type: HijackType,
        owned_prefix: Prefix,
        observed_prefix: Prefix,
        offending_origin: Option<Asn>,
        vantage: Asn,
        emitted_at: SimTime,
        observed_at: SimTime,
        source: FeedKind,
    ) -> (AlertId, bool) {
        if let Some(existing) = hit.map(|i| &mut self.alerts[i]) {
            existing.vantage_points.insert(vantage);
            existing.last_update = emitted_at;
            if observed_at < existing.first_observed_at {
                existing.first_observed_at = observed_at;
            }
            return (existing.id, false);
        }
        let id = AlertId(self.next_id);
        self.next_id += 1;
        self.alerts.push(Alert {
            id,
            hijack_type,
            owned_prefix,
            observed_prefix,
            offending_origin,
            detected_at: emitted_at,
            first_observed_at: observed_at,
            detected_by: source,
            vantage_points: [vantage].into_iter().collect(),
            state: AlertState::Active,
            last_update: emitted_at,
            rpki: None,
        });
        (id, true)
    }

    /// Attach an RPKI validity verdict to an alert.
    pub fn annotate_rpki(&mut self, id: AlertId, validity: crate::roa::RoaValidity) {
        if let Some(i) = self.idx(id) {
            self.alerts[i].rpki = Some(validity);
        }
    }

    /// Move an alert to `Mitigating`.
    pub fn mark_mitigating(&mut self, id: AlertId, at: SimTime) {
        if let Some(i) = self.idx(id) {
            self.alerts[i].state = AlertState::Mitigating;
            self.alerts[i].last_update = at;
        }
    }

    /// Move an alert to `Resolved`.
    pub fn mark_resolved(&mut self, id: AlertId, at: SimTime) {
        if let Some(i) = self.idx(id) {
            self.alerts[i].state = AlertState::Resolved;
            self.alerts[i].last_update = at;
        }
    }

    /// Look up by id.
    pub fn get(&self, id: AlertId) -> Option<&Alert> {
        self.idx(id).map(|i| &self.alerts[i])
    }

    /// All alerts, in raise order.
    pub fn all(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts still requiring attention.
    pub fn active(&self) -> impl Iterator<Item = &Alert> {
        self.alerts
            .iter()
            .filter(|a| a.state != AlertState::Resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn observe(store: &mut AlertStore, vantage: u32, t: u64) -> (AlertId, bool) {
        store.observe(
            HijackType::ExactOrigin,
            pfx("10.0.0.0/23"),
            pfx("10.0.0.0/23"),
            Some(Asn(666)),
            Asn(vantage),
            SimTime::from_secs(t),
            SimTime::from_secs(t.saturating_sub(5)),
            FeedKind::RisLive,
        )
    }

    #[test]
    fn first_observation_creates_alert() {
        let mut store = AlertStore::new();
        let (id, new) = observe(&mut store, 174, 100);
        assert!(new);
        let a = store.get(id).unwrap();
        assert_eq!(a.state, AlertState::Active);
        assert_eq!(a.detected_at, SimTime::from_secs(100));
        assert_eq!(a.vantage_points.len(), 1);
    }

    #[test]
    fn repeat_observations_deduplicate() {
        let mut store = AlertStore::new();
        let (id1, _) = observe(&mut store, 174, 100);
        let (id2, new) = observe(&mut store, 3356, 110);
        assert!(!new);
        assert_eq!(id1, id2);
        let a = store.get(id1).unwrap();
        assert_eq!(a.vantage_points.len(), 2);
        // Detection time stays at the first event.
        assert_eq!(a.detected_at, SimTime::from_secs(100));
        assert_eq!(a.last_update, SimTime::from_secs(110));
    }

    #[test]
    fn different_origin_is_a_new_alert() {
        let mut store = AlertStore::new();
        let (id1, _) = observe(&mut store, 174, 100);
        let (id2, new) = store.observe(
            HijackType::ExactOrigin,
            pfx("10.0.0.0/23"),
            pfx("10.0.0.0/23"),
            Some(Asn(667)),
            Asn(174),
            SimTime::from_secs(100),
            SimTime::from_secs(95),
            FeedKind::BgpMon,
        );
        assert!(new);
        assert_ne!(id1, id2);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut store = AlertStore::new();
        let (id, _) = observe(&mut store, 174, 100);
        store.mark_mitigating(id, SimTime::from_secs(115));
        assert_eq!(store.get(id).unwrap().state, AlertState::Mitigating);
        store.mark_resolved(id, SimTime::from_secs(400));
        assert_eq!(store.get(id).unwrap().state, AlertState::Resolved);
        assert_eq!(store.active().count(), 0);
    }

    #[test]
    fn resolved_alerts_do_not_absorb_new_observations() {
        let mut store = AlertStore::new();
        let (id, _) = observe(&mut store, 174, 100);
        store.mark_resolved(id, SimTime::from_secs(200));
        let (id2, new) = observe(&mut store, 174, 300);
        assert!(new, "a recurrence is a fresh incident");
        assert_ne!(id, id2);
    }

    #[test]
    fn first_observed_at_takes_minimum() {
        let mut store = AlertStore::new();
        let (id, _) = observe(&mut store, 174, 100); // observed at 95
        store.observe(
            HijackType::ExactOrigin,
            pfx("10.0.0.0/23"),
            pfx("10.0.0.0/23"),
            Some(Asn(666)),
            Asn(2914),
            SimTime::from_secs(120),
            SimTime::from_secs(90), // earlier routing-plane observation
            FeedKind::Periscope,
        );
        assert_eq!(
            store.get(id).unwrap().first_observed_at,
            SimTime::from_secs(90)
        );
    }

    #[test]
    fn display_mentions_key_facts() {
        let mut store = AlertStore::new();
        let (id, _) = observe(&mut store, 174, 100);
        let text = store.get(id).unwrap().to_string();
        assert!(text.contains("10.0.0.0/23"));
        assert!(text.contains("AS666"));
        assert!(text.contains("ris-live"));
    }
}
