//! Hijack-duration statistics (Argus \[3\] substitution).
//!
//! The paper cites two quantiles of the Argus hijack-duration data:
//! * "more than 20% of hijacks last < 10 mins" (§1), and
//! * ARTEMIS's ≈ 6 min total response "is smaller than the duration of
//!   > 80% of the hijacking cases observed in \[3\]" (§3).
//!
//! The dataset itself is not available offline, so we model durations
//! with a log-normal whose parameters honour both anchors (median
//! 35 min, σ = 1.5 gives P(< 10 min) ≈ 0.20 and P(< 6 min) ≈ 0.12) and
//! use it wherever the paper reasons about event durations (E4).

use artemis_simnet::{SimDuration, SimRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Log-normal hijack duration model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HijackDurationModel {
    /// Median duration.
    pub median: SimDuration,
    /// Shape (σ of the underlying normal).
    pub sigma: f64,
}

impl Default for HijackDurationModel {
    fn default() -> Self {
        Self::argus_calibrated()
    }
}

impl HijackDurationModel {
    /// Parameters honouring the two quantiles the paper cites.
    pub fn argus_calibrated() -> Self {
        HijackDurationModel {
            median: SimDuration::from_mins(35),
            sigma: 1.5,
        }
    }

    /// Sample one duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mu = self.median.as_secs_f64().max(1e-9).ln();
        let dist = LogNormal::new(mu, self.sigma).expect("finite parameters");
        SimDuration::from_secs_f64(dist.sample(rng.raw()))
    }

    /// Analytic CDF: fraction of hijacks lasting less than `d`.
    pub fn fraction_shorter_than(&self, d: SimDuration) -> f64 {
        if d.is_zero() {
            return 0.0;
        }
        let mu = self.median.as_secs_f64().max(1e-9).ln();
        let z = (d.as_secs_f64().ln() - mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Fraction of hijack events that *outlast* a response time `d`
    /// (the paper's "> 80%" claim with d ≈ 6 min).
    pub fn fraction_outlasting(&self, d: SimDuration) -> f64 {
        1.0 - self.fraction_shorter_than(d)
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|ε| < 1.5e-7
/// — far below anything these experiments resolve).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn paper_anchor_more_than_20pct_under_10min() {
        let m = HijackDurationModel::argus_calibrated();
        let f = m.fraction_shorter_than(SimDuration::from_mins(10));
        assert!(f > 0.20, "got {f}");
        assert!(f < 0.30, "got {f} — should stay close to the cited 20%");
    }

    #[test]
    fn paper_anchor_6min_beats_more_than_80pct() {
        let m = HijackDurationModel::argus_calibrated();
        let f = m.fraction_outlasting(SimDuration::from_mins(6));
        assert!(f > 0.80, "got {f}");
    }

    #[test]
    fn cdf_is_monotone() {
        let m = HijackDurationModel::argus_calibrated();
        let mut prev = 0.0;
        for mins in [1u64, 5, 10, 30, 60, 120, 600] {
            let f = m.fraction_shorter_than(SimDuration::from_mins(mins));
            assert!(f >= prev);
            prev = f;
        }
        assert!(prev > 0.9, "10 hours should cover most events");
    }

    #[test]
    fn samples_match_analytic_cdf() {
        let m = HijackDurationModel::argus_calibrated();
        let mut rng = SimRng::new(42);
        let n = 20_000;
        let under_10 = (0..n)
            .filter(|_| m.sample(&mut rng) < SimDuration::from_mins(10))
            .count() as f64
            / n as f64;
        let analytic = m.fraction_shorter_than(SimDuration::from_mins(10));
        assert!(
            (under_10 - analytic).abs() < 0.02,
            "empirical {under_10} vs analytic {analytic}"
        );
    }

    #[test]
    fn zero_duration_edge() {
        let m = HijackDurationModel::argus_calibrated();
        assert_eq!(m.fraction_shorter_than(SimDuration::ZERO), 0.0);
        assert_eq!(m.fraction_outlasting(SimDuration::ZERO), 1.0);
    }
}
