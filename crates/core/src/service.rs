//! The operator control plane: [`ArtemisService`].
//!
//! ARTEMIS is pitched as a *service* an operator runs continuously
//! against their own prefixes; the follow-up work and the operator
//! survey both name self-operation, a configurable auto-mitigation
//! policy, and live visibility as the adoption blockers. This module
//! is that layer: it wraps a [`Pipeline`] together with the
//! operator's [`Controller`] (and optional helper-AS controllers) and
//! exposes three typed surfaces:
//!
//! * **Commands** — [`ServiceCommand`] applied via
//!   [`ArtemisService::apply`]: runtime prefix onboarding/offboarding,
//!   feed attach/detach by stable [`FeedHandle`], per-prefix
//!   [`MitigationPolicy`] swaps, confirm-first approvals, and
//!   pause/resume of mitigation without stopping detection.
//! * **Queries** — [`ServiceQuery`] answered with owned,
//!   `serde`-serializable snapshots ([`ServiceStatus`] and friends)
//!   rather than borrows into pipeline internals.
//! * **Events** — the owned [`IncidentEvent`](crate::event_log::IncidentEvent) stream via
//!   [`ArtemisService::poll_events`]; every consumer holds its own
//!   [`EventCursor`] and replays the identical history. The borrowing
//!   [`PipelineEvent`] observer
//!   callback of [`ArtemisService::run`] remains available as a thin
//!   inline adapter.

#![deny(missing_docs)]

use crate::alert::{AlertId, AlertState};
use crate::config::OwnedPrefix;
use crate::event_log::{EventCursor, EventLog, PollBatch};
use crate::mitigation::{MitigationPlan, MitigationPolicy};
use crate::pipeline::{OffboardReport, Pipeline, PipelineEvent, RunReport, WorkerStatus};
use crate::{AppAction, HijackType};
use artemis_bgp::{Asn, Prefix};
use artemis_bgpsim::Engine;
use artemis_controller::Controller;
use artemis_feeds::{FeedEvent, FeedHandle, FeedKind, FeedSpec};
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::ControlFlow;

/// A typed operator command, applied with [`ArtemisService::apply`].
///
/// Every variant is a plain serializable value — including feed
/// attachment, which carries a [`FeedSpec`] description rather than a
/// trait object — so the exact same command type travels over the
/// daemon's wire API and through the in-process API. Feeds that
/// cannot be described by a spec (archive/replay feeds needing engine
/// views or raw bytes) attach at assembly time via
/// [`Pipeline::attach_feed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceCommand {
    /// Onboard an owned prefix at runtime, optionally with a
    /// per-prefix mitigation policy override.
    AddOwnedPrefix {
        /// The prefix and its legitimacy rules.
        owned: OwnedPrefix,
        /// Policy override; `None` follows the service default.
        policy: Option<MitigationPolicy>,
    },
    /// Offboard an owned prefix: in-flight incidents on its shard are
    /// closed, monitors freeze, executed mitigation plans are
    /// withdrawn so no intent keeps originating offboarded space.
    RemoveOwnedPrefix {
        /// The prefix to offboard (must match a configured prefix
        /// exactly).
        prefix: Prefix,
    },
    /// Attach a monitoring feed described by a serializable
    /// [`FeedSpec`]; the outcome carries its stable [`FeedHandle`].
    AttachFeed {
        /// Description of the feed to attach.
        feed: FeedSpec,
    },
    /// Detach a feed by handle; its queued undelivered events are
    /// dropped deterministically (see `FeedHub::remove`).
    DetachFeed {
        /// The handle returned when the feed was attached.
        handle: FeedHandle,
    },
    /// Swap the mitigation policy of one owned prefix.
    SetMitigationPolicy {
        /// The owned prefix concerned.
        prefix: Prefix,
        /// The policy to enforce from now on.
        policy: MitigationPolicy,
    },
    /// Execute the held plan of a confirm-first (or paused-era) alert.
    ConfirmMitigation {
        /// The alert whose pending plan should execute.
        alert: AlertId,
    },
    /// Pause mitigation service-wide; detection and monitoring keep
    /// running and new plans accumulate as pending.
    Pause,
    /// Resume mitigation; pending plans under an `Auto` policy
    /// execute immediately.
    Resume,
}

/// What a successfully applied [`ServiceCommand`] did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// The prefix was onboarded.
    PrefixAdded {
        /// The onboarded prefix.
        prefix: Prefix,
    },
    /// The prefix was offboarded; the report details the wind-down.
    PrefixRemoved(OffboardReport),
    /// The feed was attached under this stable handle.
    FeedAttached {
        /// Handle for later queries/detach.
        handle: FeedHandle,
    },
    /// The feed was detached.
    FeedDetached {
        /// The detached feed's handle.
        handle: FeedHandle,
        /// Queued undelivered events dropped with it.
        dropped_events: usize,
    },
    /// The policy override is in force.
    PolicySet {
        /// The owned prefix concerned.
        prefix: Prefix,
        /// The policy now in force.
        policy: MitigationPolicy,
    },
    /// The held plan executed.
    MitigationConfirmed {
        /// The confirmed alert.
        alert: AlertId,
        /// The plan that executed.
        plan: MitigationPlan,
    },
    /// Mitigation is now paused.
    Paused,
    /// Mitigation resumed.
    Resumed {
        /// Alerts whose held plans executed on resume.
        executed_alerts: Vec<AlertId>,
    },
}

/// Why a [`ServiceCommand`] was rejected. Rejected commands change
/// nothing and record nothing in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The prefix is not currently configured.
    UnknownPrefix(Prefix),
    /// A shard for exactly this prefix already exists.
    DuplicatePrefix(Prefix),
    /// No feed is attached under this handle.
    UnknownFeed(FeedHandle),
    /// The alert has no held plan (never pending, already confirmed,
    /// or executed on resume).
    NothingPending(AlertId),
    /// `Pause` while already paused.
    AlreadyPaused,
    /// `Resume` while not paused.
    NotPaused,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownPrefix(p) => write!(f, "prefix {p} is not configured"),
            ServiceError::DuplicatePrefix(p) => write!(f, "prefix {p} is already configured"),
            ServiceError::UnknownFeed(h) => write!(f, "no feed attached under {h}"),
            ServiceError::NothingPending(a) => {
                write!(f, "alert {} has no pending mitigation plan", a.0)
            }
            ServiceError::AlreadyPaused => write!(f, "mitigation is already paused"),
            ServiceError::NotPaused => write!(f, "mitigation is not paused"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A typed read-only question, answered with [`ArtemisService::query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceQuery {
    /// The full snapshot.
    Status,
    /// Only the owned-prefix table.
    OwnedPrefixes,
    /// Only the incident table.
    Incidents,
    /// Only feed health.
    Feeds,
}

/// The answer to a [`ServiceQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceReply {
    /// Answer to [`ServiceQuery::Status`].
    Status(ServiceStatus),
    /// Answer to [`ServiceQuery::OwnedPrefixes`].
    OwnedPrefixes(Vec<PrefixStatus>),
    /// Answer to [`ServiceQuery::Incidents`].
    Incidents(Vec<IncidentStatus>),
    /// Answer to [`ServiceQuery::Feeds`].
    Feeds(Vec<FeedStatus>),
}

/// Owned snapshot of the whole service — serializable, no borrows
/// into pipeline internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStatus {
    /// Snapshot instant (the `now` passed to the query).
    pub at: SimTime,
    /// True while mitigation is paused.
    pub mitigation_paused: bool,
    /// Feed events delivered to the detector so far.
    pub events_delivered: u64,
    /// Total incident events recorded (retained or evicted).
    pub events_recorded: u64,
    /// The owned-prefix table with per-shard state.
    pub owned: Vec<PrefixStatus>,
    /// Every incident (open and resolved), in alert-raise order.
    pub incidents: Vec<IncidentStatus>,
    /// Per-feed health.
    pub feeds: Vec<FeedStatus>,
    /// Worker occupancy of the (possibly parallel) pipeline.
    ///
    /// Observability only: these counters are the one part of a
    /// status snapshot that legitimately differs between worker
    /// counts; [`ServiceStatus::scrubbed_of_worker_stats`] strips them
    /// for cross-configuration identity comparisons.
    pub workers: WorkerStatus,
}

impl ServiceStatus {
    /// The snapshot with worker-occupancy counters reset — everything
    /// left is guaranteed identical across `PipelineConfig::workers`
    /// settings for the same input stream (the parallel pipeline's
    /// determinism contract, locked by the cross-seed property tests).
    pub fn scrubbed_of_worker_stats(mut self) -> Self {
        self.workers = WorkerStatus::default();
        self
    }
}

/// One row of the owned-prefix table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixStatus {
    /// The owned prefix.
    pub prefix: Prefix,
    /// ASNs allowed to originate it.
    pub legitimate_origins: Vec<Asn>,
    /// True for owned-but-unannounced (squatting detection) prefixes.
    pub dormant: bool,
    /// The mitigation policy in force.
    pub policy: MitigationPolicy,
    /// Feed events routed to this prefix's shard.
    pub shard_events: u64,
    /// Unresolved alerts on this prefix.
    pub open_alerts: usize,
}

/// Where an incident sits in its mitigation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationPhase {
    /// No plan computed (detect-only, or nothing happened yet).
    None,
    /// A plan is computed and held for confirmation.
    PendingConfirmation,
    /// The plan executed; waiting for vantage points to recover.
    Executing,
    /// The incident is over.
    Resolved,
}

/// One row of the incident table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentStatus {
    /// The alert's identifier.
    pub alert: AlertId,
    /// The configured prefix under attack.
    pub owned_prefix: Prefix,
    /// The offending announcement's prefix.
    pub observed_prefix: Prefix,
    /// Classification.
    pub hijack_type: HijackType,
    /// Offending origin AS, when defined.
    pub offending_origin: Option<Asn>,
    /// Alert lifecycle state.
    pub state: AlertState,
    /// Detection instant.
    pub detected_at: SimTime,
    /// Witnessing vantage points so far.
    pub vantage_points: usize,
    /// Mitigation lifecycle phase.
    pub phase: MitigationPhase,
    /// The attached monitor's aggregate view, when one exists.
    pub monitor: Option<MonitorSummary>,
}

/// Aggregate vantage-point counts from an incident's monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorSummary {
    /// Vantage points on a legitimate origin.
    pub legitimate: usize,
    /// Vantage points on the offending origin.
    pub hijacked: usize,
    /// Vantage points with no data yet.
    pub unknown: usize,
}

/// One row of the feed-health table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedStatus {
    /// The feed's stable handle.
    pub handle: FeedHandle,
    /// Feed family.
    pub kind: FeedKind,
    /// Instance name.
    pub name: String,
    /// Events emitted over the feed's lifetime.
    pub events_emitted: u64,
    /// Pull queries issued (0 for push feeds).
    pub polls_executed: u64,
    /// Events queued in the hub (emitted, not yet drained) from this
    /// feed — the daemon-visible lag depth.
    pub queued_events: usize,
    /// Emission instant of the newest event this feed queued, if any —
    /// the daemon-visible "last seen" instant. Both fields read the
    /// hub's [`artemis_feeds::FeedLag`] bookkeeping, the same source
    /// `/metrics` scrapes, so query and metrics always agree.
    pub last_event_at: Option<SimTime>,
    /// Events discarded before reaching the hub's merge queue:
    /// pre-heap filter rejections plus feed-local sheds, filters, and
    /// outage windows. Monotone.
    pub dropped_events: u64,
    /// The backpressure subset of `dropped_events`: events shed from a
    /// bounded ring because the detector fell behind. Monotone.
    pub shed_events: u64,
}

/// The runtime-reconfigurable ARTEMIS service: a [`Pipeline`] plus
/// the operator's [`Controller`] (and optional helper-AS controllers)
/// behind typed commands, queries, and an owned event stream.
pub struct ArtemisService {
    pipeline: Pipeline,
    controller: Controller,
    helpers: Vec<Controller>,
}

impl ArtemisService {
    /// Assemble the service around a pipeline and the operator's
    /// controller.
    pub fn new(pipeline: Pipeline, controller: Controller) -> Self {
        ArtemisService {
            pipeline,
            controller,
            helpers: Vec::new(),
        }
    }

    /// Attach helper-AS controllers (outsourced /24 mitigation).
    pub fn with_helpers(mut self, helpers: Vec<Controller>) -> Self {
        self.helpers = helpers;
        self
    }

    /// Read access to the wrapped pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable access to the wrapped pipeline (setup-time escape
    /// hatch; prefer commands at runtime).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Read access to the operator's controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the operator's controller (drivers apply due
    /// actions to their routing layer).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// The helper-AS controllers.
    pub fn helpers(&self) -> &[Controller] {
        &self.helpers
    }

    /// Tear the service apart again.
    pub fn into_parts(self) -> (Pipeline, Controller, Vec<Controller>) {
        (self.pipeline, self.controller, self.helpers)
    }

    // ---- Commands ---------------------------------------------------

    /// Apply one typed command at `now`. Successful commands record
    /// their effect in the event stream; rejected ones change nothing.
    pub fn apply(
        &mut self,
        cmd: ServiceCommand,
        now: SimTime,
    ) -> Result<CommandOutcome, ServiceError> {
        match cmd {
            ServiceCommand::AddOwnedPrefix { owned, policy } => {
                let prefix = owned.prefix;
                if self.pipeline.add_owned_prefix(owned, policy, now) {
                    Ok(CommandOutcome::PrefixAdded { prefix })
                } else {
                    Err(ServiceError::DuplicatePrefix(prefix))
                }
            }
            ServiceCommand::RemoveOwnedPrefix { prefix } => self
                .pipeline
                .remove_owned_prefix(prefix, now, &mut self.controller, &mut self.helpers)
                .map(CommandOutcome::PrefixRemoved)
                .ok_or(ServiceError::UnknownPrefix(prefix)),
            ServiceCommand::AttachFeed { feed } => {
                let handle = self.pipeline.attach_feed(feed.build(), now);
                Ok(CommandOutcome::FeedAttached { handle })
            }
            ServiceCommand::DetachFeed { handle } => self
                .pipeline
                .detach_feed(handle, now)
                .map(|dropped_events| CommandOutcome::FeedDetached {
                    handle,
                    dropped_events,
                })
                .ok_or(ServiceError::UnknownFeed(handle)),
            ServiceCommand::SetMitigationPolicy { prefix, policy } => {
                if self.pipeline.set_mitigation_policy(prefix, policy, now) {
                    Ok(CommandOutcome::PolicySet { prefix, policy })
                } else {
                    Err(ServiceError::UnknownPrefix(prefix))
                }
            }
            ServiceCommand::ConfirmMitigation { alert } => self
                .pipeline
                .confirm_mitigation(alert, now, &mut self.controller, &mut self.helpers)
                .map(|plan| CommandOutcome::MitigationConfirmed { alert, plan })
                .ok_or(ServiceError::NothingPending(alert)),
            ServiceCommand::Pause => {
                if self.pipeline.mitigation_paused() {
                    Err(ServiceError::AlreadyPaused)
                } else {
                    self.pipeline.pause_mitigation(now);
                    Ok(CommandOutcome::Paused)
                }
            }
            ServiceCommand::Resume => {
                if !self.pipeline.mitigation_paused() {
                    Err(ServiceError::NotPaused)
                } else {
                    let executed_alerts = self.pipeline.resume_mitigation(
                        now,
                        &mut self.controller,
                        &mut self.helpers,
                    );
                    Ok(CommandOutcome::Resumed { executed_alerts })
                }
            }
        }
    }

    /// Drive the live side of the service one tick: run every ready
    /// pull feed (live BMP rings report readiness exactly when they
    /// hold events), then deliver everything due by `now` through
    /// detection, monitoring and policy-gated mitigation. Returns the
    /// number of events delivered. This is the daemon's pump loop
    /// body; idle ticks cost one readiness check per feed.
    pub fn pump_feeds(&mut self, now: SimTime) -> u64 {
        self.pipeline.poll_feeds(now);
        self.pipeline
            .deliver_due(now, &mut self.controller, &mut self.helpers)
    }

    // ---- Queries ----------------------------------------------------

    /// Answer one typed query as an owned snapshot taken at `now`.
    pub fn query(&self, q: ServiceQuery, now: SimTime) -> ServiceReply {
        match q {
            ServiceQuery::Status => ServiceReply::Status(self.status(now)),
            ServiceQuery::OwnedPrefixes => ServiceReply::OwnedPrefixes(self.prefix_table()),
            ServiceQuery::Incidents => ServiceReply::Incidents(self.incident_table(now)),
            ServiceQuery::Feeds => ServiceReply::Feeds(self.feed_table()),
        }
    }

    /// The full snapshot at `now` (owned, serializable).
    pub fn status(&self, now: SimTime) -> ServiceStatus {
        ServiceStatus {
            at: now,
            mitigation_paused: self.pipeline.mitigation_paused(),
            events_delivered: self.pipeline.events_delivered(),
            events_recorded: self.pipeline.event_log().total_pushed(),
            owned: self.prefix_table(),
            incidents: self.incident_table(now),
            feeds: self.feed_table(),
            workers: self.pipeline.worker_status(),
        }
    }

    fn prefix_table(&self) -> Vec<PrefixStatus> {
        let detector = self.pipeline.detector();
        self.pipeline
            .config()
            .owned
            .iter()
            .map(|o| PrefixStatus {
                prefix: o.prefix,
                legitimate_origins: o.legitimate_origins.iter().copied().collect(),
                dormant: o.dormant,
                policy: self.pipeline.mitigation_policy(o.prefix),
                shard_events: detector.shard_events(o.prefix).unwrap_or(0),
                open_alerts: detector
                    .alerts()
                    .all()
                    .iter()
                    .filter(|a| a.owned_prefix == o.prefix && a.state != AlertState::Resolved)
                    .count(),
            })
            .collect()
    }

    fn incident_table(&self, now: SimTime) -> Vec<IncidentStatus> {
        let pending: std::collections::BTreeSet<AlertId> = self
            .pipeline
            .pending_mitigations()
            .map(|(id, _)| id)
            .collect();
        self.pipeline
            .detector()
            .alerts()
            .all()
            .iter()
            .map(|a| {
                let phase = if a.state == AlertState::Resolved {
                    MitigationPhase::Resolved
                } else if pending.contains(&a.id) {
                    MitigationPhase::PendingConfirmation
                } else if a.state == AlertState::Mitigating {
                    MitigationPhase::Executing
                } else {
                    MitigationPhase::None
                };
                // Active incidents snapshot their live monitor; over
                // incidents read the counts frozen at retirement
                // (identical, since a frozen monitor never changes).
                let monitor = self
                    .pipeline
                    .monitor_for(a.id)
                    .map(|m| {
                        let snap = m.snapshot(now);
                        MonitorSummary {
                            legitimate: snap.legitimate,
                            hijacked: snap.hijacked,
                            unknown: snap.unknown,
                        }
                    })
                    .or_else(|| {
                        self.pipeline.retired_monitor(a.id).map(|r| {
                            let last = r.final_point();
                            MonitorSummary {
                                legitimate: last.legitimate,
                                hijacked: last.hijacked,
                                unknown: last.unknown,
                            }
                        })
                    });
                IncidentStatus {
                    alert: a.id,
                    owned_prefix: a.owned_prefix,
                    observed_prefix: a.observed_prefix,
                    hijack_type: a.hijack_type,
                    offending_origin: a.offending_origin,
                    state: a.state,
                    detected_at: a.detected_at,
                    vantage_points: a.vantage_points.len(),
                    phase,
                    monitor,
                }
            })
            .collect()
    }

    fn feed_table(&self) -> Vec<FeedStatus> {
        let hub = self.pipeline.hub();
        hub.handles()
            .map(|(handle, feed)| {
                let lag = hub.feed_lag(handle).unwrap_or_default();
                FeedStatus {
                    handle,
                    kind: feed.kind(),
                    name: feed.name().to_string(),
                    events_emitted: feed.events_emitted(),
                    polls_executed: feed.polls_executed(),
                    queued_events: lag.queued_events,
                    last_event_at: lag.last_event_at,
                    dropped_events: lag.dropped_events,
                    shed_events: lag.shed_events,
                }
            })
            .collect()
    }

    // ---- Events -----------------------------------------------------

    /// Everything recorded since `cursor`. Multiple consumers with
    /// independent cursors replay the identical history.
    pub fn poll_events(&self, cursor: EventCursor) -> PollBatch {
        self.pipeline.poll_events(cursor)
    }

    /// Read access to the underlying event log.
    pub fn event_log(&self) -> &EventLog {
        self.pipeline.event_log()
    }

    /// Wall-clock per-stage batch latency (observability only; see
    /// [`crate::metrics::StageMetrics`]).
    pub fn stage_metrics(&self) -> &crate::metrics::StageMetrics {
        self.pipeline.stage_metrics()
    }

    // ---- Driving ----------------------------------------------------

    /// Feed one monitoring event through the pipeline using the
    /// service's own controllers (deployments that bring their own
    /// transport).
    pub fn deliver(&mut self, event: &FeedEvent) -> Vec<AppAction> {
        self.pipeline
            .deliver(event, &mut self.controller, &mut self.helpers)
    }

    /// Drive the interleaved clock domains until `horizon` (or drain,
    /// or observer break) with the service's own controllers. The
    /// observer is the legacy borrowing callback — a thin inline
    /// adapter; the owned history is always available via
    /// [`ArtemisService::poll_events`].
    pub fn run<F>(
        &mut self,
        engine: &mut Engine,
        start: SimTime,
        horizon: SimTime,
        observer: F,
    ) -> RunReport
    where
        F: FnMut(&mut Engine, PipelineEvent<'_>) -> ControlFlow<()>,
    {
        self.pipeline.run_with_helpers(
            engine,
            &mut self.controller,
            &mut self.helpers,
            start,
            horizon,
            observer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArtemisConfig;
    use crate::event_log::IncidentEvent;
    use artemis_bgp::AsPath;
    use artemis_simnet::{LatencyModel, SimRng};
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn service() -> ArtemisService {
        let config = ArtemisConfig::new(
            Asn(65001),
            vec![OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(65001))],
        );
        let pipeline = Pipeline::bare(config, [Asn(174), Asn(3356)].into_iter().collect());
        let controller = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        ArtemisService::new(pipeline, controller)
    }

    fn event(vp: u32, prefix: &str, path: &[u32], t: u64) -> FeedEvent {
        let as_path = AsPath::from_sequence(path.iter().copied());
        let origin = as_path.origin();
        FeedEvent {
            emitted_at: SimTime::from_secs(t),
            observed_at: SimTime::from_secs(t.saturating_sub(5)),
            source: FeedKind::RisLive,
            collector: "rrc00".into(),
            vantage: Asn(vp),
            prefix: pfx(prefix),
            as_path: Some(as_path),
            origin_as: origin,
            raw: None,
        }
    }

    #[test]
    fn commands_round_trip_through_typed_outcomes() {
        let mut svc = service();
        let t = SimTime::from_secs(1);

        // Onboard + duplicate rejection.
        let out = svc
            .apply(
                ServiceCommand::AddOwnedPrefix {
                    owned: OwnedPrefix::new(pfx("172.16.0.0/23"), Asn(65001)),
                    policy: Some(MitigationPolicy::ConfirmFirst),
                },
                t,
            )
            .unwrap();
        assert_eq!(
            out,
            CommandOutcome::PrefixAdded {
                prefix: pfx("172.16.0.0/23")
            }
        );
        assert_eq!(
            svc.apply(
                ServiceCommand::AddOwnedPrefix {
                    owned: OwnedPrefix::new(pfx("172.16.0.0/23"), Asn(65001)),
                    policy: None,
                },
                t,
            ),
            Err(ServiceError::DuplicatePrefix(pfx("172.16.0.0/23")))
        );

        // Feed lifecycle by handle.
        let out = svc
            .apply(
                ServiceCommand::AttachFeed {
                    feed: FeedSpec::ris_live("rrc", vec![Asn(174)]),
                },
                t,
            )
            .unwrap();
        let CommandOutcome::FeedAttached { handle } = out else {
            panic!("expected FeedAttached, got {out:?}");
        };
        assert_eq!(
            svc.apply(ServiceCommand::DetachFeed { handle }, t).unwrap(),
            CommandOutcome::FeedDetached {
                handle,
                dropped_events: 0
            }
        );
        assert_eq!(
            svc.apply(ServiceCommand::DetachFeed { handle }, t),
            Err(ServiceError::UnknownFeed(handle))
        );

        // Policy swap + unknown prefix rejection.
        assert_eq!(
            svc.apply(
                ServiceCommand::SetMitigationPolicy {
                    prefix: pfx("10.0.0.0/23"),
                    policy: MitigationPolicy::DetectOnly,
                },
                t,
            )
            .unwrap(),
            CommandOutcome::PolicySet {
                prefix: pfx("10.0.0.0/23"),
                policy: MitigationPolicy::DetectOnly
            }
        );
        assert_eq!(
            svc.apply(
                ServiceCommand::SetMitigationPolicy {
                    prefix: pfx("8.8.8.0/24"),
                    policy: MitigationPolicy::Auto,
                },
                t,
            ),
            Err(ServiceError::UnknownPrefix(pfx("8.8.8.0/24")))
        );

        // Pause/resume with precise no-op errors.
        assert_eq!(
            svc.apply(ServiceCommand::Resume, t),
            Err(ServiceError::NotPaused)
        );
        assert_eq!(
            svc.apply(ServiceCommand::Pause, t).unwrap(),
            CommandOutcome::Paused
        );
        assert_eq!(
            svc.apply(ServiceCommand::Pause, t),
            Err(ServiceError::AlreadyPaused)
        );
        assert!(matches!(
            svc.apply(ServiceCommand::Resume, t).unwrap(),
            CommandOutcome::Resumed { .. }
        ));

        // Offboard + unknown prefix rejection.
        assert!(matches!(
            svc.apply(
                ServiceCommand::RemoveOwnedPrefix {
                    prefix: pfx("172.16.0.0/23")
                },
                t,
            )
            .unwrap(),
            CommandOutcome::PrefixRemoved(_)
        ));
        assert_eq!(
            svc.apply(
                ServiceCommand::RemoveOwnedPrefix {
                    prefix: pfx("172.16.0.0/23")
                },
                t,
            ),
            Err(ServiceError::UnknownPrefix(pfx("172.16.0.0/23")))
        );
    }

    #[test]
    fn status_snapshot_is_owned_and_serializable() {
        let mut svc = service();
        svc.apply(
            ServiceCommand::SetMitigationPolicy {
                prefix: pfx("10.0.0.0/23"),
                policy: MitigationPolicy::ConfirmFirst,
            },
            SimTime::from_secs(1),
        )
        .unwrap();
        svc.deliver(&event(174, "10.0.0.0/23", &[174, 666], 45));

        let status = svc.status(SimTime::from_secs(50));
        assert_eq!(status.owned.len(), 1);
        assert_eq!(status.owned[0].policy, MitigationPolicy::ConfirmFirst);
        assert_eq!(status.owned[0].open_alerts, 1);
        assert_eq!(status.incidents.len(), 1);
        assert_eq!(
            status.incidents[0].phase,
            MitigationPhase::PendingConfirmation
        );
        let monitor = status.incidents[0].monitor.expect("monitor per alert");
        assert_eq!(monitor.hijacked, 1);

        // Owned + serializable: the whole snapshot round-trips to JSON.
        let json = serde_json::to_string(&status).unwrap();
        assert!(json.contains("10.0.0.0/23"));

        // Sub-queries agree with the full snapshot.
        let ServiceReply::Incidents(incidents) =
            svc.query(ServiceQuery::Incidents, SimTime::from_secs(50))
        else {
            panic!("wrong reply variant");
        };
        assert_eq!(incidents, status.incidents);
    }

    #[test]
    fn confirm_command_executes_the_held_plan() {
        let mut svc = service();
        svc.apply(
            ServiceCommand::SetMitigationPolicy {
                prefix: pfx("10.0.0.0/23"),
                policy: MitigationPolicy::ConfirmFirst,
            },
            SimTime::from_secs(1),
        )
        .unwrap();
        let acts = svc.deliver(&event(174, "10.0.0.0/23", &[174, 666], 45));
        let AppAction::AlertRaised(id) = acts[0] else {
            panic!("must alert");
        };
        assert_eq!(svc.controller().intents().count(), 0);
        let out = svc
            .apply(
                ServiceCommand::ConfirmMitigation { alert: id },
                SimTime::from_secs(60),
            )
            .unwrap();
        assert!(matches!(out, CommandOutcome::MitigationConfirmed { alert, .. } if alert == id));
        assert_eq!(svc.controller().intents().count(), 2);
        assert_eq!(
            svc.apply(
                ServiceCommand::ConfirmMitigation { alert: id },
                SimTime::from_secs(61),
            ),
            Err(ServiceError::NothingPending(id))
        );
    }

    #[test]
    fn rejected_commands_record_no_events() {
        let mut svc = service();
        let before = svc.event_log().total_pushed();
        let _ = svc.apply(ServiceCommand::Resume, SimTime::ZERO);
        let _ = svc.apply(
            ServiceCommand::RemoveOwnedPrefix {
                prefix: pfx("8.8.8.0/24"),
            },
            SimTime::ZERO,
        );
        assert_eq!(svc.event_log().total_pushed(), before);
    }

    #[test]
    fn event_stream_records_command_lifecycle() {
        let mut svc = service();
        let t = SimTime::from_secs(1);
        svc.apply(
            ServiceCommand::AddOwnedPrefix {
                owned: OwnedPrefix::new(pfx("172.16.0.0/23"), Asn(65001)),
                policy: None,
            },
            t,
        )
        .unwrap();
        svc.apply(ServiceCommand::Pause, t).unwrap();
        svc.apply(ServiceCommand::Resume, t).unwrap();
        svc.apply(
            ServiceCommand::RemoveOwnedPrefix {
                prefix: pfx("172.16.0.0/23"),
            },
            t,
        )
        .unwrap();
        let batch = svc.poll_events(EventCursor::START);
        let kinds: Vec<&'static str> = batch
            .events
            .iter()
            .map(|e| match e {
                IncidentEvent::PrefixOnboarded { .. } => "onboard",
                IncidentEvent::MitigationPaused { .. } => "pause",
                IncidentEvent::MitigationResumed { .. } => "resume",
                IncidentEvent::PrefixOffboarded { .. } => "offboard",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["onboard", "pause", "resume", "offboard"]);
    }
}
