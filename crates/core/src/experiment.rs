//! The PEERING-style hijack experiment harness (paper §3).
//!
//! Reproduces the paper's methodology on the simulated Internet:
//!
//! * **Phase 1 — Setup**: ASN-1 (the victim, a stub AS — exactly what a
//!   PEERING mux gives you) announces the prefix; we wait for BGP
//!   convergence ("until the announcement becomes visible to all the
//!   LGs in our arsenal").
//! * **Phase 2 — Hijacking and Detection**: ASN-2 announces the same
//!   prefix (or a more-specific) from a different edge of the graph;
//!   ARTEMIS watches its feeds; detection is the first feed event that
//!   raises an alert.
//! * **Phase 3 — Mitigation**: ARTEMIS de-aggregates through the
//!   controller; the experiment measures the instant the de-aggregated
//!   announcements leave the AS and the instant *every* vantage point
//!   selects the legitimate origin again.
//!
//! The run interleaves four clock domains deterministically — the BGP
//! engine, the controller's install queue, pull-feed polls, and
//! batched feed-event deliveries — by assembling an
//! [`ArtemisService`] (pipeline + controller) and delegating to
//! [`ArtemisService::run`]; the harness itself only assembles the
//! scenario and records milestones.

use crate::app::AppAction;
use crate::config::{ArtemisConfig, OwnedPrefix};
use crate::monitor::TimelinePoint;
use crate::pipeline::{Pipeline, PipelineEvent};
use crate::service::ArtemisService;
use artemis_bgp::{Asn, Prefix};
use artemis_bgpsim::{Engine, SimConfig};
use artemis_controller::{Controller, IntentKind};
use artemis_feeds::{
    vantage::group_into_collectors, FeedHub, FeedKind, LookingGlass, PeriscopeFeed, StreamFeed,
    VantageStrategy,
};
use artemis_simnet::{LatencyModel, SimDuration, SimRng, SimTime};
use artemis_topology::{generate, GeneratedTopology, TopologyConfig};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// The attack the adversary performs (Phase 2). The demo paper's
/// experiments perform `ExactOrigin`; the other kinds exercise the
/// detector's full classification taxonomy (documented extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Announce the victim's exact prefix with the attacker as origin.
    ExactOrigin,
    /// Announce a more-specific of the victim's prefix.
    SubPrefix,
    /// Announce a more-specific with a forged path ending in the
    /// victim's ASN (evades origin-only checks).
    SubPrefixForgedOrigin,
    /// Announce the exact prefix with a forged victim-origin path
    /// (Type-1: fake adjacency attacker→victim).
    Type1FakeAdjacency,
}

impl AttackKind {
    /// Does this attack fabricate the AS_PATH?
    pub fn forges_path(self) -> bool {
        matches!(
            self,
            AttackKind::SubPrefixForgedOrigin | AttackKind::Type1FakeAdjacency
        )
    }

    /// Does this attack target a more-specific prefix?
    pub fn is_subprefix(self) -> bool {
        matches!(
            self,
            AttackKind::SubPrefix | AttackKind::SubPrefixForgedOrigin
        )
    }
}

/// Which live sources ARTEMIS uses (E3 ablates these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSelection {
    /// RIS-live style stream.
    pub ris: bool,
    /// BGPmon style stream.
    pub bgpmon: bool,
    /// Periscope looking glasses.
    pub periscope: bool,
}

impl Default for SourceSelection {
    fn default() -> Self {
        SourceSelection {
            ris: true,
            bgpmon: true,
            periscope: true,
        }
    }
}

/// Builder for a hijack experiment.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    /// Master seed (drives everything).
    pub seed: u64,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// BGP engine timing.
    pub sim: SimConfig,
    /// The owned/victim prefix.
    pub prefix: Prefix,
    /// The prefix the attacker announces (defaults to `prefix` = exact
    /// hijack; set a more-specific for sub-prefix experiments).
    pub hijack_prefix: Option<Prefix>,
    /// Number of stream vantage points (shared between RIS/BGPmon).
    pub stream_vps: usize,
    /// Number of RIS collectors the VPs are spread over.
    pub ris_collectors: usize,
    /// Number of Periscope looking glasses.
    pub lg_count: usize,
    /// LG poll interval (rate limit).
    pub lg_interval: SimDuration,
    /// Vantage selection strategy.
    pub vantage_strategy: VantageStrategy,
    /// Which sources are enabled.
    pub sources: SourceSelection,
    /// Controller install delay (paper ≈ 15 s).
    pub controller_delay: LatencyModel,
    /// RIS-live export pipeline delay (2016-era streaming service).
    pub ris_delay: LatencyModel,
    /// BGPmon export pipeline delay.
    pub bgpmon_delay: LatencyModel,
    /// Delay between Phase-1 convergence and the hijack launch.
    pub hijack_offset: SimDuration,
    /// Hard stop for the run.
    pub max_sim_time: SimDuration,
    /// Disable mitigation (detection-only runs, used by baselines).
    pub mitigate: bool,
    /// De-aggregation aggressiveness (ablation knob).
    pub deagg_policy: crate::config::DeaggregationPolicy,
    /// What the adversary does in Phase 2.
    pub attack: AttackKind,
    /// Detection worker threads for the assembled pipeline
    /// (`PipelineConfig::workers`; 1 = sequential). Outcomes are
    /// byte-identical across worker counts — the knob only changes
    /// how the hardware is used.
    pub workers: usize,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        // Calibration (DESIGN.md §4): half the eBGP sessions batch even
        // first advertisements (out-delay routers); the 2016-era RIS
        // streaming pipeline has a ~15 s median, BGPmon ~25 s. Together
        // with propagation this lands detection around the paper's
        // ≈ 45 s average and full mitigation in minutes.
        let sim = SimConfig {
            mrai_on_first: 0.5,
            ..SimConfig::default()
        };
        ExperimentBuilder {
            seed: 1,
            topology: TopologyConfig::medium(),
            sim,
            prefix: "10.0.0.0/23".parse().expect("static prefix"),
            hijack_prefix: None,
            stream_vps: 40,
            ris_collectors: 4,
            lg_count: 8,
            lg_interval: SimDuration::from_secs(60),
            vantage_strategy: VantageStrategy::Mixed,
            sources: SourceSelection::default(),
            controller_delay: LatencyModel::uniform_secs(10, 20),
            ris_delay: LatencyModel::LogNormal {
                median: SimDuration::from_secs(15),
                sigma: 0.5,
            },
            bgpmon_delay: LatencyModel::LogNormal {
                median: SimDuration::from_secs(25),
                sigma: 0.5,
            },
            hijack_offset: SimDuration::from_secs(30),
            max_sim_time: SimDuration::from_mins(360),
            mitigate: true,
            deagg_policy: crate::config::DeaggregationPolicy::OneLevel,
            attack: AttackKind::ExactOrigin,
            workers: 1,
        }
    }
}

impl ExperimentBuilder {
    /// A new builder with the given seed.
    pub fn new(seed: u64) -> Self {
        ExperimentBuilder {
            seed,
            ..Default::default()
        }
    }

    /// Small-topology variant for fast tests.
    pub fn tiny(seed: u64) -> Self {
        ExperimentBuilder {
            seed,
            topology: TopologyConfig::tiny(),
            stream_vps: 6,
            ris_collectors: 2,
            lg_count: 2,
            ..ExperimentBuilder::new(seed)
        }
    }

    /// Assemble and run to completion.
    pub fn run(self) -> ExperimentOutcome {
        Experiment::assemble(self).run()
    }
}

/// Timing results of one experiment (the paper's Section-3 numbers).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Phase-1 convergence instant.
    pub setup_converged: Option<SimTime>,
    /// Hijack launch instant (start of the measured incident).
    pub hijack_launched: Option<SimTime>,
    /// First alert instant (paper: ≈ 45 s after launch).
    pub detected_at: Option<SimTime>,
    /// De-aggregated announcements leave the AS (paper: ≈ 15 s after
    /// detection).
    pub mitigation_started: Option<SimTime>,
    /// Every vantage point back on the legitimate origin (paper: ≈
    /// 5 min after the announcements; ≈ 6 min total).
    pub resolved_at: Option<SimTime>,
}

impl PhaseTimings {
    /// Detection delay (launch → alert).
    pub fn detection_delay(&self) -> Option<SimDuration> {
        Some(self.detected_at?.saturating_since(self.hijack_launched?))
    }

    /// Mitigation trigger delay (alert → announcements out).
    pub fn trigger_delay(&self) -> Option<SimDuration> {
        Some(self.mitigation_started?.saturating_since(self.detected_at?))
    }

    /// Mitigation completion (announcements out → all VPs recovered).
    pub fn completion_delay(&self) -> Option<SimDuration> {
        Some(self.resolved_at?.saturating_since(self.mitigation_started?))
    }

    /// Total incident lifetime under ARTEMIS (launch → recovery).
    pub fn total_delay(&self) -> Option<SimDuration> {
        Some(self.resolved_at?.saturating_since(self.hijack_launched?))
    }
}

/// Ground-truth routing measurements taken during the run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// ASes routing to the hijacker when mitigation started.
    pub hijacked_at_mitigation: usize,
    /// ASes routing to the victim at the end of the run.
    pub recovered_at_end: usize,
    /// ASes routing to the hijacker at the end of the run.
    pub hijacked_at_end: usize,
    /// Total ASes.
    pub total_ases: usize,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Milestone timings.
    pub timings: PhaseTimings,
    /// Which feed won the detection race.
    pub detected_by: Option<FeedKind>,
    /// Hijack classification of the first alert.
    pub hijack_type: Option<crate::classify::HijackType>,
    /// Ground truth from the engine.
    pub ground_truth: GroundTruth,
    /// Monitor timeline (for the demo viz).
    pub timeline: Vec<TimelinePoint>,
    /// Milestones for pretty-printing.
    pub milestones: Vec<(SimTime, String)>,
    /// LG events returned (route rows observed via Periscope).
    pub lg_queries: u64,
    /// Actual LG queries issued (overhead axis of E3).
    pub lg_polls: u64,
    /// Virtual time elapsed from hijack launch to run end (normalizes
    /// overhead into queries/minute).
    pub elapsed_after_hijack: SimDuration,
    /// Feed events processed by the detector.
    pub feed_events: u64,
    /// Number of vantage points (streams + LGs).
    pub vantage_count: usize,
    /// The victim / attacker pair.
    pub victim: Asn,
    /// Attacker AS.
    pub attacker: Asn,
}

/// An assembled experiment ready to run.
pub struct Experiment {
    builder: ExperimentBuilder,
    engine: Engine,
    service: ArtemisService,
    victim: Asn,
    attacker: Asn,
    prefix: Prefix,
    hijack_prefix: Prefix,
    vantage_count: usize,
}

impl Experiment {
    /// Build topology, engine, feeds, controller and app.
    pub fn assemble(builder: ExperimentBuilder) -> Experiment {
        let master = SimRng::new(builder.seed);
        let mut rng_topo = master.fork("experiment/topology");
        let topo: GeneratedTopology = generate(&builder.topology, &mut rng_topo);

        // Victim and attacker: two distinct stub ASes, like two PEERING
        // muxes at different sites.
        let mut rng_roles = master.fork("experiment/roles");
        let victim = topo.stubs[rng_roles.index(topo.stubs.len())];
        let attacker = loop {
            let cand = topo.stubs[rng_roles.index(topo.stubs.len())];
            if cand != victim {
                break cand;
            }
        };

        // Vantage points for the streams.
        let mut rng_vps = master.fork("experiment/vantage");
        let vps = builder.vantage_strategy.select(
            &topo.graph,
            builder.stream_vps,
            &[victim, attacker],
            &mut rng_vps,
        );

        // Feeds.
        let mut hub = FeedHub::new(master.fork("experiment/feeds"));
        let mut all_vps: BTreeSet<Asn> = BTreeSet::new();
        if builder.sources.ris {
            let half = vps.len().div_ceil(2);
            let ris_vps = &vps[..half];
            all_vps.extend(ris_vps);
            hub.add(Box::new(
                StreamFeed::ris_live(group_into_collectors(
                    "rrc",
                    ris_vps,
                    builder.ris_collectors,
                ))
                .with_export_delay(builder.ris_delay.clone()),
            ));
        }
        if builder.sources.bgpmon {
            let half = vps.len() / 2;
            let mon_vps = &vps[vps.len() - half..];
            all_vps.extend(mon_vps);
            hub.add(Box::new(
                StreamFeed::bgpmon(group_into_collectors(
                    "bmon",
                    mon_vps,
                    2.max(builder.ris_collectors / 2),
                ))
                .with_export_delay(builder.bgpmon_delay.clone()),
            ));
        }
        if builder.sources.periscope && builder.lg_count > 0 {
            let mut rng_lg = master.fork("experiment/lgs");
            let lg_vps = VantageStrategy::TopDegree.select(
                &topo.graph,
                builder.lg_count,
                &[victim, attacker],
                &mut rng_lg,
            );
            all_vps.extend(&lg_vps);
            let lgs: Vec<LookingGlass> = lg_vps
                .iter()
                .enumerate()
                .map(|(i, vp)| LookingGlass {
                    name: format!("lg-{i:02}"),
                    vantage: *vp,
                    min_interval: builder.lg_interval,
                    response_latency: LatencyModel::uniform_millis(1_000, 4_000),
                })
                .collect();
            hub.add(Box::new(PeriscopeFeed::new(
                lgs,
                vec![builder.prefix],
                &mut rng_lg,
            )));
        }

        // The operator's ARTEMIS instance.
        let owned = OwnedPrefix::new(builder.prefix, victim)
            .with_neighbors(topo.graph.neighbors(victim).map(|(n, _)| n));
        let mut config = ArtemisConfig::new(victim, vec![owned]);
        config.auto_mitigate = builder.mitigate;
        config.deaggregation_policy = builder.deagg_policy;
        let pipeline = Pipeline::new(hub, config, all_vps.clone()).with_workers(builder.workers);

        let controller = Controller::new(
            victim,
            builder.controller_delay.clone(),
            master.fork("experiment/controller"),
        );

        let engine = Engine::new(topo.graph.clone(), builder.sim.clone(), builder.seed);
        let prefix = builder.prefix;
        let hijack_prefix = builder.hijack_prefix.unwrap_or_else(|| {
            if builder.attack.is_subprefix() {
                prefix.split().map(|(lo, _)| lo).unwrap_or(prefix)
            } else {
                prefix
            }
        });

        Experiment {
            vantage_count: all_vps.len(),
            builder,
            engine,
            service: ArtemisService::new(pipeline, controller),
            victim,
            attacker,
            prefix,
            hijack_prefix,
        }
    }

    /// The assembled operator control plane (read access).
    pub fn service(&self) -> &ArtemisService {
        &self.service
    }

    /// The victim AS chosen for this run.
    pub fn victim(&self) -> Asn {
        self.victim
    }

    /// The attacker AS chosen for this run.
    pub fn attacker(&self) -> Asn {
        self.attacker
    }

    /// Run all three phases.
    pub fn run(mut self) -> ExperimentOutcome {
        let mut milestones: Vec<(SimTime, String)> = Vec::new();
        let mut timings = PhaseTimings::default();
        let mut detected_by = None;
        let mut hijack_type = None;
        let mut ground_truth = GroundTruth {
            total_ases: self.engine.graph().as_count(),
            ..Default::default()
        };

        // ---- Phase 1: setup & convergence -------------------------------
        self.service.pipeline_mut().expect_announcement(self.prefix);
        self.engine.announce(self.victim, self.prefix);
        let changes = self.engine.run_to_quiescence(10_000_000);
        self.service.pipeline_mut().ingest_route_changes(&changes);
        let converged = self.engine.now();
        timings.setup_converged = Some(converged);
        milestones.push((
            converged,
            format!(
                "phase-1 converged ({} announced by {})",
                self.prefix, self.victim
            ),
        ));

        // ---- Phase 2: hijack --------------------------------------------
        let t_hijack = converged + self.builder.hijack_offset;
        if self.builder.attack.forges_path() {
            // Fabricate a path claiming direct adjacency to the victim.
            self.engine.announce_forged_at(
                self.attacker,
                self.hijack_prefix,
                artemis_bgp::AsPath::from_sequence([self.victim]),
                t_hijack,
            );
        } else {
            self.engine
                .announce_at(self.attacker, self.hijack_prefix, t_hijack);
        }
        timings.hijack_launched = Some(t_hijack);
        milestones.push((
            t_hijack,
            format!(
                "hijack launched: {} announces {}",
                self.attacker, self.hijack_prefix
            ),
        ));

        // ---- Interleaved main loop (delegated to the pipeline) ----------
        // The observer records milestones/timings and stops the run at
        // the first resolution — this harness measures exactly one
        // incident; multi-incident drivers keep the pipeline running.
        let horizon = SimTime::ZERO + self.builder.max_sim_time;
        let attacker = self.attacker;
        let hijack_prefix = self.hijack_prefix;
        let report = self.service.run(
            &mut self.engine,
            converged,
            horizon,
            |engine, event| {
                match event {
                    PipelineEvent::ControllerApplied {
                        kind: IntentKind::Announce,
                        prefix,
                        at,
                    } => {
                        if timings.mitigation_started.is_none() {
                            timings.mitigation_started = Some(at);
                            let probes = probe_targets(hijack_prefix);
                            ground_truth.hijacked_at_mitigation = engine
                                .ases()
                                .collect::<Vec<_>>()
                                .into_iter()
                                .filter(|a| {
                                    probes
                                        .iter()
                                        .any(|p| engine.origin_of(*a, *p) == Some(attacker))
                                })
                                .count();
                            milestones.push((
                                at,
                                format!(
                                    "mitigation announcements out: {prefix} (controller install done)"
                                ),
                            ));
                        }
                    }
                    PipelineEvent::ControllerApplied { .. } => {}
                    PipelineEvent::App(AppAction::AlertRaised(_)) => {
                        // Alert details are read back below, after the
                        // borrow on the pipeline ends.
                    }
                    PipelineEvent::App(AppAction::MitigationPending { .. }) => {
                        // The experiment never swaps policies, so no
                        // plan is ever held.
                    }
                    PipelineEvent::App(AppAction::MitigationTriggered { plan, at, .. }) => {
                        milestones.push((
                            *at,
                            format!(
                                "mitigation triggered: announce {:?} (rationale: {})",
                                plan.announce, plan.rationale
                            ),
                        ));
                    }
                    PipelineEvent::App(AppAction::Resolved { at, .. }) => {
                        if timings.resolved_at.is_none() {
                            timings.resolved_at = Some(*at);
                            milestones.push((
                                *at,
                                "RESOLVED: all vantage points back on the legitimate origin".into(),
                            ));
                        }
                    }
                }
                if timings.resolved_at.is_some() {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        let loop_now = report.ended_at;

        // First-alert details (detection instant, winning feed,
        // classification) from the detector's store. The milestone is
        // spliced in *before* same-instant mitigation entries so the
        // narrated order matches causality.
        if let Some(alert) = self.service.pipeline().detector().alerts().all().first() {
            timings.detected_at = Some(alert.detected_at);
            detected_by = Some(alert.detected_by);
            hijack_type = Some(alert.hijack_type);
            let at = alert.detected_at;
            let idx = milestones
                .iter()
                .position(|(t, _)| *t >= at)
                .unwrap_or(milestones.len());
            milestones.insert(idx, (at, format!("DETECTED: {alert}")));
        }

        // The loop may break on resolution while later controller
        // installs are still in flight (e.g. the 9th of 16 /24s):
        // apply them before judging the end state.
        let leftover = self
            .service
            .controller_mut()
            .due_actions(SimTime::from_micros(u64::MAX));
        for action in leftover {
            let at = action.effective_at.max(self.engine.now());
            match action.kind {
                IntentKind::Announce => {
                    self.engine.announce_at(action.origin_as, action.prefix, at)
                }
                IntentKind::Withdraw => {
                    self.engine.withdraw_at(action.origin_as, action.prefix, at)
                }
            }
        }

        // Drain remaining engine events so end-state ground truth is the
        // converged post-mitigation Internet. Recovery is measured on
        // the *address space* (LPM probes into both halves of the
        // hijacked prefix): after de-aggregation the /23 route may
        // still point at the attacker somewhere, but the /24s cover
        // every address — exactly the paper's recovery criterion.
        self.engine.run_to_quiescence(10_000_000);
        let probes = probe_targets(self.hijack_prefix);
        let (mut recovered, mut hijacked) = (0usize, 0usize);
        for asn in self.engine.ases().collect::<Vec<_>>() {
            let origins: Vec<Option<Asn>> = probes
                .iter()
                .map(|p| self.engine.origin_of(asn, *p))
                .collect();
            if origins.iter().all(|o| *o == Some(self.victim)) {
                recovered += 1;
            }
            if origins.contains(&Some(self.attacker)) {
                hijacked += 1;
            }
        }
        ground_truth.recovered_at_end = recovered;
        ground_truth.hijacked_at_end = hijacked;

        let timeline = self
            .service
            .pipeline()
            .detector()
            .alerts()
            .all()
            .first()
            .and_then(|a| {
                let p = self.service.pipeline();
                // A resolved incident's monitor has retired; its
                // recorded timeline is preserved on the retired record.
                p.monitor_for(a.id)
                    .map(|m| m.timeline().to_vec())
                    .or_else(|| p.retired_monitor(a.id).map(|r| r.timeline().to_vec()))
            })
            .unwrap_or_default();

        milestones.sort_by_key(|(t, _)| *t);

        let lg_queries = {
            // Periscope is the only pull feed; find it in the hub stats.
            self.service
                .pipeline()
                .hub()
                .emission_stats()
                .iter()
                .filter(|((kind, _), _)| *kind == FeedKind::Periscope)
                .map(|(_, v)| *v)
                .sum::<u64>()
        };
        let lg_polls = self.service.pipeline().hub().polls_executed();
        let run_end = timings.resolved_at.unwrap_or(loop_now);
        let elapsed_after_hijack = run_end.saturating_since(t_hijack);

        ExperimentOutcome {
            timings,
            detected_by,
            hijack_type,
            ground_truth,
            timeline,
            milestones,
            lg_queries,
            lg_polls,
            elapsed_after_hijack,
            feed_events: self.service.pipeline().detector().events_processed(),
            vantage_count: self.vantage_count,
            victim: self.victim,
            attacker: self.attacker,
        }
    }
}

/// LPM probes covering the full address space of `prefix`.
///
/// Probes must be at least as specific as anything the mitigation may
/// announce, otherwise LPM attribution misses the mitigation routes
/// (a /21 probe cannot see a /24 announcement). We probe at the
/// de-aggregation filter limit (/24 v4, /48 v6), capped at 32 probes
/// for very short prefixes — the experiments use /16…/24 victims, all
/// fully covered.
fn probe_targets(prefix: Prefix) -> Vec<Prefix> {
    let filter_limit: u8 = match prefix.afi() {
        artemis_bgp::prefix::Afi::Ipv4 => 24,
        artemis_bgp::prefix::Afi::Ipv6 => 48,
    };
    if prefix.len() >= filter_limit {
        return vec![prefix];
    }
    let target = filter_limit.min(prefix.len() + 5); // ≤ 32 probes
    let probes = prefix.deaggregate(target);
    if probes.is_empty() {
        vec![prefix]
    } else {
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_outcome(seed: u64) -> ExperimentOutcome {
        ExperimentBuilder::tiny(seed).run()
    }

    #[test]
    fn full_cycle_detects_and_resolves() {
        let out = quick_outcome(7);
        assert!(out.timings.detected_at.is_some(), "hijack must be detected");
        assert!(
            out.timings.mitigation_started.is_some(),
            "mitigation must start"
        );
        assert!(out.timings.resolved_at.is_some(), "incident must resolve");
        // Ordering of milestones.
        let t = &out.timings;
        assert!(t.hijack_launched.unwrap() < t.detected_at.unwrap());
        assert!(t.detected_at.unwrap() < t.mitigation_started.unwrap());
        assert!(t.mitigation_started.unwrap() <= t.resolved_at.unwrap());
    }

    #[test]
    fn detection_is_fast_mitigation_minutes() {
        let out = quick_outcome(3);
        let det = out.timings.detection_delay().unwrap();
        assert!(
            det < SimDuration::from_mins(5),
            "detection should be well under minutes, got {det}"
        );
        let total = out.timings.total_delay().unwrap();
        assert!(
            total < SimDuration::from_mins(30),
            "total should be minutes, got {total}"
        );
    }

    #[test]
    fn trigger_delay_matches_controller_calibration() {
        let out = quick_outcome(11);
        let trig = out.timings.trigger_delay().unwrap();
        assert!(
            trig >= SimDuration::from_secs(10) && trig <= SimDuration::from_secs(21),
            "trigger delay {trig} should reflect the 10–20 s controller"
        );
    }

    #[test]
    fn ground_truth_recovery() {
        let out = quick_outcome(13);
        // After de-aggregation the /24s cover the whole space — even
        // the attacker's own traffic goes to the victim by LPM.
        assert_eq!(
            out.ground_truth.hijacked_at_end, 0,
            "no AS may still route to the attacker: {:?}",
            out.ground_truth
        );
        assert_eq!(
            out.ground_truth.recovered_at_end, out.ground_truth.total_ases,
            "everyone recovered: {:?}",
            out.ground_truth
        );
        assert!(
            out.ground_truth.hijacked_at_mitigation > 0,
            "the hijack must have polluted someone before mitigation"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick_outcome(21);
        let b = quick_outcome(21);
        assert_eq!(a.timings.detected_at, b.timings.detected_at);
        assert_eq!(a.timings.resolved_at, b.timings.resolved_at);
        assert_eq!(a.victim, b.victim);
        assert_eq!(a.attacker, b.attacker);
    }

    #[test]
    fn seeds_vary_timings() {
        let a = quick_outcome(1);
        let b = quick_outcome(2);
        assert!(
            a.timings.detected_at != b.timings.detected_at
                || a.victim != b.victim
                || a.timings.resolved_at != b.timings.resolved_at,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn no_mitigation_mode_detects_but_never_resolves() {
        let mut b = ExperimentBuilder::tiny(3);
        b.mitigate = false;
        b.max_sim_time = SimDuration::from_mins(30);
        let out = b.run();
        assert!(out.timings.detected_at.is_some());
        assert!(out.timings.mitigation_started.is_none());
        assert!(out.timings.resolved_at.is_none());
        assert!(out.ground_truth.hijacked_at_end > 1, "hijack persists");
    }

    #[test]
    fn subprefix_hijack_variant() {
        let mut b = ExperimentBuilder::tiny(9);
        b.hijack_prefix = Some("10.0.0.0/24".parse().unwrap());
        let out = b.run();
        assert_eq!(
            out.hijack_type,
            Some(crate::classify::HijackType::SubPrefix)
        );
        assert!(out.timings.detected_at.is_some());
    }

    #[test]
    fn stream_only_and_lg_only_both_detect() {
        for sources in [
            SourceSelection {
                ris: true,
                bgpmon: false,
                periscope: false,
            },
            SourceSelection {
                ris: false,
                bgpmon: false,
                periscope: true,
            },
        ] {
            let mut b = ExperimentBuilder::tiny(17);
            b.sources = sources;
            let out = b.run();
            assert!(
                out.timings.detected_at.is_some(),
                "sources {sources:?} failed to detect"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        // The workers knob only changes how the hardware is used; the
        // experiment's science must be bit-for-bit identical.
        let seq = quick_outcome(7);
        let mut b = ExperimentBuilder::tiny(7);
        b.workers = 4;
        let par = b.run();
        assert_eq!(seq.timings.detected_at, par.timings.detected_at);
        assert_eq!(seq.timings.resolved_at, par.timings.resolved_at);
        assert_eq!(seq.detected_by, par.detected_by);
        assert_eq!(seq.timeline, par.timeline);
        assert_eq!(seq.feed_events, par.feed_events);
        assert_eq!(
            seq.milestones, par.milestones,
            "narrated history identical across worker counts"
        );
    }

    #[test]
    fn milestones_are_ordered() {
        let out = quick_outcome(19);
        let times: Vec<SimTime> = out.milestones.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        assert!(out.feed_events > 0);
        assert!(out.vantage_count > 0);
    }
}
