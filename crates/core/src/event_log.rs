//! The owned, replayable incident event stream.
//!
//! [`PipelineEvent`](crate::pipeline::PipelineEvent) borrows into the
//! pipeline and exists only for the duration of one observer call —
//! fine for an inline progress callback, useless for an operator
//! console, a websocket fan-out, or anything that wants to *replay*
//! history. This module provides the primary eventing surface of the
//! redesigned API instead:
//!
//! * [`IncidentEvent`] — an owned, `serde`-serializable record of one
//!   noteworthy thing (alert raised, mitigation triggered/pending,
//!   incident resolved, prefix onboarded/offboarded, feed
//!   attached/detached, policy changed, pause/resume, controller
//!   install).
//! * [`EventLog`] — a bounded ring buffer of [`IncidentEvent`]s with
//!   **cursor-based polling**: any number of independent consumers
//!   call [`EventLog::poll`] with their own [`EventCursor`] and each
//!   replays the same history at its own pace.

#![deny(missing_docs)]

use crate::alert::AlertId;
use crate::classify::HijackType;
use crate::mitigation::{MitigationPlan, MitigationPolicy};
use artemis_bgp::Prefix;
use artemis_controller::IntentKind;
use artemis_feeds::FeedHandle;
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One owned, serializable record in the incident event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncidentEvent {
    /// A new hijacking incident was detected.
    AlertRaised {
        /// The alert's identifier.
        alert: AlertId,
        /// The configured prefix under attack.
        owned_prefix: Prefix,
        /// The offending announcement's prefix.
        observed_prefix: Prefix,
        /// Classification of the incident.
        hijack_type: HijackType,
        /// Detection instant (feed emission time).
        at: SimTime,
    },
    /// A mitigation plan was computed but is awaiting operator
    /// confirmation (confirm-first policy, or mitigation paused).
    MitigationPending {
        /// The alert awaiting confirmation.
        alert: AlertId,
        /// The plan that would execute.
        plan: MitigationPlan,
        /// When the plan was computed.
        at: SimTime,
    },
    /// Mitigation intents were submitted to the controller.
    MitigationTriggered {
        /// The alert being mitigated.
        alert: AlertId,
        /// The executed plan.
        plan: MitigationPlan,
        /// Trigger instant.
        at: SimTime,
    },
    /// Every vantage point is back on a legitimate origin.
    Resolved {
        /// The resolved alert.
        alert: AlertId,
        /// Resolution instant.
        at: SimTime,
    },
    /// A controller intent finished installing and entered the
    /// routing plane.
    ControllerApplied {
        /// Announce or withdraw.
        kind: IntentKind,
        /// The affected prefix.
        prefix: Prefix,
        /// Installation instant.
        at: SimTime,
    },
    /// An owned prefix was onboarded at runtime.
    PrefixOnboarded {
        /// The new owned prefix.
        prefix: Prefix,
        /// Onboarding instant.
        at: SimTime,
    },
    /// An owned prefix was offboarded at runtime; its in-flight
    /// incidents were closed and its monitors frozen.
    PrefixOffboarded {
        /// The removed prefix.
        prefix: Prefix,
        /// Alerts that were still open and got closed by the offboard.
        closed_alerts: Vec<AlertId>,
        /// Offboarding instant.
        at: SimTime,
    },
    /// A feed was attached to the hub.
    FeedAttached {
        /// The new feed's stable handle.
        handle: FeedHandle,
        /// Attach instant.
        at: SimTime,
    },
    /// A feed was detached; its queued undelivered events were
    /// dropped (see `FeedHub::remove` for the exact semantics).
    FeedDetached {
        /// The detached feed's handle.
        handle: FeedHandle,
        /// Queued events dropped with the feed.
        dropped_events: usize,
        /// Detach instant.
        at: SimTime,
    },
    /// The mitigation policy of an owned prefix changed.
    PolicyChanged {
        /// The owned prefix concerned.
        prefix: Prefix,
        /// The policy now in force.
        policy: MitigationPolicy,
        /// Change instant.
        at: SimTime,
    },
    /// Mitigation was paused service-wide (detection continues; new
    /// plans accumulate as pending).
    MitigationPaused {
        /// Pause instant.
        at: SimTime,
    },
    /// Mitigation resumed; pending plans under an `Auto` policy were
    /// executed.
    MitigationResumed {
        /// Alerts whose held plans executed on resume.
        executed_alerts: Vec<AlertId>,
        /// Resume instant.
        at: SimTime,
    },
}

impl IncidentEvent {
    /// The instant the event describes.
    pub fn at(&self) -> SimTime {
        match self {
            IncidentEvent::AlertRaised { at, .. }
            | IncidentEvent::MitigationPending { at, .. }
            | IncidentEvent::MitigationTriggered { at, .. }
            | IncidentEvent::Resolved { at, .. }
            | IncidentEvent::ControllerApplied { at, .. }
            | IncidentEvent::PrefixOnboarded { at, .. }
            | IncidentEvent::PrefixOffboarded { at, .. }
            | IncidentEvent::FeedAttached { at, .. }
            | IncidentEvent::FeedDetached { at, .. }
            | IncidentEvent::PolicyChanged { at, .. }
            | IncidentEvent::MitigationPaused { at }
            | IncidentEvent::MitigationResumed { at, .. } => *at,
        }
    }
}

/// A consumer's position in the event stream.
///
/// Cursors are plain values: store them, serialize them, hand one to
/// each consumer. [`EventCursor::START`] replays from the oldest
/// retained event.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EventCursor(u64);

impl EventCursor {
    /// The beginning of the stream (sequence 0).
    pub const START: EventCursor = EventCursor(0);

    /// The raw sequence number the cursor points at.
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// One [`EventLog::poll`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct PollBatch {
    /// The events since the cursor, oldest first.
    pub events: Vec<IncidentEvent>,
    /// Pass this cursor to the next poll.
    pub next: EventCursor,
    /// Events that were overwritten before this consumer polled (the
    /// consumer lagged further than the ring-buffer capacity). 0 for
    /// consumers that keep up.
    pub missed: u64,
}

/// Bounded ring buffer of [`IncidentEvent`]s with independent
/// cursor-based consumers.
///
/// The log assigns every pushed event a monotonically increasing
/// sequence number and retains the most recent `capacity` events.
/// Consumers never mutate the log when polling, so any number of them
/// replay the same history independently.
#[derive(Debug)]
pub struct EventLog {
    events: VecDeque<IncidentEvent>,
    /// Sequence number of `events.front()`.
    first_seq: u64,
    /// Sequence number the next push receives.
    next_seq: u64,
    capacity: usize,
}

impl EventLog {
    /// Default retention: plenty for any experiment in this repo while
    /// keeping the worst-case memory bounded.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A log retaining the default number of events.
    pub fn new() -> Self {
        EventLog::with_capacity(EventLog::DEFAULT_CAPACITY)
    }

    /// A log retaining at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: VecDeque::new(),
            first_seq: 0,
            next_seq: 0,
            capacity: capacity.max(1),
        }
    }

    /// Append an event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn push(&mut self, event: IncidentEvent) -> u64 {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.first_seq += 1;
        }
        self.events.push_back(event);
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Everything since `cursor`, oldest first, plus the cursor to use
    /// next and how many events (if any) this consumer missed because
    /// they were evicted before it polled.
    pub fn poll(&self, cursor: EventCursor) -> PollBatch {
        let from = cursor.0.max(self.first_seq);
        let missed = from - cursor.0;
        let skip = (from - self.first_seq) as usize;
        let events: Vec<IncidentEvent> = self.events.iter().skip(skip).cloned().collect();
        PollBatch {
            events,
            next: EventCursor(self.next_seq),
            missed,
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (retained or evicted).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// The cursor a brand-new consumer should start from to see only
    /// *future* events.
    pub fn live_cursor(&self) -> EventCursor {
        EventCursor(self.next_seq)
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> IncidentEvent {
        IncidentEvent::MitigationPaused {
            at: SimTime::from_secs(t),
        }
    }

    #[test]
    fn poll_replays_in_order() {
        let mut log = EventLog::new();
        for t in 0..5 {
            log.push(ev(t));
        }
        let batch = log.poll(EventCursor::START);
        assert_eq!(batch.events.len(), 5);
        assert_eq!(batch.missed, 0);
        let times: Vec<SimTime> = batch.events.iter().map(|e| e.at()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Nothing new: an empty follow-up batch from the same cursor.
        let again = log.poll(batch.next);
        assert!(again.events.is_empty());
        assert_eq!(again.next, batch.next);
    }

    #[test]
    fn independent_cursors_see_identical_histories() {
        let mut log = EventLog::new();
        let mut a = EventCursor::START;
        let mut b = EventCursor::START;
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for t in 0..10 {
            log.push(ev(t));
            // Consumer A polls every event; B polls every 3rd.
            let batch = log.poll(a);
            a = batch.next;
            seen_a.extend(batch.events);
            if t % 3 == 2 {
                let batch = log.poll(b);
                b = batch.next;
                seen_b.extend(batch.events);
            }
        }
        let batch = log.poll(b);
        seen_b.extend(batch.events);
        assert_eq!(seen_a, seen_b, "cadence must not change the history");
    }

    #[test]
    fn ring_buffer_reports_missed_events() {
        let mut log = EventLog::with_capacity(3);
        for t in 0..10 {
            log.push(ev(t));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_pushed(), 10);
        let batch = log.poll(EventCursor::START);
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.missed, 7, "evicted events are reported, not hidden");
        assert_eq!(
            batch.events[0].at(),
            SimTime::from_secs(7),
            "oldest retained survives"
        );
    }

    #[test]
    fn live_cursor_skips_history() {
        let mut log = EventLog::new();
        log.push(ev(1));
        let live = log.live_cursor();
        log.push(ev(2));
        let batch = log.poll(live);
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.events[0].at(), SimTime::from_secs(2));
        assert_eq!(batch.missed, 0);
    }

    #[test]
    fn events_serialize() {
        let e = IncidentEvent::AlertRaised {
            alert: AlertId(3),
            owned_prefix: "10.0.0.0/23".parse().unwrap(),
            observed_prefix: "10.0.0.0/24".parse().unwrap(),
            hijack_type: HijackType::SubPrefix,
            at: SimTime::from_secs(45),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: IncidentEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
