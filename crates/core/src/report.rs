//! Statistics and table-rendering helpers for the experiment binaries.

use artemis_simnet::SimDuration;

/// Summary statistics over a set of measured durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationStats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Minimum.
    pub min: SimDuration,
    /// Median (p50).
    pub median: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl DurationStats {
    /// Compute from samples; `None` when empty.
    pub fn from_samples(samples: &[SimDuration]) -> Option<DurationStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<SimDuration> = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let total: SimDuration = sorted.iter().copied().sum();
        Some(DurationStats {
            n,
            mean: total / n as u64,
            min: sorted[0],
            median: percentile_sorted(&sorted, 50),
            p90: percentile_sorted(&sorted, 90),
            max: sorted[n - 1],
        })
    }

    /// One-line rendering for experiment output.
    pub fn render(&self) -> String {
        format!(
            "n={:<3} mean={:<10} min={:<10} p50={:<10} p90={:<10} max={}",
            self.n,
            self.mean.to_string(),
            self.min.to_string(),
            self.median.to_string(),
            self.p90.to_string(),
            self.max
        )
    }
}

/// The `q`-th percentile of pre-sorted samples (nearest-rank).
pub fn percentile_sorted(sorted: &[SimDuration], q: u32) -> SimDuration {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!(q <= 100);
    let idx = ((sorted.len() - 1) as u64 * q as u64) / 100;
    sorted[idx as usize]
}

/// Simple fixed-width table builder for experiment binaries (keeps the
/// paper-vs-measured output uniform across E1–E6).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: &[u64]) -> Vec<SimDuration> {
        v.iter().map(|s| SimDuration::from_secs(*s)).collect()
    }

    #[test]
    fn stats_basic() {
        let s = DurationStats::from_samples(&secs(&[10, 20, 30, 40, 50])).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, SimDuration::from_secs(30));
        assert_eq!(s.min, SimDuration::from_secs(10));
        assert_eq!(s.median, SimDuration::from_secs(30));
        assert_eq!(s.max, SimDuration::from_secs(50));
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(DurationStats::from_samples(&[]).is_none());
    }

    #[test]
    fn percentiles() {
        let sorted = secs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(percentile_sorted(&sorted, 0), SimDuration::from_secs(1));
        assert_eq!(percentile_sorted(&sorted, 100), SimDuration::from_secs(10));
        assert_eq!(percentile_sorted(&sorted, 50), SimDuration::from_secs(5));
    }

    #[test]
    fn render_contains_all_fields() {
        let s = DurationStats::from_samples(&secs(&[45])).unwrap();
        let out = s.render();
        assert!(out.contains("n=1"));
        assert!(out.contains("45.000s"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["metric", "paper", "measured"]);
        t.row(["detection", "~45s", "43.2s"]);
        t.row(["total", "~6min", "5m12.000s"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[2].contains("detection"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
