//! RPKI Route Origin Authorization validation (RFC 6483/6811) — a
//! documented extension.
//!
//! The paper notes hijack *prevention* "is not always possible"; RPKI
//! is the deployed prevention mechanism, and the ARTEMIS follow-up
//! work positions detection as complementary to it. This module gives
//! the detector an optional ROA table so alerts can be annotated with
//! RPKI validity (an `Invalid` announcement is a hijack with very high
//! confidence; `NotFound` keeps the config-based logic authoritative).

use artemis_bgp::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// One Route Origin Authorization: `asn` may originate `prefix` and
/// any more-specific up to `max_length`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roa {
    /// Authorized prefix.
    pub prefix: Prefix,
    /// Authorized origin AS.
    pub asn: Asn,
    /// Longest authorized more-specific (RFC 6482 maxLength).
    pub max_length: u8,
}

/// RFC 6811 validation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoaValidity {
    /// A covering ROA authorizes this exact (prefix, origin) pair.
    Valid,
    /// Covering ROAs exist but none authorizes the pair.
    Invalid,
    /// No covering ROA.
    NotFound,
}

/// A validated ROA table.
#[derive(Debug, Clone, Default)]
pub struct RoaTable {
    // Multiple ROAs can share a prefix (different origins/maxLength).
    by_prefix: PrefixTrie<Vec<Roa>>,
    count: usize,
}

impl RoaTable {
    /// Empty table.
    pub fn new() -> Self {
        RoaTable::default()
    }

    /// Number of ROAs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no ROA is registered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add a ROA, returning whether it was accepted.
    ///
    /// RFC 9582 (§4.8.1) requires `prefixLength <= maxLength <=
    /// family max`; a ROA violating either bound is corrupt and MUST
    /// be considered unusable. Such ROAs are **rejected** (`false`,
    /// table unchanged) rather than repaired: the previous behaviour
    /// of clamping `max_length` *up* to the prefix length silently
    /// converted an erroneous, unusable ROA into one that validates
    /// the exact prefix — granting an authorization the signer never
    /// expressed. (RFC 9582 treats an *absent* maxLength as the prefix
    /// length; callers model that case by passing `prefix.len()`.)
    #[must_use = "a ROA with an out-of-range maxLength is ignored; check acceptance"]
    pub fn add(&mut self, prefix: Prefix, asn: Asn, max_length: u8) -> bool {
        if max_length < prefix.len() || max_length > prefix.afi().max_len() {
            return false;
        }
        let roa = Roa {
            prefix,
            asn,
            max_length,
        };
        match self.by_prefix.get_mut(prefix) {
            Some(list) => list.push(roa),
            None => {
                self.by_prefix.insert(prefix, vec![roa]);
            }
        }
        self.count += 1;
        true
    }

    /// RFC 6811 origin validation of an announcement.
    pub fn validate(&self, prefix: Prefix, origin: Asn) -> RoaValidity {
        let covering = self.by_prefix.covering(prefix);
        if covering.is_empty() {
            return RoaValidity::NotFound;
        }
        for (_, roas) in &covering {
            for roa in roas.iter() {
                if roa.asn == origin && prefix.len() <= roa.max_length {
                    return RoaValidity::Valid;
                }
            }
        }
        RoaValidity::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn table() -> RoaTable {
        let mut t = RoaTable::new();
        assert!(t.add(pfx("10.0.0.0/23"), Asn(65001), 24));
        assert!(t.add(pfx("192.0.2.0/24"), Asn(65001), 24));
        t
    }

    #[test]
    fn exact_valid() {
        let t = table();
        assert_eq!(
            t.validate(pfx("10.0.0.0/23"), Asn(65001)),
            RoaValidity::Valid
        );
    }

    #[test]
    fn more_specific_within_maxlength_is_valid() {
        let t = table();
        assert_eq!(
            t.validate(pfx("10.0.1.0/24"), Asn(65001)),
            RoaValidity::Valid
        );
    }

    #[test]
    fn more_specific_beyond_maxlength_is_invalid() {
        let t = table();
        assert_eq!(
            t.validate(pfx("10.0.0.0/25"), Asn(65001)),
            RoaValidity::Invalid,
            "even the right origin may not announce past maxLength"
        );
    }

    #[test]
    fn wrong_origin_is_invalid() {
        let t = table();
        assert_eq!(
            t.validate(pfx("10.0.0.0/23"), Asn(666)),
            RoaValidity::Invalid
        );
        assert_eq!(
            t.validate(pfx("10.0.0.0/24"), Asn(666)),
            RoaValidity::Invalid
        );
    }

    #[test]
    fn uncovered_space_is_not_found() {
        let t = table();
        assert_eq!(
            t.validate(pfx("8.8.8.0/24"), Asn(15169)),
            RoaValidity::NotFound
        );
        // Less-specific than any ROA: not covered either.
        assert_eq!(
            t.validate(pfx("10.0.0.0/16"), Asn(65001)),
            RoaValidity::NotFound
        );
    }

    #[test]
    fn multiple_roas_any_match_validates() {
        let mut t = table();
        assert!(t.add(pfx("10.0.0.0/23"), Asn(65002), 23)); // anycast partner
        assert_eq!(
            t.validate(pfx("10.0.0.0/23"), Asn(65002)),
            RoaValidity::Valid
        );
        // …but the partner's authorization stops at /23.
        assert_eq!(
            t.validate(pfx("10.0.0.0/24"), Asn(65002)),
            RoaValidity::Invalid
        );
        // The primary's /24 authorization still applies.
        assert_eq!(
            t.validate(pfx("10.0.0.0/24"), Asn(65001)),
            RoaValidity::Valid
        );
    }

    #[test]
    fn maxlength_below_prefix_len_is_rejected() {
        // Regression: a ROA whose maxLength is shorter than its prefix
        // (unusable per RFC 9582) used to be clamped *up*, granting a
        // validation for the exact prefix that the signer never
        // authorized. It must be ignored instead.
        let mut t = RoaTable::new();
        assert!(!t.add(pfx("10.0.0.0/24"), Asn(1), 8)); // nonsense maxLength
        assert!(!t.add(pfx("10.0.0.0/24"), Asn(1), 23)); // off by one
        assert_eq!(
            t.validate(pfx("10.0.0.0/24"), Asn(1)),
            RoaValidity::NotFound,
            "a rejected ROA must not grant any authorization"
        );
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn maxlength_boundaries() {
        let mut t = RoaTable::new();
        // maxLength == prefix length: the tightest valid ROA.
        assert!(t.add(pfx("10.0.0.0/24"), Asn(1), 24));
        assert_eq!(t.validate(pfx("10.0.0.0/24"), Asn(1)), RoaValidity::Valid);
        // maxLength == family max: still valid.
        assert!(t.add(pfx("192.0.2.0/24"), Asn(1), 32));
        assert_eq!(
            t.validate(pfx("192.0.2.128/25"), Asn(1)),
            RoaValidity::Valid
        );
        // maxLength beyond the family max is corrupt (RFC 9582: it
        // must not exceed the address size) and rejected.
        assert!(!t.add(pfx("10.1.0.0/24"), Asn(1), 33));
        assert!(!t.add(pfx("2001:db8::/48"), Asn(1), 129));
        // IPv6 at its family max is fine.
        assert!(t.add(pfx("2001:db8::/48"), Asn(1), 128));
        assert_eq!(t.len(), 3);
    }
}
