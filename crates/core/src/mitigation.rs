//! The automatic mitigation service: prefix de-aggregation.
//!
//! "When a prefix hijacking is detected, ARTEMIS launches the
//! mitigation service, which changes the configuration of BGP routers
//! to announce the de-aggregated sub-prefixes of the hijacked prefix.
//! […] Prefix de-aggregation is effective for hijacks of IP address
//! prefixes larger than /24, but it might not work for /24 prefixes,
//! as BGP advertisements of prefixes smaller than /24 are filtered by
//! some ISPs." (§2)
//!
//! For /24 (or /48 IPv6) incidents where de-aggregation is infeasible
//! this module implements the *outsourcing* fallback from the authors'
//! follow-up work (documented extension): helper ASes co-announce the
//! exact prefix, diluting the hijack by MOAS competition.

use crate::alert::Alert;
use crate::classify::HijackType;
use crate::config::ArtemisConfig;
use artemis_bgp::{Asn, Prefix};
use artemis_controller::Controller;
use artemis_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the mitigation service does when an alert fires on a prefix.
///
/// Generalizes the global `ArtemisConfig::auto_mitigate` boolean into
/// a per-prefix knob (the configurability the operator survey names as
/// an adoption blocker): each owned prefix can run fully automatic,
/// require a human in the loop, or alert-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationPolicy {
    /// Execute the computed plan immediately on detection (the
    /// paper's headline behaviour).
    Auto,
    /// Compute and hold the plan; execute only on an explicit
    /// operator confirmation (`ServiceCommand::ConfirmMitigation`).
    ConfirmFirst,
    /// Raise alerts only; never compute or execute plans.
    DetectOnly,
}

/// The computed response to one alert.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// The alerted prefix this plan answers.
    pub target: Prefix,
    /// Prefixes the operator AS announces (de-aggregation spec).
    pub announce: Vec<Prefix>,
    /// `(helper AS, prefix)` co-announcements (outsourcing fallback).
    pub helper_announce: Vec<(Asn, Prefix)>,
    /// True when nothing useful can be announced (e.g. /24 hijack with
    /// no helpers configured).
    pub infeasible: bool,
    /// Human-readable rationale.
    pub rationale: String,
}

impl MitigationPlan {
    /// Number of announcements the plan will make in total.
    pub fn announcement_count(&self) -> usize {
        self.announce.len() + self.helper_announce.len()
    }
}

/// Computes and executes mitigation plans.
pub struct Mitigator {
    config: ArtemisConfig,
    executed: Vec<(SimTime, MitigationPlan)>,
    /// Per-owned-prefix policy overrides; prefixes without an entry
    /// follow the default derived from `config.auto_mitigate`.
    policies: BTreeMap<Prefix, MitigationPolicy>,
}

impl Mitigator {
    /// Build for one operator configuration.
    pub fn new(config: ArtemisConfig) -> Self {
        Mitigator {
            config,
            executed: Vec::new(),
            policies: BTreeMap::new(),
        }
    }

    /// The policy every prefix without an override follows: `Auto`
    /// when the global `auto_mitigate` knob is on, `DetectOnly`
    /// otherwise (exactly the two behaviours the boolean expressed).
    pub fn default_policy(&self) -> MitigationPolicy {
        if self.config.auto_mitigate {
            MitigationPolicy::Auto
        } else {
            MitigationPolicy::DetectOnly
        }
    }

    /// Override the mitigation policy of one owned prefix.
    pub fn set_policy(&mut self, owned: Prefix, policy: MitigationPolicy) {
        self.policies.insert(owned, policy);
    }

    /// Drop the override of one owned prefix (back to the default).
    pub fn clear_policy(&mut self, owned: Prefix) {
        self.policies.remove(&owned);
    }

    /// The policy in force for an owned prefix.
    pub fn policy_for(&self, owned: Prefix) -> MitigationPolicy {
        self.policies
            .get(&owned)
            .copied()
            .unwrap_or_else(|| self.default_policy())
    }

    /// Compute the response plan for an alert. Pure function — no side
    /// effects; [`Mitigator::execute`] applies it.
    pub fn plan(&self, alert: &Alert) -> MitigationPlan {
        let observed = alert.observed_prefix;
        let max_len = self.config.max_deagg_len(observed);

        // Squatting on a dormant prefix: simply announce the prefix
        // itself — we legitimately own it, LPM parity + local
        // preference does the rest once it is in the routing system.
        if alert.hijack_type == HijackType::Squatting {
            return MitigationPlan {
                target: observed,
                announce: vec![alert.owned_prefix],
                helper_announce: Vec::new(),
                infeasible: false,
                rationale: format!(
                    "dormant prefix {} squatted: begin announcing it",
                    alert.owned_prefix
                ),
            };
        }

        if observed.len() < max_len {
            let announce = match self.config.deaggregation_policy {
                // The paper's exact move (a /23 splits into two /24s).
                // One level is always sufficient to win LPM against
                // the offending announcement.
                crate::config::DeaggregationPolicy::OneLevel => {
                    let (lo, hi) = observed
                        .split()
                        .expect("len < max_len <= family max, split must exist");
                    vec![lo, hi]
                }
                // Ablation: go straight to the filtering limit so the
                // attacker cannot counter-escalate with /24s of their
                // own.
                crate::config::DeaggregationPolicy::ToFilterLimit => observed.deaggregate(max_len),
            };
            let rationale = format!(
                "de-aggregate {observed} into {} more-specific(s) (win by LPM; policy {:?})",
                announce.len(),
                self.config.deaggregation_policy
            );
            return MitigationPlan {
                target: observed,
                announce,
                helper_announce: Vec::new(),
                infeasible: false,
                rationale,
            };
        }

        // The hijacked prefix is already at the filtering limit.
        if self.config.helper_ases.is_empty() {
            return MitigationPlan {
                target: observed,
                announce: vec![observed],
                helper_announce: Vec::new(),
                infeasible: true,
                rationale: format!(
                    "{observed} is at the /{max_len} filtering limit and no helper ASes are \
                     configured: re-announce and hope for path competition only"
                ),
            };
        }
        MitigationPlan {
            target: observed,
            announce: vec![observed],
            helper_announce: self
                .config
                .helper_ases
                .iter()
                .map(|h| (*h, observed))
                .collect(),
            infeasible: false,
            rationale: format!(
                "{observed} cannot be de-aggregated past /{max_len}: outsource MOAS \
                 co-announcement to {} helper AS(es)",
                self.config.helper_ases.len()
            ),
        }
    }

    /// Execute a plan through the operator's controller (and helper
    /// controllers where provided). Returns the intent ids submitted.
    pub fn execute(
        &mut self,
        plan: &MitigationPlan,
        now: SimTime,
        controller: &mut Controller,
        helper_controllers: &mut [Controller],
    ) -> Vec<u64> {
        let mut intents = Vec::new();
        for p in &plan.announce {
            intents.push(controller.submit_announce(*p, now));
        }
        for (helper, prefix) in &plan.helper_announce {
            if let Some(hc) = helper_controllers
                .iter_mut()
                .find(|c| c.origin_as() == *helper)
            {
                intents.push(hc.submit_announce(*prefix, now));
            }
        }
        self.executed.push((now, plan.clone()));
        intents
    }

    /// Withdraw a previously executed plan (hijack over; restore
    /// aggregate-only announcements). Mirrors [`Mitigator::execute`]:
    /// the operator's own de-aggregated announcements are withdrawn
    /// through `controller`, and every helper-AS co-announcement from
    /// `plan.helper_announce` through its matching helper controller —
    /// otherwise helper ASes would keep originating the victim's
    /// prefix forever after the incident resolves.
    pub fn withdraw(
        &mut self,
        plan: &MitigationPlan,
        now: SimTime,
        controller: &mut Controller,
        helper_controllers: &mut [Controller],
    ) -> Vec<u64> {
        let mut intents: Vec<u64> = plan
            .announce
            .iter()
            .map(|p| controller.submit_withdraw(*p, now))
            .collect();
        for (helper, prefix) in &plan.helper_announce {
            if let Some(hc) = helper_controllers
                .iter_mut()
                .find(|c| c.origin_as() == *helper)
            {
                intents.push(hc.submit_withdraw(*prefix, now));
            }
        }
        intents
    }

    /// Every plan executed so far.
    pub fn executed(&self) -> &[(SimTime, MitigationPlan)] {
        &self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertId;
    use crate::config::OwnedPrefix;
    use artemis_feeds::FeedKind;
    use artemis_simnet::{LatencyModel, SimRng};
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn config(helpers: Vec<Asn>) -> ArtemisConfig {
        let mut c = ArtemisConfig::new(
            Asn(65001),
            vec![
                OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(65001)),
                OwnedPrefix::new(pfx("192.0.2.0/24"), Asn(65001)),
                OwnedPrefix::new(pfx("203.0.113.0/24"), Asn(65001)).dormant(),
            ],
        );
        c.helper_ases = helpers;
        c
    }

    fn alert(hijack_type: HijackType, owned: &str, observed: &str) -> Alert {
        Alert {
            id: AlertId(1),
            hijack_type,
            owned_prefix: pfx(owned),
            observed_prefix: pfx(observed),
            offending_origin: Some(Asn(666)),
            detected_at: SimTime::from_secs(45),
            first_observed_at: SimTime::from_secs(40),
            detected_by: FeedKind::RisLive,
            vantage_points: [Asn(174)].into_iter().collect(),
            state: crate::alert::AlertState::Active,
            last_update: SimTime::from_secs(45),
            rpki: None,
        }
    }

    #[test]
    fn paper_example_23_splits_into_two_24s() {
        let m = Mitigator::new(config(vec![]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "10.0.0.0/23",
            "10.0.0.0/23",
        ));
        assert_eq!(plan.announce, vec![pfx("10.0.0.0/24"), pfx("10.0.1.0/24")]);
        assert!(!plan.infeasible);
        assert!(plan.helper_announce.is_empty());
    }

    #[test]
    fn subprefix_hijack_deaggregates_the_observed_prefix() {
        let m = Mitigator::new(config(vec![]));
        // /23 owned; attacker announced 10.0.0.0/24… wait that is at
        // the limit; use a /16-owned scenario via config2.
        let mut cfg = config(vec![]);
        cfg.owned
            .push(OwnedPrefix::new(pfx("172.16.0.0/16"), Asn(65001)));
        let m2 = Mitigator::new(cfg);
        let plan = m2.plan(&alert(
            HijackType::SubPrefix,
            "172.16.0.0/16",
            "172.16.4.0/22",
        ));
        // Must out-specific the *attacker's* /22, not the owned /16.
        assert_eq!(
            plan.announce,
            vec![pfx("172.16.4.0/23"), pfx("172.16.6.0/23")]
        );
        drop(m);
    }

    #[test]
    fn to_filter_limit_policy_goes_all_the_way() {
        let mut cfg = config(vec![]);
        cfg.deaggregation_policy = crate::config::DeaggregationPolicy::ToFilterLimit;
        cfg.owned
            .push(OwnedPrefix::new(pfx("172.16.0.0/20"), Asn(65001)));
        let m = Mitigator::new(cfg);
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "172.16.0.0/20",
            "172.16.0.0/20",
        ));
        assert_eq!(plan.announce.len(), 16, "a /20 becomes sixteen /24s");
        assert!(plan.announce.iter().all(|p| p.len() == 24));
        assert!(!plan.infeasible);
    }

    #[test]
    fn policies_agree_at_one_level_below_limit() {
        // For the paper's /23 both policies produce the same two /24s.
        let mut cfg = config(vec![]);
        cfg.deaggregation_policy = crate::config::DeaggregationPolicy::ToFilterLimit;
        let aggressive = Mitigator::new(cfg);
        let conservative = Mitigator::new(config(vec![]));
        let a = alert(HijackType::ExactOrigin, "10.0.0.0/23", "10.0.0.0/23");
        assert_eq!(aggressive.plan(&a).announce, conservative.plan(&a).announce);
    }

    #[test]
    fn slash24_without_helpers_is_infeasible() {
        let m = Mitigator::new(config(vec![]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "192.0.2.0/24",
            "192.0.2.0/24",
        ));
        assert!(plan.infeasible);
        // Still re-announces the exact prefix (best effort).
        assert_eq!(plan.announce, vec![pfx("192.0.2.0/24")]);
    }

    #[test]
    fn slash24_with_helpers_outsources() {
        let m = Mitigator::new(config(vec![Asn(64900), Asn(64901)]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "192.0.2.0/24",
            "192.0.2.0/24",
        ));
        assert!(!plan.infeasible);
        assert_eq!(
            plan.helper_announce,
            vec![
                (Asn(64900), pfx("192.0.2.0/24")),
                (Asn(64901), pfx("192.0.2.0/24"))
            ]
        );
        assert_eq!(plan.announcement_count(), 3);
    }

    #[test]
    fn squatting_announces_the_owned_prefix() {
        let m = Mitigator::new(config(vec![]));
        let plan = m.plan(&alert(
            HijackType::Squatting,
            "203.0.113.0/24",
            "203.0.113.0/24",
        ));
        assert_eq!(plan.announce, vec![pfx("203.0.113.0/24")]);
        assert!(!plan.infeasible);
    }

    #[test]
    fn execute_submits_intents() {
        let mut m = Mitigator::new(config(vec![Asn(64900)]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "10.0.0.0/23",
            "10.0.0.0/23",
        ));
        let mut ctrl = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        let mut helper = Controller::new(Asn(64900), LatencyModel::const_secs(15), SimRng::new(2));
        let ids = m.execute(
            &plan,
            SimTime::from_secs(45),
            &mut ctrl,
            std::slice::from_mut(&mut helper),
        );
        assert_eq!(ids.len(), 2, "two /24 announce intents");
        assert_eq!(ctrl.intents().count(), 2);
        assert_eq!(helper.intents().count(), 0, "no helper needed for /23");
        assert_eq!(m.executed().len(), 1);
    }

    #[test]
    fn execute_outsourcing_reaches_helper_controller() {
        let mut m = Mitigator::new(config(vec![Asn(64900)]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "192.0.2.0/24",
            "192.0.2.0/24",
        ));
        let mut ctrl = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        let mut helper = Controller::new(Asn(64900), LatencyModel::const_secs(15), SimRng::new(2));
        let ids = m.execute(
            &plan,
            SimTime::from_secs(45),
            &mut ctrl,
            std::slice::from_mut(&mut helper),
        );
        assert_eq!(ids.len(), 2);
        assert_eq!(helper.intents().count(), 1);
    }

    #[test]
    fn withdraw_reverses_announcements() {
        let mut m = Mitigator::new(config(vec![]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "10.0.0.0/23",
            "10.0.0.0/23",
        ));
        let mut ctrl = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        m.execute(&plan, SimTime::from_secs(45), &mut ctrl, &mut []);
        let ids = m.withdraw(&plan, SimTime::from_secs(500), &mut ctrl, &mut []);
        assert_eq!(ids.len(), 2);
        assert_eq!(ctrl.intents().count(), 4);
    }

    #[test]
    fn withdraw_reverses_helper_co_announcements() {
        // Regression: an outsourced /24 mitigation must be withdrawn
        // from the helper AS too, or the helper keeps originating the
        // victim's prefix forever after the hijack resolves.
        let mut m = Mitigator::new(config(vec![Asn(64900), Asn(64901)]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "192.0.2.0/24",
            "192.0.2.0/24",
        ));
        let mut ctrl = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        let mut helpers = vec![
            Controller::new(Asn(64900), LatencyModel::const_secs(15), SimRng::new(2)),
            Controller::new(Asn(64901), LatencyModel::const_secs(15), SimRng::new(3)),
        ];
        m.execute(&plan, SimTime::from_secs(45), &mut ctrl, &mut helpers);
        let ids = m.withdraw(&plan, SimTime::from_secs(500), &mut ctrl, &mut helpers);
        assert_eq!(ids.len(), 3, "own withdraw + one per helper");
        for helper in &helpers {
            assert_eq!(
                helper.intents().count(),
                2,
                "each helper got its announce AND its withdraw"
            );
            assert_eq!(
                helper
                    .intents()
                    .filter(|i| i.kind == artemis_controller::IntentKind::Withdraw)
                    .count(),
                1
            );
        }
    }

    #[test]
    fn withdraw_skips_helpers_without_controllers() {
        // A helper named in the plan but not wired to a controller is
        // skipped on execute and withdraw alike — no panic, no intent.
        let mut m = Mitigator::new(config(vec![Asn(64900), Asn(64999)]));
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "192.0.2.0/24",
            "192.0.2.0/24",
        ));
        let mut ctrl = Controller::new(Asn(65001), LatencyModel::const_secs(15), SimRng::new(1));
        let mut helper = Controller::new(Asn(64900), LatencyModel::const_secs(15), SimRng::new(2));
        m.execute(
            &plan,
            SimTime::from_secs(45),
            &mut ctrl,
            std::slice::from_mut(&mut helper),
        );
        let ids = m.withdraw(
            &plan,
            SimTime::from_secs(500),
            &mut ctrl,
            std::slice::from_mut(&mut helper),
        );
        assert_eq!(ids.len(), 2, "own withdraw + reachable helper only");
        assert_eq!(helper.intents().count(), 2);
    }

    #[test]
    fn v6_deaggregation_respects_48_limit() {
        let mut cfg = config(vec![]);
        cfg.owned
            .push(OwnedPrefix::new(pfx("2001:db8::/47"), Asn(65001)));
        let m = Mitigator::new(cfg);
        let plan = m.plan(&alert(
            HijackType::ExactOrigin,
            "2001:db8::/47",
            "2001:db8::/47",
        ));
        assert_eq!(
            plan.announce,
            vec![pfx("2001:db8::/48"), pfx("2001:db8:1::/48")]
        );
        // At the /48 limit: infeasible without helpers.
        let plan48 = m.plan(&alert(
            HijackType::ExactOrigin,
            "2001:db8::/47",
            "2001:db8::/48",
        ));
        assert!(plan48.infeasible);
    }
}
