//! The operator's configuration: which prefixes we own, who may
//! originate them, and how to mitigate.

use artemis_bgp::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One owned prefix and its legitimacy rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnedPrefix {
    /// The prefix the operator owns (e.g. `10.0.0.0/23`).
    pub prefix: Prefix,
    /// ASNs allowed to originate it (usually just the operator's AS;
    /// multiple for legitimate MOAS, e.g. anycast partners).
    pub legitimate_origins: BTreeSet<Asn>,
    /// Direct BGP neighbors of the origin (upstreams/peers). When
    /// non-empty, paths whose origin-adjacent hop is not in this set
    /// raise a Type-1 (fake first-hop) alert — a documented extension
    /// beyond the demo paper's origin-only check.
    pub known_neighbors: BTreeSet<Asn>,
    /// True when the prefix is owned but intentionally *not announced*
    /// (any announcement at all is then a squatting incident).
    pub dormant: bool,
}

impl OwnedPrefix {
    /// Standard single-origin prefix.
    pub fn new(prefix: Prefix, origin: Asn) -> Self {
        OwnedPrefix {
            prefix,
            legitimate_origins: [origin].into_iter().collect(),
            known_neighbors: BTreeSet::new(),
            dormant: false,
        }
    }

    /// Add an additional legitimate origin (anycast / multi-homing).
    pub fn with_extra_origin(mut self, origin: Asn) -> Self {
        self.legitimate_origins.insert(origin);
        self
    }

    /// Declare the legitimate upstream set (enables Type-1 detection).
    pub fn with_neighbors<I: IntoIterator<Item = Asn>>(mut self, neighbors: I) -> Self {
        self.known_neighbors = neighbors.into_iter().collect();
        self
    }

    /// Mark as dormant (squatting detection).
    pub fn dormant(mut self) -> Self {
        self.dormant = true;
        self
    }
}

/// How aggressively the mitigation de-aggregates (ablation in
/// DESIGN.md §5: one level always suffices against the *current*
/// announcement; going straight to the filtering limit also preempts
/// an attacker's counter-escalation with even-more-specifics, at the
/// cost of more routing-table pollution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeaggregationPolicy {
    /// Split once (the paper's move: /23 → two /24s).
    OneLevel,
    /// Announce every sub-prefix at the filtering limit
    /// (/20 → sixteen /24s).
    ToFilterLimit,
}

/// Full ARTEMIS configuration for one operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtemisConfig {
    /// The operator's primary AS.
    pub operator_as: Asn,
    /// Owned prefixes with their rules.
    pub owned: Vec<OwnedPrefix>,
    /// Longest de-aggregated prefix the mitigation may announce
    /// (paper §2: /24 for IPv4 — longer is widely filtered).
    pub max_deaggregation_len_v4: u8,
    /// IPv6 equivalent (/48 by common filtering practice).
    pub max_deaggregation_len_v6: u8,
    /// De-aggregation aggressiveness.
    pub deaggregation_policy: DeaggregationPolicy,
    /// Automatically trigger mitigation on detection (the paper's
    /// headline behaviour). When false, ARTEMIS only alerts.
    pub auto_mitigate: bool,
    /// Helper ASes (other networks of the same organization, or
    /// mitigation partners) that can co-announce prefixes when
    /// de-aggregation is infeasible — the "outsourcing" extension.
    pub helper_ases: Vec<Asn>,
}

impl ArtemisConfig {
    /// Minimal config: one operator AS owning some prefixes.
    pub fn new(operator_as: Asn, owned: Vec<OwnedPrefix>) -> Self {
        ArtemisConfig {
            operator_as,
            owned,
            max_deaggregation_len_v4: 24,
            max_deaggregation_len_v6: 48,
            deaggregation_policy: DeaggregationPolicy::OneLevel,
            auto_mitigate: true,
            helper_ases: Vec::new(),
        }
    }

    /// Build the lookup trie used by the detector: every owned prefix
    /// keyed for covering-prefix queries.
    pub fn owned_trie(&self) -> PrefixTrie<OwnedPrefix> {
        let mut trie = PrefixTrie::new();
        for o in &self.owned {
            trie.insert(o.prefix, o.clone());
        }
        trie
    }

    /// The owned entry exactly matching `prefix`, if any.
    pub fn owned_exact(&self, prefix: Prefix) -> Option<&OwnedPrefix> {
        self.owned.iter().find(|o| o.prefix == prefix)
    }

    /// The most-specific owned prefix covering `prefix`, if any.
    pub fn owning_prefix(&self, prefix: Prefix) -> Option<&OwnedPrefix> {
        self.owned
            .iter()
            .filter(|o| o.prefix.contains(prefix))
            .max_by_key(|o| o.prefix.len())
    }

    /// Max de-aggregation length for the family of `prefix`.
    pub fn max_deagg_len(&self, prefix: Prefix) -> u8 {
        match prefix.afi() {
            artemis_bgp::prefix::Afi::Ipv4 => self.max_deaggregation_len_v4,
            artemis_bgp::prefix::Afi::Ipv6 => self.max_deaggregation_len_v6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn pfx(s: &str) -> Prefix {
        Prefix::from_str(s).unwrap()
    }

    fn config() -> ArtemisConfig {
        ArtemisConfig::new(
            Asn(65001),
            vec![
                OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(65001))
                    .with_neighbors([Asn(174), Asn(3356)]),
                OwnedPrefix::new(pfx("192.0.2.0/24"), Asn(65001)),
                OwnedPrefix::new(pfx("203.0.113.0/24"), Asn(65001)).dormant(),
            ],
        )
    }

    #[test]
    fn owned_lookup_exact_and_covering() {
        let c = config();
        assert!(c.owned_exact(pfx("10.0.0.0/23")).is_some());
        assert!(c.owned_exact(pfx("10.0.0.0/24")).is_none());
        let owner = c.owning_prefix(pfx("10.0.0.0/24")).unwrap();
        assert_eq!(owner.prefix, pfx("10.0.0.0/23"));
        assert!(c.owning_prefix(pfx("8.8.8.0/24")).is_none());
    }

    #[test]
    fn owning_prefix_picks_most_specific() {
        let mut c = config();
        c.owned
            .push(OwnedPrefix::new(pfx("10.0.0.0/8"), Asn(65001)));
        assert_eq!(
            c.owning_prefix(pfx("10.0.0.0/24")).unwrap().prefix,
            pfx("10.0.0.0/23")
        );
        assert_eq!(
            c.owning_prefix(pfx("10.9.0.0/16")).unwrap().prefix,
            pfx("10.0.0.0/8")
        );
    }

    #[test]
    fn trie_contains_all_owned() {
        let c = config();
        let trie = c.owned_trie();
        assert_eq!(trie.len(), 3);
        assert!(trie.get(pfx("203.0.113.0/24")).unwrap().dormant);
    }

    #[test]
    fn builder_helpers() {
        let o = OwnedPrefix::new(pfx("10.0.0.0/23"), Asn(1))
            .with_extra_origin(Asn(2))
            .with_neighbors([Asn(10)]);
        assert!(o.legitimate_origins.contains(&Asn(1)));
        assert!(o.legitimate_origins.contains(&Asn(2)));
        assert!(o.known_neighbors.contains(&Asn(10)));
    }

    #[test]
    fn max_deagg_len_per_family() {
        let c = config();
        assert_eq!(c.max_deagg_len(pfx("10.0.0.0/23")), 24);
        assert_eq!(c.max_deagg_len(pfx("2001:db8::/32")), 48);
    }

    #[test]
    fn serde_roundtrip() {
        let c = config();
        let json = serde_json::to_string(&c).unwrap();
        let back: ArtemisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.owned, c.owned);
        assert_eq!(back.operator_as, c.operator_as);
    }
}
