//! # artemis-core — the ARTEMIS system
//!
//! The paper's contribution (Chaviaras, Gigis, Sermpezis,
//! Dimitropoulos — SIGCOMM 2016): self-operated, real-time detection
//! and *automatic* mitigation of BGP prefix hijacking, built from three
//! services (paper Fig. 1):
//!
//! 1. **Detection** ([`Detector`]): consumes the live monitoring feeds
//!    ([`artemis_feeds`]) and raises an [`Alert`] the moment any
//!    vantage point reports the operator's prefix (or a more-specific
//!    of it) with an illegitimate origin — plus path-anomaly and
//!    squatting checks as documented extensions.
//! 2. **Mitigation** ([`Mitigator`]): computes the de-aggregation
//!    response (a hijacked /23 becomes two /24s, never longer than /24
//!    — paper §2) and pushes it through the SDN controller
//!    ([`artemis_controller`]) without human intervention.
//! 3. **Monitoring** ([`MonitorService`]): watches the same feeds to
//!    report, per vantage point, whether traffic goes to the legitimate
//!    or the hijacking origin — declaring the incident resolved when
//!    every vantage point has switched back.
//!
//! [`Pipeline`] wires the three together around the feed hub and owns
//! the batched, multi-prefix event loop — the detector shards its
//! state per owned prefix, so concurrent incidents on different
//! prefixes run independent alert/monitor/mitigation lifecycles.
//! [`ArtemisService`] is the operator control plane on top: typed
//! [`ServiceCommand`]s (runtime prefix onboarding/offboarding, feed
//! attach/detach by handle, per-prefix [`MitigationPolicy`] swaps,
//! pause/resume, confirm-first approvals), typed queries answered
//! with owned serializable snapshots ([`service::ServiceStatus`]),
//! and a replayable [`event_log::IncidentEvent`] stream with
//! independent cursors.
//! [`ArtemisApp`] is a thin feed-less facade over the pipeline for
//! hand-driven deployments; [`experiment`] reproduces the paper's
//! PEERING experiments (Phase 1 setup / Phase 2 hijack + detection /
//! Phase 3 mitigation) on the simulated Internet by delegating its
//! main loop to the service; and [`baseline`] implements the slow
//! pipelines ARTEMIS is compared against in §1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod app;
pub mod baseline;
pub mod classify;
pub mod config;
pub mod detector;
pub mod event_log;
pub mod experiment;
pub mod hijack_stats;
pub mod metrics;
pub mod mitigation;
pub mod monitor;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod roa;
pub mod service;
pub mod viz;
pub mod wire;

pub use alert::{Alert, AlertId, AlertState};
pub use app::{AppAction, ArtemisApp};
pub use classify::HijackType;
pub use config::{ArtemisConfig, DeaggregationPolicy, OwnedPrefix};
pub use detector::Detector;
pub use event_log::{EventCursor, EventLog, IncidentEvent, PollBatch};
pub use experiment::{Experiment, ExperimentBuilder, ExperimentOutcome, PhaseTimings};
pub use hijack_stats::HijackDurationModel;
pub use metrics::{StageMetrics, StageStat};
pub use mitigation::{MitigationPlan, MitigationPolicy, Mitigator};
pub use monitor::{MonitorIndex, MonitorService, RetiredMonitor};
pub use parallel::WorkerPool;
pub use pipeline::{
    OffboardReport, Pipeline, PipelineConfig, PipelineEvent, RunEnd, RunReport, WorkerStatus,
};
pub use service::{
    ArtemisService, CommandOutcome, ServiceCommand, ServiceError, ServiceQuery, ServiceReply,
    ServiceStatus,
};
pub use wire::{
    CommandEnvelope, CommandResult, EventsEnvelope, InjectEnvelope, InjectOutcome, OutcomeEnvelope,
    QueryEnvelope, SCHEMA_VERSION,
};
