//! Text-mode rendering of the monitoring timeline — the demo's
//! "geographical visualization of vantage points … that select the
//! (il-)legitimate origin-AS" (paper §4), as a terminal strip chart.

use crate::monitor::TimelinePoint;
use artemis_simnet::SimTime;

/// Render the hijack/mitigation timeline as a strip chart: one row per
/// recorded state change, a bar showing the vantage-point split
/// (`#` = hijacked, `.` = legitimate, space = no data) plus counts.
pub fn render_timeline(points: &[TimelinePoint], width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}  {:<width$}  legit/hijacked/unknown\n",
        "time",
        "vantage points",
        width = width
    ));
    for p in points {
        let total = (p.legitimate + p.hijacked + p.unknown).max(1);
        let hij = p.hijacked * width / total;
        let leg = p.legitimate * width / total;
        let unk = width.saturating_sub(hij + leg);
        let bar = format!("{}{}{}", "#".repeat(hij), ".".repeat(leg), " ".repeat(unk));
        out.push_str(&format!(
            "{:>12}  [{bar}]  {}/{}/{}\n",
            p.time.to_string(),
            p.legitimate,
            p.hijacked,
            p.unknown
        ));
    }
    out
}

/// Render annotated experiment milestones (hijack, detection,
/// mitigation trigger, resolution) on one line each — used by the
/// examples and E1's verbose mode.
pub fn render_milestones(milestones: &[(SimTime, String)]) -> String {
    let mut out = String::new();
    for (t, label) in milestones {
        out.push_str(&format!("{:>12}  {label}\n", t.to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_renders_rows_and_bars() {
        let points = vec![
            TimelinePoint {
                time: SimTime::from_secs(10),
                legitimate: 4,
                hijacked: 0,
                unknown: 0,
            },
            TimelinePoint {
                time: SimTime::from_secs(50),
                legitimate: 2,
                hijacked: 2,
                unknown: 0,
            },
        ];
        let out = render_timeline(&points, 8);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("[........]"), "all legit: {}", lines[1]);
        assert!(lines[2].contains("####"), "half hijacked: {}", lines[2]);
        assert!(lines[2].contains("2/2/0"));
    }

    #[test]
    fn empty_population_does_not_divide_by_zero() {
        let points = vec![TimelinePoint {
            time: SimTime::ZERO,
            legitimate: 0,
            hijacked: 0,
            unknown: 0,
        }];
        let out = render_timeline(&points, 10);
        assert!(out.contains("0/0/0"));
    }

    #[test]
    fn milestones_render_in_order() {
        let out = render_milestones(&[
            (SimTime::from_secs(600), "hijack launched".into()),
            (SimTime::from_secs(645), "DETECTED".into()),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("hijack launched"));
        assert!(lines[1].contains("DETECTED"));
    }
}
